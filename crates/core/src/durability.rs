//! The durability watermark of the pipelined commit.
//!
//! The pipelined write path splits a commit into an *append stage* (under the
//! short append lock: encode, `append_batch`, flush to the OS) and a *sync
//! stage* that runs with no engine-wide lock held. This module is the sync
//! stage's bookkeeping: a monotonic byte watermark over everything commit
//! groups have appended, and a second watermark over what is known durable.
//!
//! Offsets are *cumulative across log rotations* — a virtual clock that only
//! counts commit-group bytes — so a target handed out before a rotation stays
//! comparable after it. A group that needs durability calls
//! [`DurabilityWatermark::ensure_durable`] with the target it received from
//! [`record_append`](DurabilityWatermark::record_append): either the durable
//! watermark already passed it (another group's fsync covered these bytes — the
//! *overlapped* case), or the caller queues on the fsync lock and issues one
//! `fsync` that covers every byte appended (and OS-flushed) to the active log
//! so far, retiring every group in that window at once.
//!
//! Safety argument for the advance: `mark` records, under the append lock, how
//! many cumulative bytes have been appended *and flushed to the OS* for which
//! log. An fsync issued afterwards on that same log's file covers at least
//! those bytes, so advancing `durable` to the mark read just before the
//! `sync_data` call never claims durability for an unsynced byte. Rotations
//! fsync (or delete) the outgoing log with the pipeline drained, then advance
//! `durable` to the full appended watermark.

// lint:allow-file(no-std-sync-lock) `sync_active` pairs with the `waiters`
// Condvar (absent from the vendored parking_lot stand-in), and the fsync lock
// needs try_lock's contended/uncontended distinction with a guard passable to
// `drive_fsync`; all three locks stay private to this module.
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use triad_common::Result;
use triad_wal::LogSyncHandle;

use crate::committer::Committer;

/// Upper bound on scheduler yields the fsync-er spends waiting for the append
/// mark to go quiet before issuing the fsync (see `ensure_durable`). Bounds the
/// extra latency a durable write can pay to ~a fraction of an fsync.
const SYNC_QUIESCE_MAX_YIELDS: u32 = 64;

/// How many consecutive quiet observations of the append mark count as "the
/// appends stopped landing": fsync now, covering everyone.
const SYNC_QUIESCE_QUIET: u32 = 2;

/// How a group's durability requirement was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SyncOutcome {
    /// This call issued the fsync (covering this group and any group appended
    /// behind it before the syscall ran).
    Synced,
    /// The watermark had already passed the target: another in-flight group's
    /// fsync (or a rotation's seal) made these bytes durable — the overlap the
    /// pipeline exists to create.
    AlreadyDurable,
}

/// Cumulative bytes appended to a specific log, as of the last append.
#[derive(Debug, Clone, Copy)]
struct AppendMark {
    log_id: u64,
    appended: u64,
}

/// Tracks which appended commit-log bytes are durable (see the module docs).
#[derive(Debug)]
pub(crate) struct DurabilityWatermark {
    /// Cumulative commit-group bytes known durable.
    durable: AtomicU64,
    /// Cumulative bytes appended + OS-flushed, and the log they went to.
    /// Written under the append lock; read lock-free by the sync stage via this
    /// dedicated mutex so fsyncs never need the append lock.
    mark: Mutex<AppendMark>,
    /// Serializes fsyncs: exactly one group drives the disk at a time; the rest
    /// park on `waiters` and are released in bulk when the watermark advances —
    /// no futex hand-off chain through this mutex.
    fsync_lock: Mutex<()>,
    /// `true` while an fsync is actually in flight; guarded state for `waiters`.
    sync_active: Mutex<bool>,
    /// Parks groups whose durability is owed to an in-flight fsync. One
    /// `notify_all` per watermark advance wakes every covered group at once.
    waiters: std::sync::Condvar,
}

impl DurabilityWatermark {
    pub(crate) fn new(active_log_id: u64) -> Self {
        DurabilityWatermark {
            durable: AtomicU64::new(0),
            mark: Mutex::new(AppendMark { log_id: active_log_id, appended: 0 }),
            fsync_lock: Mutex::new(()),
            sync_active: Mutex::new(false),
            waiters: std::sync::Condvar::new(),
        }
    }

    /// Records `bytes` appended (and flushed to the OS) to `log_id`; returns the
    /// new cumulative watermark — the caller's durability target. Must be called
    /// under the append lock, after the flush succeeded.
    pub(crate) fn record_append(&self, log_id: u64, bytes: u64) -> u64 {
        let mut mark = self.mark.lock().expect("append mark poisoned");
        mark.log_id = log_id;
        mark.appended += bytes;
        mark.appended
    }

    /// Whether every byte up to `target` is known durable.
    pub(crate) fn is_durable(&self, target: u64) -> bool {
        self.durable.load(Ordering::Acquire) >= target
    }

    /// Called under the append lock after a rotation made the outgoing log's
    /// bytes moot (sealed with an fsync, or deleted with its fresh values
    /// rewritten): every previously appended byte is as durable as it will ever
    /// need to be, and future appends go to `new_log_id`. The caller must have
    /// drained the pipeline first, so no group still waits on the old log.
    pub(crate) fn note_rotation(&self, new_log_id: u64) {
        let mut mark = self.mark.lock().expect("append mark poisoned");
        mark.log_id = new_log_id;
        self.durable.fetch_max(mark.appended, Ordering::AcqRel);
    }

    /// Makes every byte up to `target` durable, fsyncing `handle` (the log the
    /// caller appended to) only if no other group's fsync already covered it.
    /// Runs with no engine lock held — this is the call the append lock must
    /// never be held across.
    ///
    /// While the fsync is in flight the `committer` accumulates newly arriving
    /// writers instead of letting each lead a tiny group: their bytes could not
    /// ride this fsync anyway (it only covers what was OS-flushed before the
    /// syscall), so they wait and form one large group the moment it completes.
    pub(crate) fn ensure_durable(
        &self,
        log_id: u64,
        target: u64,
        handle: &LogSyncHandle,
        committer: &Committer,
    ) -> Result<SyncOutcome> {
        loop {
            if self.is_durable(target) {
                return Ok(SyncOutcome::AlreadyDurable);
            }
            match self.fsync_lock.try_lock() {
                Ok(guard) => return self.drive_fsync(log_id, target, handle, committer, guard),
                Err(std::sync::TryLockError::WouldBlock) => {
                    // Another group is driving the disk. Park until the
                    // watermark advances (one notify_all releases every covered
                    // group at once) or the driver retires without covering us,
                    // then re-evaluate.
                    let mut active = self.sync_active.lock().expect("sync state poisoned");
                    while *active && !self.is_durable(target) {
                        active = self.waiters.wait(active).expect("sync state poisoned");
                    }
                    drop(active);
                    // The driver may hold the fsync lock for an instant before
                    // raising the active flag; yield instead of spinning on
                    // that window.
                    std::thread::yield_now();
                }
                Err(std::sync::TryLockError::Poisoned(_)) => panic!("fsync lock poisoned"),
            }
        }
    }

    /// The fsync driver's half of [`ensure_durable`]: quiesce, sync, advance,
    /// release the parked waiters.
    fn drive_fsync(
        &self,
        log_id: u64,
        target: u64,
        handle: &LogSyncHandle,
        committer: &Committer,
        guard: std::sync::MutexGuard<'_, ()>,
    ) -> Result<SyncOutcome> {
        if self.is_durable(target) {
            return Ok(SyncOutcome::AlreadyDurable);
        }
        *self.sync_active.lock().expect("sync state poisoned") = true;
        // Adaptive sync batching: while appends are actively landing (groups
        // released by the previous fsync re-entering, or fresh writers racing
        // in), briefly yield so they finish, and let this one fsync cover them
        // all. Without this, a closed loop of writers degenerates into half the
        // groups just missing every fsync and paying a second one — twice the
        // disk traffic for the same acknowledgements. The wait is bounded and
        // the common quiet case costs two yields.
        let mut mark = *self.mark.lock().expect("append mark poisoned");
        let mut quiet = 0u32;
        for _ in 0..SYNC_QUIESCE_MAX_YIELDS {
            std::thread::yield_now();
            let fresh = *self.mark.lock().expect("append mark poisoned");
            if fresh.appended == mark.appended && fresh.log_id == mark.log_id {
                quiet += 1;
                if quiet >= SYNC_QUIESCE_QUIET {
                    break;
                }
            } else {
                quiet = 0;
                mark = fresh;
            }
        }
        // The mark read is the extent this fsync will cover: every byte it
        // counts is already in the OS page cache for this file, so the sync
        // covers groups appended behind us too. If a rotation changed the log
        // under us (impossible while the caller holds its pipeline gate, but
        // cheap to tolerate), fall back to our own target — under-claiming is
        // always safe.
        let covered = if mark.log_id == log_id { mark.appended } else { target };
        committer.begin_sync();
        let synced = handle.sync();
        committer.end_sync();
        if synced.is_ok() {
            self.durable.fetch_max(covered, Ordering::AcqRel);
        }
        // Clear the active flag and broadcast *while still holding the fsync
        // lock*: only a lock holder ever raises the flag, so clearing here can
        // never stomp a successor driver's `true` (released-lock-first ordering
        // had exactly that race, leaving that driver's waiters busy-spinning
        // for its whole fsync). The woken covered waiters return immediately;
        // an uncovered one yields for the instant between this broadcast and
        // the `guard` drop below, then becomes the next driver. On an fsync
        // error the waiters wake too, find the watermark unmoved, and drive
        // (likely failing) fsyncs of their own — no one is left parked behind a
        // dead driver.
        let mut active = self.sync_active.lock().expect("sync state poisoned");
        *active = false;
        drop(active);
        self.waiters.notify_all();
        drop(guard);
        synced?;
        Ok(SyncOutcome::Synced)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triad_wal::{log_file_path, LogRecord, LogWriter};

    fn temp_writer(name: &str) -> (LogWriter, std::path::PathBuf) {
        let dir =
            std::env::temp_dir().join(format!("triad-durability-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        (LogWriter::create(log_file_path(&dir, 1), 1).unwrap(), dir)
    }

    #[test]
    fn targets_are_cumulative_and_monotonic() {
        let watermark = DurabilityWatermark::new(1);
        assert_eq!(watermark.record_append(1, 100), 100);
        assert_eq!(watermark.record_append(1, 50), 150);
        assert!(!watermark.is_durable(1));
        watermark.note_rotation(2);
        assert!(watermark.is_durable(150), "rotation retires every appended byte");
        assert_eq!(watermark.record_append(2, 10), 160);
        assert!(!watermark.is_durable(160), "new-log bytes are not durable yet");
    }

    #[test]
    fn one_fsync_retires_every_covered_group() {
        let (mut writer, _dir) = temp_writer("retire");
        let handle = writer.sync_handle();
        let watermark = DurabilityWatermark::new(1);

        // Two groups append before anyone syncs.
        writer.append(&LogRecord::put(1, b"a".to_vec(), b"1".to_vec())).unwrap();
        writer.flush().unwrap();
        let first = watermark.record_append(1, 10);
        writer.append(&LogRecord::put(2, b"b".to_vec(), b"2".to_vec())).unwrap();
        writer.flush().unwrap();
        let second = watermark.record_append(1, 10);

        // The first group's fsync reads the freshest mark, so it covers the
        // second group as well…
        let committer = Committer::new();
        assert_eq!(
            watermark.ensure_durable(1, first, &handle, &committer).unwrap(),
            SyncOutcome::Synced
        );
        // …which then needs no fsync of its own.
        assert_eq!(
            watermark.ensure_durable(1, second, &handle, &committer).unwrap(),
            SyncOutcome::AlreadyDurable
        );
    }
}
