//! Value-generation strategies: the generate-only core of the proptest API.

use std::marker::PhantomData;
use std::ops::Range;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type from a [`TestRng`].
///
/// Unlike real proptest there is no value tree and no shrinking: `generate`
/// directly produces a value.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Returns a strategy producing `f(value)` for every generated `value`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type behind a box.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy, as produced by [`Strategy::boxed`].
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// A strategy that always yields a clone of one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A weighted choice among boxed alternatives, as built by
/// [`prop_oneof!`](crate::prop_oneof).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` arms; panics if all weights are 0.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total_weight = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof! requires a positive total weight");
        Union { arms, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.next_u64() % self.total_weight;
        for (weight, strat) in &self.arms {
            let weight = u64::from(*weight);
            if pick < weight {
                return strat.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weighted pick exceeded total weight")
    }
}

/// Types with a canonical "any value" strategy, mirroring `proptest::arbitrary`.
pub trait Arbitrary: Sized {
    /// Generates one unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

/// The strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns a strategy generating arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_strategy_for_uint_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128) - (self.start as u128);
                self.start + ((rng.next_u64() as u128 * span) >> 64) as $t
            }
        }
    )*};
}

impl_strategy_for_uint_range!(u8, u16, u32, u64, usize);

macro_rules! impl_strategy_for_int_range {
    ($($t:ty => $u:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.abs_diff(self.start) as u128;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as $u;
                self.start.wrapping_add(draw as $t)
            }
        }
    )*};
}

impl_strategy_for_int_range!(i32 => u32, i64 => u64);

macro_rules! impl_strategy_for_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_strategy_for_tuple!(A: 0, B: 1);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3);

#[cfg(test)]
mod tests {
    use super::{any, Just, Strategy, Union};
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..1_000 {
            let x = (10u16..20).generate(&mut rng);
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    fn map_applies_function() {
        let mut rng = TestRng::from_seed(2);
        let strat = (0u8..10).prop_map(|x| u32::from(x) + 100);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((100..110).contains(&v));
        }
    }

    #[test]
    fn union_respects_weights() {
        let mut rng = TestRng::from_seed(3);
        let strat = Union::new(vec![(9, Just(true).boxed()), (1, Just(false).boxed())]);
        let hits = (0..10_000).filter(|_| strat.generate(&mut rng)).count();
        assert!(hits > 8_500 && hits < 9_500, "unexpected weighting: {hits}");
    }

    #[test]
    fn tuples_compose() {
        let mut rng = TestRng::from_seed(4);
        let (a, b, c) = (any::<bool>(), 0u16..5, Just(7i32)).generate(&mut rng);
        let _: bool = a;
        assert!(b < 5);
        assert_eq!(c, 7);
    }
}
