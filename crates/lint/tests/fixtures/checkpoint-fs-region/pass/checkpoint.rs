// lint-fixture: crates/core/src/checkpoint.rs
//! Condensed checkpoint module: every filesystem mutation — links, copies,
//! directory creation, the pending-marker deletion — sits inside the marked
//! CHECKPOINT-FS region, so the whole on-disk footprint is auditable there.

use std::path::Path;

pub fn checkpoint(dir: &Path) -> std::io::Result<()> {
    prepare_target(dir)?;
    link_or_copy(&dir.join("000001.sst"), &dir.join("copy.sst"))?;
    finalize_target(dir)
}

// CHECKPOINT-FS-BEGIN: all checkpoint filesystem mutation lives here.

fn prepare_target(dir: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let marker = std::fs::File::create(dir.join("CHECKPOINT-PENDING"))?;
    marker.sync_all()
}

fn link_or_copy(src: &Path, dst: &Path) -> std::io::Result<()> {
    if std::fs::hard_link(src, dst).is_ok() {
        return Ok(());
    }
    std::fs::copy(src, dst)?;
    Ok(())
}

fn finalize_target(dir: &Path) -> std::io::Result<()> {
    std::fs::remove_file(dir.join("CHECKPOINT-PENDING"))
}

// CHECKPOINT-FS-END
