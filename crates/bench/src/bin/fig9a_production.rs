//! Regenerates Figure 9A (production workload throughput and write amplification).

use triad_bench::experiments::fig9a_production;
use triad_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    fig9a_production::run(scale).expect("figure 9A experiment failed");
}
