//! Core value types: sequence numbers, value kinds and the internal key encoding.
//!
//! The LSM engine distinguishes *user keys* (arbitrary byte strings supplied by the
//! application) from *internal keys*, which append an 8-byte trailer holding the
//! sequence number and the kind of the entry (put or delete). Internal keys order
//! first by user key ascending and then by sequence number *descending*, so that a
//! forward scan over a sorted run sees the newest version of each user key first —
//! the same convention LevelDB and RocksDB use.

use std::cmp::Ordering;
use std::fmt;

/// Monotonically increasing sequence number assigned to every write.
pub type SeqNo = u64;

/// The largest sequence number; used as an upper bound when searching.
pub const MAX_SEQNO: SeqNo = (1 << 56) - 1;

/// The kind of a record stored in the memtable, commit log or an SSTable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueKind {
    /// A live key/value pair.
    Put,
    /// A tombstone marking the key as deleted.
    Delete,
}

impl ValueKind {
    /// Encodes the kind as a single byte tag.
    pub fn as_u8(self) -> u8 {
        match self {
            ValueKind::Delete => 0,
            ValueKind::Put => 1,
        }
    }

    /// Decodes the kind from its byte tag.
    pub fn from_u8(tag: u8) -> Option<ValueKind> {
        match tag {
            0 => Some(ValueKind::Delete),
            1 => Some(ValueKind::Put),
            _ => None,
        }
    }
}

impl fmt::Display for ValueKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueKind::Put => write!(f, "put"),
            ValueKind::Delete => write!(f, "delete"),
        }
    }
}

/// An internal key: a user key plus its sequence number and kind.
///
/// Internal keys are the unit of ordering inside SSTables and merge iterators.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct InternalKey {
    /// The application-visible key bytes.
    pub user_key: Vec<u8>,
    /// The sequence number of the write that produced this entry.
    pub seqno: SeqNo,
    /// Whether the entry is a put or a delete.
    pub kind: ValueKind,
}

impl InternalKey {
    /// Creates a new internal key.
    pub fn new(user_key: impl Into<Vec<u8>>, seqno: SeqNo, kind: ValueKind) -> Self {
        InternalKey { user_key: user_key.into(), seqno, kind }
    }

    /// Builds the internal key that sorts *before or at* every entry for `user_key`,
    /// i.e. the key to seek to when looking up the freshest visible version.
    pub fn for_lookup(user_key: impl Into<Vec<u8>>, snapshot: SeqNo) -> Self {
        InternalKey { user_key: user_key.into(), seqno: snapshot, kind: ValueKind::Put }
    }

    /// Serializes the internal key: `user_key ++ (seqno << 8 | kind)` big-endian.
    ///
    /// The fixed-width 8-byte trailer keeps the encoding order-preserving for the
    /// trailer portion while the user key is compared as raw bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.user_key.len() + 8);
        out.extend_from_slice(&self.user_key);
        let trailer = (self.seqno << 8) | u64::from(self.kind.as_u8());
        out.extend_from_slice(&trailer.to_be_bytes());
        out
    }

    /// Parses an internal key from its [`encode`](Self::encode)d form.
    pub fn decode(bytes: &[u8]) -> Option<InternalKey> {
        if bytes.len() < 8 {
            return None;
        }
        let (user, trailer_bytes) = bytes.split_at(bytes.len() - 8);
        let trailer = u64::from_be_bytes(trailer_bytes.try_into().ok()?);
        let kind = ValueKind::from_u8((trailer & 0xff) as u8)?;
        let seqno = trailer >> 8;
        Some(InternalKey { user_key: user.to_vec(), seqno, kind })
    }

    /// Total encoded length in bytes.
    pub fn encoded_len(&self) -> usize {
        self.user_key.len() + 8
    }
}

impl Ord for InternalKey {
    fn cmp(&self, other: &Self) -> Ordering {
        // User keys ascending, then sequence numbers descending so the newest
        // version of a key is encountered first during forward iteration.
        self.user_key
            .cmp(&other.user_key)
            .then_with(|| other.seqno.cmp(&self.seqno))
            .then_with(|| other.kind.as_u8().cmp(&self.kind.as_u8()))
    }
}

impl PartialOrd for InternalKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Compares two internal keys given in *encoded* form without allocating.
pub fn compare_encoded_internal_keys(a: &[u8], b: &[u8]) -> Ordering {
    debug_assert!(a.len() >= 8 && b.len() >= 8, "encoded internal keys carry an 8-byte trailer");
    let (ua, ta) = a.split_at(a.len() - 8);
    let (ub, tb) = b.split_at(b.len() - 8);
    ua.cmp(ub).then_with(|| {
        let ta = u64::from_be_bytes(ta.try_into().expect("8-byte trailer"));
        let tb = u64::from_be_bytes(tb.try_into().expect("8-byte trailer"));
        // Higher trailer (newer seqno) sorts first.
        tb.cmp(&ta)
    })
}

/// A key/value pair together with its versioning metadata, as produced by iterators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// The internal key (user key + seqno + kind).
    pub key: InternalKey,
    /// The value bytes. Empty for tombstones.
    pub value: Vec<u8>,
}

impl Entry {
    /// Creates a new entry.
    pub fn new(key: InternalKey, value: impl Into<Vec<u8>>) -> Self {
        Entry { key, value: value.into() }
    }

    /// Convenience constructor for a live key/value pair.
    pub fn put(user_key: impl Into<Vec<u8>>, value: impl Into<Vec<u8>>, seqno: SeqNo) -> Self {
        Entry { key: InternalKey::new(user_key, seqno, ValueKind::Put), value: value.into() }
    }

    /// Convenience constructor for a tombstone.
    pub fn delete(user_key: impl Into<Vec<u8>>, seqno: SeqNo) -> Self {
        Entry { key: InternalKey::new(user_key, seqno, ValueKind::Delete), value: Vec::new() }
    }

    /// Approximate in-memory footprint of the entry, used for size accounting.
    pub fn approximate_size(&self) -> usize {
        self.key.user_key.len() + self.value.len() + 24
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_kind_round_trip() {
        for kind in [ValueKind::Put, ValueKind::Delete] {
            assert_eq!(ValueKind::from_u8(kind.as_u8()), Some(kind));
        }
        assert_eq!(ValueKind::from_u8(42), None);
    }

    #[test]
    fn internal_key_round_trip() {
        let key = InternalKey::new(b"hello".to_vec(), 77, ValueKind::Put);
        let encoded = key.encode();
        assert_eq!(encoded.len(), key.encoded_len());
        let decoded = InternalKey::decode(&encoded).expect("decodes");
        assert_eq!(decoded, key);
    }

    #[test]
    fn internal_key_decode_rejects_short_input() {
        assert!(InternalKey::decode(b"short").is_none());
    }

    #[test]
    fn ordering_is_by_user_key_then_seqno_desc() {
        let a = InternalKey::new(b"a".to_vec(), 5, ValueKind::Put);
        let a_newer = InternalKey::new(b"a".to_vec(), 9, ValueKind::Put);
        let b = InternalKey::new(b"b".to_vec(), 1, ValueKind::Put);
        assert!(a_newer < a, "newer version of the same key sorts first");
        assert!(a < b);
        assert!(a_newer < b);
    }

    #[test]
    fn encoded_comparison_matches_decoded_comparison() {
        let keys = [
            InternalKey::new(b"aa".to_vec(), 3, ValueKind::Put),
            InternalKey::new(b"aa".to_vec(), 9, ValueKind::Delete),
            InternalKey::new(b"ab".to_vec(), 1, ValueKind::Put),
            InternalKey::new(b"b".to_vec(), 100, ValueKind::Put),
        ];
        for x in &keys {
            for y in &keys {
                let logical = x.cmp(y);
                let encoded = compare_encoded_internal_keys(&x.encode(), &y.encode());
                assert_eq!(logical, encoded, "mismatch comparing {x:?} and {y:?}");
            }
        }
    }

    #[test]
    fn lookup_key_sees_versions_at_or_below_snapshot() {
        let lookup = InternalKey::for_lookup(b"k".to_vec(), 10);
        let version_at_10 = InternalKey::new(b"k".to_vec(), 10, ValueKind::Put);
        let version_at_11 = InternalKey::new(b"k".to_vec(), 11, ValueKind::Put);
        // The lookup key must not sort after the version it is allowed to see.
        assert!(lookup <= version_at_10);
        assert!(version_at_11 < lookup);
    }

    #[test]
    fn entry_constructors() {
        let put = Entry::put(b"k".to_vec(), b"v".to_vec(), 1);
        assert_eq!(put.key.kind, ValueKind::Put);
        assert_eq!(put.value, b"v");
        let del = Entry::delete(b"k".to_vec(), 2);
        assert_eq!(del.key.kind, ValueKind::Delete);
        assert!(del.value.is_empty());
        assert!(put.approximate_size() > put.key.user_key.len() + put.value.len());
    }
}
