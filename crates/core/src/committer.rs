//! Leader/follower coordination for the group-commit write pipeline.
//!
//! Concurrent [`write`](crate::Db::write) callers enqueue a [`WriterSlot`] here.
//! The first writer to arrive while no leader is active becomes the **leader**:
//! it drains the queue (up to the configured caps) into one *commit group*,
//! performs a single batched WAL append and flush/fsync for everyone, and then
//! every group member — leader and followers alike — applies its own batch to
//! the sharded memtable in parallel, outside the WAL lock. A follower that
//! received an insert ticket acknowledges itself the moment its inserts land
//! (only group-wide failures, which arrive *instead of* a ticket, need the
//! leader to deliver a result); the leader publishes `last_seqno` once the
//! whole group is appended, durable per the sync policy and inserted, then
//! hands leadership to the next waiting writer.
//!
//! This module owns the queueing, hand-off and wake-up protocol; the actual WAL
//! and memtable work lives in `db.rs` (`DbInner::lead_commit_group`). It also
//! hosts the [`PublicationSequencer`] the *pipelined* commit path uses to retire
//! in-flight groups in append order.
//!
//! Lock ordering (deadlock freedom): the WAL mutex may be held while taking the
//! commit queue or the commit gate; the queue lock may be held while taking a
//! slot's state lock. Nothing ever waits on the WAL mutex while holding the
//! gate, the queue or a slot lock.
//!
//! Wake-ups are *adaptive spin-then-park*: a parked writer first polls a cheap
//! atomic readiness flag for a bounded number of spin iterations before falling
//! back to a `Condvar` wait. Under a multi-core NoSync workload the direction
//! usually arrives within the spin window, skipping the scheduler round-trip the
//! `BENCH_write_scaling.json` sweep charged the grouped pipeline for; on a
//! single core the spin burns a few hundred nanoseconds and then parks exactly
//! as before.

// lint:allow-file(no-std-sync-lock) every Mutex here pairs with a Condvar
// (writer hand-off, insert barrier, publication wake-ups), which the vendored
// parking_lot stand-in does not provide; these locks are module-internal and
// their ordering is documented above.
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use triad_common::types::SeqNo;
use triad_common::Result;
use triad_memtable::Memtable;

use crate::batch::{WriteBatch, WriteOptions};

/// Iterations a parked writer polls its readiness flag before `Condvar::wait`.
/// Sized for "the leader is finishing up on another core right now"; anything
/// longer just burns cycles that the producer may need.
const DIRECTION_SPIN_ITERS: u32 = 128;

/// Iterations the leader polls the insert barrier before parking.
const BARRIER_SPIN_ITERS: u32 = 256;

/// What a parked writer is told to do next.
pub(crate) enum Direction {
    /// Leadership was handed over: drive the next commit group.
    Lead,
    /// The group's WAL write is done: apply your own batch to the memtable,
    /// signal the barrier and return success (a ticket is only ever issued for
    /// a group whose WAL phase succeeded).
    Insert(InsertTicket),
    /// The write is fully committed (or failed); this is its result.
    Done(Result<SeqNo>),
}

/// Everything a group member needs to apply its batch to the memtable.
pub(crate) struct InsertTicket {
    /// Id of the commit log the group was appended to.
    pub(crate) log_id: u64,
    /// Sequence number of this member's first operation.
    pub(crate) first_seqno: SeqNo,
    /// Absolute commit-log offset of each of this member's records, in op order.
    pub(crate) offsets: Vec<u64>,
    /// The memory component that was active when the group committed.
    pub(crate) mem: Arc<Memtable>,
    /// Completion barrier the member must signal after inserting.
    pub(crate) barrier: Arc<InsertBarrier>,
    /// Whether the member may acknowledge its write the moment its inserts land.
    ///
    /// `true` on the grouped path (the group's WAL write was already as durable
    /// as promised when the ticket was issued) and for pipelined `NoSync`
    /// groups. `false` for pipelined groups that still owe an fsync: the member
    /// must park again for the leader's `Done` — a sync-required write never
    /// acknowledges before the durability watermark passes its end offset.
    pub(crate) acked_on_insert: bool,
}

/// Counts down the group members still applying their memtable inserts.
///
/// The count lives in an atomic so the leader can spin on it briefly (the
/// common case: followers finish within a microsecond of the leader) before
/// parking on the condvar.
pub(crate) struct InsertBarrier {
    remaining: AtomicUsize,
    lock: Mutex<()>,
    drained: Condvar,
}

impl InsertBarrier {
    pub(crate) fn new(members: usize) -> Arc<Self> {
        Arc::new(InsertBarrier {
            remaining: AtomicUsize::new(members),
            lock: Mutex::new(()),
            drained: Condvar::new(),
        })
    }

    /// Marks one member's inserts complete.
    pub(crate) fn arrive(&self) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Taking the lock before notifying closes the gap where the waiter
            // checked the count, found it non-zero, and has not yet parked.
            let _guard = self.lock.lock().expect("barrier lock poisoned");
            self.drained.notify_all();
        }
    }

    /// Blocks until every member has arrived, spinning briefly first.
    pub(crate) fn wait_drained(&self) {
        for _ in 0..BARRIER_SPIN_ITERS {
            if self.remaining.load(Ordering::Acquire) == 0 {
                return;
            }
            std::hint::spin_loop();
        }
        let mut guard = self.lock.lock().expect("barrier lock poisoned");
        while self.remaining.load(Ordering::Acquire) > 0 {
            guard = self.drained.wait(guard).expect("barrier lock poisoned");
        }
    }
}

/// Per-slot progress through the commit protocol.
enum SlotState {
    /// Parked in the queue, waiting for a leader (or for promotion).
    Waiting,
    /// Promoted: this writer must become the next leader.
    Lead,
    /// WAL phase done; the ticket describes the member's memtable work.
    Insert(InsertTicket),
    /// The ticket has been taken; inserts are in flight.
    Inserting,
    /// Final result delivered by the leader.
    Done(Result<SeqNo>),
    /// The result has been consumed; terminal.
    Finished,
}

/// One queued writer: its batch, its options and its progress.
pub(crate) struct WriterSlot {
    pub(crate) batch: WriteBatch,
    pub(crate) opts: WriteOptions,
    state: Mutex<SlotState>,
    wake: Condvar,
    /// Set (under the state lock) whenever a consumable direction is stored;
    /// cleared when one is taken. Lets [`wait_for_direction`] poll without
    /// touching the mutex during its spin phase.
    ready: AtomicBool,
}

impl WriterSlot {
    fn new(batch: WriteBatch, opts: WriteOptions) -> Arc<Self> {
        Arc::new(WriterSlot {
            batch,
            opts,
            state: Mutex::new(SlotState::Waiting),
            wake: Condvar::new(),
            ready: AtomicBool::new(false),
        })
    }

    /// Consumes a pending direction, if any. Must run under the state lock.
    fn take_direction(&self, state: &mut SlotState) -> Option<Direction> {
        let direction = match state {
            SlotState::Waiting | SlotState::Inserting => return None,
            SlotState::Lead => Direction::Lead,
            SlotState::Insert(_) => {
                let SlotState::Insert(ticket) = std::mem::replace(state, SlotState::Inserting)
                else {
                    unreachable!("matched Insert above");
                };
                Direction::Insert(ticket)
            }
            SlotState::Done(_) => {
                let SlotState::Done(result) = std::mem::replace(state, SlotState::Finished) else {
                    unreachable!("matched Done above");
                };
                Direction::Done(result)
            }
            SlotState::Finished => {
                unreachable!("a slot's result is consumed exactly once")
            }
        };
        self.ready.store(false, Ordering::Relaxed);
        Some(direction)
    }

    /// Waits until the leader (or a hand-off) tells this writer what to do:
    /// bounded spin on the readiness flag first, then park on the condvar.
    pub(crate) fn wait_for_direction(&self) -> Direction {
        for _ in 0..DIRECTION_SPIN_ITERS {
            if self.ready.load(Ordering::Acquire) {
                let mut state = self.state.lock().expect("slot lock poisoned");
                if let Some(direction) = self.take_direction(&mut state) {
                    return direction;
                }
            }
            std::hint::spin_loop();
        }
        let mut state = self.state.lock().expect("slot lock poisoned");
        loop {
            if let Some(direction) = self.take_direction(&mut state) {
                return direction;
            }
            state = self.wake.wait(state).expect("slot lock poisoned");
        }
    }

    /// Stores a direction and wakes the (possibly parked) owner.
    fn deliver(&self, new_state: SlotState) {
        let mut state = self.state.lock().expect("slot lock poisoned");
        *state = new_state;
        self.ready.store(true, Ordering::Release);
        drop(state);
        self.wake.notify_one();
    }

    /// Leader→follower: the WAL phase succeeded, apply your inserts.
    pub(crate) fn begin_insert(&self, ticket: InsertTicket) {
        self.deliver(SlotState::Insert(ticket));
    }

    /// Leader→follower: final result (after `last_seqno` is published, on
    /// success; immediately, on a group-wide failure).
    pub(crate) fn finish(&self, result: Result<SeqNo>) {
        self.deliver(SlotState::Done(result));
    }

    fn promote(&self) {
        self.deliver(SlotState::Lead);
    }
}

#[derive(Default)]
struct CommitQueue {
    pending: VecDeque<Arc<WriterSlot>>,
    /// `true` while some writer holds leadership (it may not be in `pending`).
    leader_active: bool,
    /// `true` while a pipelined commit group's fsync is in flight. Writers that
    /// arrive in that window queue up instead of leading: their bytes could not
    /// become durable before the *next* fsync anyway, so leading a tiny group
    /// each would only multiply per-group overhead. When the fsync completes,
    /// [`Committer::end_sync`] promotes one of them to lead a single large
    /// group — restoring grouped-commit batching while the pipeline still
    /// overlaps that group's append with the previous group's fsync.
    sync_in_flight: bool,
}

/// The pending-writers queue and leadership token.
#[derive(Default)]
pub(crate) struct Committer {
    queue: Mutex<CommitQueue>,
}

impl Committer {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Registers a writer. Returns its slot and whether it is the leader: a
    /// leader must call `lead` logic and then [`handoff`](Self::handoff); a
    /// follower parks on [`WriterSlot::wait_for_direction`]. A writer arriving
    /// while an fsync is in flight queues even without an active leader; the
    /// fsync's completion promotes it (see [`end_sync`](Self::end_sync)).
    pub(crate) fn join(&self, batch: WriteBatch, opts: WriteOptions) -> (Arc<WriterSlot>, bool) {
        let slot = WriterSlot::new(batch, opts);
        let mut queue = self.queue.lock().expect("commit queue poisoned");
        if queue.leader_active || queue.sync_in_flight {
            queue.pending.push_back(Arc::clone(&slot));
            (slot, false)
        } else {
            queue.leader_active = true;
            (slot, true)
        }
    }

    /// Marks a pipelined fsync as in flight: writers arriving from now on
    /// accumulate in the queue instead of leading their own groups.
    pub(crate) fn begin_sync(&self) {
        self.queue.lock().expect("commit queue poisoned").sync_in_flight = true;
    }

    /// Marks the pipelined fsync complete and, if the accumulation left queued
    /// writers without a leader, promotes the oldest to lead them as one group.
    pub(crate) fn end_sync(&self) {
        let mut queue = self.queue.lock().expect("commit queue poisoned");
        queue.sync_in_flight = false;
        if !queue.leader_active {
            if let Some(next) = queue.pending.pop_front() {
                queue.leader_active = true;
                next.promote();
            }
        }
    }

    /// Moves queued writers into `group` until it reaches `max_batches` batches
    /// or adding the next batch would push the summed key+value bytes past
    /// `max_bytes`. The leader's own batch (already in `group`) always counts.
    pub(crate) fn drain(
        &self,
        group: &mut Vec<Arc<WriterSlot>>,
        max_batches: usize,
        max_bytes: usize,
    ) {
        let mut queue = self.queue.lock().expect("commit queue poisoned");
        let mut bytes: usize = group.iter().map(|slot| slot.batch.approximate_size()).sum();
        while group.len() < max_batches {
            let Some(front) = queue.pending.front() else { break };
            let front_bytes = front.batch.approximate_size();
            if bytes.saturating_add(front_bytes) > max_bytes {
                break;
            }
            bytes += front_bytes;
            let slot = queue.pending.pop_front().expect("front observed above");
            group.push(slot);
        }
    }

    /// Releases leadership: promotes the oldest waiting writer to leader, or
    /// clears the leadership token if the queue is empty.
    pub(crate) fn handoff(&self) {
        let mut queue = self.queue.lock().expect("commit queue poisoned");
        if let Some(next) = queue.pending.pop_front() {
            // Leadership transfers directly; `leader_active` stays set. The
            // promoted writer re-drains the queue itself (including any writers
            // that arrived since this drain).
            next.promote();
        } else {
            queue.leader_active = false;
        }
    }
}

/// Retires pipelined commit groups in append order — without ever parking.
///
/// The pipelined path decouples appending from publication: group N+1 may finish
/// its memtable inserts (and even its fsync) while group N is still in flight.
/// `last_seqno` must nevertheless move monotonically through contiguous group
/// ranges, so every group takes a ticket (its *group index*, assigned under the
/// append lock) and *completes* it when done: the completion is registered, and
/// whichever thread is inside the sequencer drains every ready-in-order entry —
/// applying each group's published seqno via the caller's closure. A completing
/// group whose predecessors are still in flight just leaves its entry behind
/// and moves on; the predecessor that arrives last applies it. A group that
/// failed after its append completes with `None`, so a consumed-but-unpublished
/// seqno range never wedges the pipeline.
#[derive(Debug, Default)]
pub(crate) struct PublicationSequencer {
    state: Mutex<PublishState>,
}

#[derive(Debug, Default)]
struct PublishState {
    /// The next group index to retire.
    next: u64,
    /// Completed groups waiting for a predecessor: index → published seqno
    /// (`None` for failed groups, which retire silently).
    ready: std::collections::BTreeMap<u64, Option<SeqNo>>,
}

impl PublicationSequencer {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Registers group `index` as complete (`seqno` = its group end, or `None`
    /// if it failed) and drains every in-order ready entry, invoking `publish`
    /// with each successively larger published seqno. Returns how many groups
    /// retired in this call (0 when a predecessor is still in flight).
    pub(crate) fn complete(
        &self,
        index: u64,
        seqno: Option<SeqNo>,
        mut publish: impl FnMut(SeqNo),
    ) -> u64 {
        let mut state = self.state.lock().expect("publication sequencer poisoned");
        state.ready.insert(index, seqno);
        let mut retired = 0;
        loop {
            let next = state.next;
            let Some(entry) = state.ready.remove(&next) else { break };
            if let Some(group_end) = entry {
                publish(group_end);
            }
            state.next += 1;
            retired += 1;
        }
        retired
    }
}

impl std::fmt::Debug for Committer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let queue = self.queue.lock().expect("commit queue poisoned");
        f.debug_struct("Committer")
            .field("pending", &queue.pending.len())
            .field("leader_active", &queue.leader_active)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch_of(bytes: usize) -> WriteBatch {
        let mut batch = WriteBatch::new();
        batch.put(b"k".to_vec(), vec![0u8; bytes.saturating_sub(1)]);
        batch
    }

    #[test]
    fn first_joiner_leads_followers_queue() {
        let committer = Committer::new();
        let (_leader, is_leader) = committer.join(batch_of(8), WriteOptions::default());
        assert!(is_leader);
        let (_follower, follows) = committer.join(batch_of(8), WriteOptions::default());
        assert!(!follows);
    }

    #[test]
    fn drain_respects_batch_and_byte_caps() {
        let committer = Committer::new();
        let (leader, _) = committer.join(batch_of(10), WriteOptions::default());
        for _ in 0..5 {
            committer.join(batch_of(10), WriteOptions::default());
        }
        let mut group = vec![leader];
        committer.drain(&mut group, 3, usize::MAX);
        assert_eq!(group.len(), 3, "batch cap limits the group");
        let mut rest = vec![group.pop().unwrap()];
        committer.drain(&mut rest, usize::MAX, 25);
        // 10 bytes already in the group; only one more 10-byte batch fits under 25.
        assert_eq!(rest.len(), 2, "byte cap limits the group");
    }

    #[test]
    fn handoff_promotes_in_fifo_order_and_clears_when_idle() {
        let committer = Committer::new();
        let (_leader, _) = committer.join(batch_of(4), WriteOptions::default());
        let (second, _) = committer.join(batch_of(4), WriteOptions::default());
        committer.handoff();
        // The second writer was promoted; its thread would observe Lead.
        match second.wait_for_direction() {
            Direction::Lead => {}
            _ => panic!("expected promotion to leader"),
        }
        // Queue now empty: hand-off clears the token so the next joiner leads.
        committer.handoff();
        let (_third, leads) = committer.join(batch_of(4), WriteOptions::default());
        assert!(leads, "leadership token must clear when the queue drains");
    }

    #[test]
    fn barrier_waits_for_every_member() {
        let barrier = InsertBarrier::new(3);
        let waiter = {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || barrier.wait_drained())
        };
        for _ in 0..3 {
            barrier.arrive();
        }
        waiter.join().unwrap();
    }

    #[test]
    fn spin_phase_picks_up_a_direction_delivered_before_the_wait() {
        // The direction arrives before wait_for_direction runs: the spin path
        // must consume it without ever parking (and without losing it).
        let (slot, _) = Committer::new().join(batch_of(4), WriteOptions::default());
        slot.finish(Ok(7));
        match slot.wait_for_direction() {
            Direction::Done(Ok(seqno)) => assert_eq!(seqno, 7),
            _ => panic!("expected the pre-delivered result"),
        }
    }

    #[test]
    fn a_slot_can_park_twice_for_insert_then_done() {
        // The pipelined sync path: an insert ticket first, the final result
        // second. The readiness flag must re-arm between the two directions.
        let committer = Committer::new();
        let (_leader, _) = committer.join(batch_of(4), WriteOptions::default());
        let (slot, _) = committer.join(batch_of(4), WriteOptions::default());
        let barrier = InsertBarrier::new(1);
        slot.begin_insert(InsertTicket {
            log_id: 1,
            first_seqno: 1,
            offsets: vec![0],
            mem: Arc::new(Memtable::new()),
            barrier: Arc::clone(&barrier),
            acked_on_insert: false,
        });
        match slot.wait_for_direction() {
            Direction::Insert(ticket) => {
                assert!(!ticket.acked_on_insert);
                ticket.barrier.arrive();
            }
            _ => panic!("expected the insert ticket"),
        }
        barrier.wait_drained();
        slot.finish(Ok(9));
        match slot.wait_for_direction() {
            Direction::Done(Ok(seqno)) => assert_eq!(seqno, 9),
            _ => panic!("expected the final result"),
        }
    }

    #[test]
    fn publication_sequencer_applies_completions_in_index_order() {
        let sequencer = PublicationSequencer::new();
        let published = Mutex::new(Vec::new());
        // Indices 1 and 2 complete first: nothing may publish while index 0 is
        // still in flight — the entries wait in the ready set.
        assert_eq!(sequencer.complete(1, Some(20), |s| published.lock().unwrap().push(s)), 0);
        assert_eq!(sequencer.complete(2, Some(30), |s| published.lock().unwrap().push(s)), 0);
        assert!(published.lock().unwrap().is_empty(), "nothing may publish before index 0");
        // Index 0 arrives last and drains the whole backlog, in order.
        assert_eq!(sequencer.complete(0, Some(10), |s| published.lock().unwrap().push(s)), 3);
        assert_eq!(*published.lock().unwrap(), vec![10, 20, 30]);
    }

    #[test]
    fn publication_sequencer_retires_failed_groups_silently() {
        let sequencer = PublicationSequencer::new();
        let published = Mutex::new(Vec::new());
        assert_eq!(sequencer.complete(0, Some(5), |s| published.lock().unwrap().push(s)), 1);
        // A failed group completes with None: it retires without publishing…
        assert_eq!(sequencer.complete(1, None, |s| published.lock().unwrap().push(s)), 1);
        // …and the next group drains immediately — no wedged gap.
        assert_eq!(sequencer.complete(2, Some(9), |s| published.lock().unwrap().push(s)), 1);
        assert_eq!(*published.lock().unwrap(), vec![5, 9]);
    }
}
