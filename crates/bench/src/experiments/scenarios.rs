//! The production-traffic scenario suite: an open-loop harness over the
//! declarative [`Scenario`] specs of `triad_workload`.
//!
//! The per-figure runners drive the store *closed-loop*: each thread issues
//! its next operation only after the previous one returns, so when the store
//! slows down the offered load silently slows down with it and tail latency
//! under pressure never shows up. This module measures the other way:
//!
//! * A **dispatcher** thread walks the scenario's deterministic event stream
//!   and releases each operation at its scheduled arrival time (a seeded
//!   Poisson or diurnal-burst schedule in *virtual* nanoseconds, mapped 1:1
//!   onto wall-clock time from the start of the run).
//! * Released operations land in a **bounded queue**; worker threads drain
//!   it. An operation's recorded latency runs from its *scheduled arrival*
//!   to its completion, so time spent queued behind a slow store counts
//!   against the store — the whole point of open-loop measurement. (If the
//!   queue fills, the dispatcher stalls and the stall is both counted and,
//!   because the schedule keeps its original timestamps, still charged to
//!   latency rather than absorbed.)
//! * Scenarios flagged `snapshot_scans` run their range scans against a
//!   **rolling snapshot** — a shared [`Snapshot`] handle the workers re-take
//!   every `snapshot_refresh_every` completed operations — exercising the
//!   MVCC retention machinery under live overwrite traffic.
//!
//! Closed-loop scenarios (arrival [`ArrivalProcess::ClosedLoop`]) take a
//! direct path with no dispatcher or queue; `fig9a_production` reuses it so
//! the production numbers and the scenario numbers come from one runner.
//!
//! Every run reports per-op-kind client latency percentiles (p50/p99/p999,
//! measured as above), the engine's own get/scan histograms from
//! [`Stats`](triad_common::Stats), throughput, write/read amplification and
//! the stream's FNV fingerprint ([`stream_checksum`]) proving which op
//! sequence was measured.

use std::collections::VecDeque;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use triad_common::LatencyHistogram;
use triad_core::{Db, Options, Snapshot, TriadConfig};
use triad_workload::{
    stream_checksum, ArrivalProcess, Scenario, ScenarioMix, ScenarioOp, ScenarioOpKind,
};

use crate::report::{print_table, Table};
use crate::runner::Scale;

/// How one scenario is executed: engine options plus harness shape.
#[derive(Debug, Clone)]
pub struct ScenarioRunConfig {
    /// Engine configuration.
    pub options: Options,
    /// Worker threads draining the queue (or, closed-loop, issuing directly).
    pub threads: usize,
    /// Total operations in the timed phase.
    pub ops: u64,
    /// Seed of the deterministic event stream.
    pub seed: u64,
    /// Capacity of the open-loop arrival queue.
    pub queue_capacity: usize,
    /// Completed operations between snapshot re-takes (rolling-snapshot
    /// scenarios only).
    pub snapshot_refresh_every: u64,
    /// Wait for pending flushes/compactions before capturing final stats.
    pub drain_background: bool,
}

impl ScenarioRunConfig {
    /// The defaults the suite uses at a given scale.
    pub fn for_scale(scale: Scale, options: Options) -> Self {
        ScenarioRunConfig {
            options,
            threads: 4,
            ops: scale.ops(4_000, 200_000),
            seed: 0x5eed,
            queue_capacity: 4_096,
            snapshot_refresh_every: scale.ops(500, 5_000),
            drain_background: true,
        }
    }
}

/// Latency percentiles for one operation kind, in microseconds.
#[derive(Debug, Clone, Copy)]
pub struct OpLatencies {
    /// Observations recorded.
    pub count: u64,
    /// Median.
    pub p50: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile.
    pub p999: f64,
    /// Worst observation.
    pub max: f64,
    /// Mean.
    pub mean: f64,
}

impl OpLatencies {
    fn from_hist(hist: &LatencyHistogram) -> OpLatencies {
        OpLatencies {
            count: hist.count(),
            p50: hist.percentile(50.0) as f64 / 1_000.0,
            p99: hist.percentile(99.0) as f64 / 1_000.0,
            p999: hist.percentile(99.9) as f64 / 1_000.0,
            max: hist.max() as f64 / 1_000.0,
            mean: hist.mean() / 1_000.0,
        }
    }
}

/// Everything measured from one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// The scenario's stable name (`"ycsb_a"`, `"diurnal_burst"`, …).
    pub name: String,
    /// The mix, kept for validation (every kind with probability > 0 must
    /// have been observed).
    pub mix: ScenarioMix,
    /// The mix's short label (`"50g-50p"`).
    pub mix_label: String,
    /// Arrival-process label (`"poisson"`, `"burst"`, `"closed-loop"`).
    pub arrival: &'static str,
    /// Mean offered arrival rate, ops/s (0 for closed loop).
    pub offered_ops_per_sec: f64,
    /// Whether scans ran against the rolling snapshot.
    pub snapshot_scans: bool,
    /// Worker threads used.
    pub threads: usize,
    /// Operations executed.
    pub total_ops: u64,
    /// Wall-clock time of the timed phase.
    pub elapsed: Duration,
    /// Thousands of completed operations per second.
    pub kops: f64,
    /// Write amplification over the timed phase (paper definition).
    pub write_amplification: f64,
    /// Table probes per read over the timed phase.
    pub read_amplification: f64,
    /// FNV-1a fingerprint of the exact op stream that was executed.
    pub op_stream_checksum: u64,
    /// Deepest the arrival queue got (0 for closed loop).
    pub max_queue_depth: usize,
    /// Dispatcher pushes that found the queue full and had to wait.
    pub queue_full_stalls: u64,
    /// Times the rolling snapshot was re-taken.
    pub snapshot_rolls: u64,
    /// Configured block-cache budget for this run, in bytes (0 = disabled).
    pub block_cache_bytes: usize,
    /// Block-cache probes served from a cached block during the timed phase.
    pub block_cache_hits: u64,
    /// Block-cache probes that had to load from disk during the timed phase.
    pub block_cache_misses: u64,
    /// Blocks evicted by the CLOCK hand during the timed phase.
    pub block_cache_evictions: u64,
    /// Decoded bytes inserted into the cache during the timed phase.
    pub block_cache_inserted_bytes: u64,
    /// Client-observed latency per op kind, scheduled-arrival → completion.
    /// Always lists all five kinds in [`ScenarioOpKind::all`] order; kinds
    /// the mix never issues report zero counts.
    pub client_latency_us: Vec<(ScenarioOpKind, OpLatencies)>,
    /// The engine's own point-lookup histogram (`Stats::get_latency`).
    pub engine_get_us: OpLatencies,
    /// The engine's own scan histogram (`Stats::scan_latency`).
    pub engine_scan_us: OpLatencies,
}

impl ScenarioOutcome {
    /// The client latencies recorded for `kind`.
    pub fn client_latency(&self, kind: ScenarioOpKind) -> OpLatencies {
        self.client_latency_us
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, l)| *l)
            .expect("every outcome lists all five kinds")
    }

    /// Fraction of block-cache probes served from cache (0 when none ran).
    pub fn block_cache_hit_rate(&self) -> f64 {
        let total = self.block_cache_hits + self.block_cache_misses;
        if total == 0 {
            return 0.0;
        }
        self.block_cache_hits as f64 / total as f64
    }
}

fn kind_slot(kind: ScenarioOpKind) -> usize {
    ScenarioOpKind::all().iter().position(|k| *k == kind).expect("kind is in all()")
}

/// A bounded MPMC queue of scheduled operations. The vendored
/// crossbeam-channel stand-in is unbounded-only, so the open-loop harness
/// carries its own Mutex+Condvar queue: bounded (so an overloaded run cannot
/// grow memory without limit), with dispatcher stalls counted rather than
/// hidden.
struct ArrivalQueue {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

struct QueueState {
    items: VecDeque<(Instant, ScenarioOp)>,
    closed: bool,
    max_depth: usize,
    full_stalls: u64,
}

impl ArrivalQueue {
    fn new(capacity: usize) -> ArrivalQueue {
        ArrivalQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::with_capacity(capacity),
                closed: false,
                max_depth: 0,
                full_stalls: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues one scheduled operation, waiting while the queue is full.
    /// The schedule keeps its original timestamps, so any wait here still
    /// counts against the latency of every operation behind it.
    fn push(&self, scheduled: Instant, op: ScenarioOp) {
        let mut state = self.state.lock().expect("queue lock poisoned");
        if state.items.len() >= self.capacity {
            state.full_stalls += 1;
            while state.items.len() >= self.capacity {
                state = self.not_full.wait(state).expect("queue lock poisoned");
            }
        }
        state.items.push_back((scheduled, op));
        state.max_depth = state.max_depth.max(state.items.len());
        drop(state);
        self.not_empty.notify_one();
    }

    /// Dequeues the next operation, or `None` once the queue is closed and
    /// drained.
    fn pop(&self) -> Option<(Instant, ScenarioOp)> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("queue lock poisoned");
        }
    }

    fn close(&self) {
        self.state.lock().expect("queue lock poisoned").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    fn depth_stats(&self) -> (usize, u64) {
        let state = self.state.lock().expect("queue lock poisoned");
        (state.max_depth, state.full_stalls)
    }
}

/// The rolling snapshot shared by scan workers, plus its roll counter.
struct RollingSnapshot {
    current: Mutex<Arc<Snapshot>>,
    rolls: AtomicU64,
}

impl RollingSnapshot {
    fn new(db: &Db) -> RollingSnapshot {
        RollingSnapshot { current: Mutex::new(Arc::new(db.snapshot())), rolls: AtomicU64::new(0) }
    }

    fn get(&self) -> Arc<Snapshot> {
        Arc::clone(&self.current.lock().expect("snapshot lock poisoned"))
    }

    fn roll(&self, db: &Db) {
        let fresh = Arc::new(db.snapshot());
        *self.current.lock().expect("snapshot lock poisoned") = fresh;
        self.rolls.fetch_add(1, Ordering::Relaxed);
    }
}

/// Shared per-run worker context.
struct WorkerContext {
    db: Arc<Db>,
    /// One client histogram per [`ScenarioOpKind`], indexed by `kind_slot`.
    kind_hists: [LatencyHistogram; 5],
    snapshot: Option<RollingSnapshot>,
    snapshot_refresh_every: u64,
    completed: AtomicU64,
}

impl WorkerContext {
    /// Executes one operation against the store (reads through the rolling
    /// snapshot where the scenario asks for it).
    fn execute(&self, op: &ScenarioOp) -> triad_common::Result<()> {
        match op {
            ScenarioOp::Get { key } => {
                self.db.get(key)?;
            }
            ScenarioOp::Put { key, value } => {
                self.db.put(key, value)?;
            }
            ScenarioOp::Delete { key } => {
                self.db.delete(key)?;
            }
            ScenarioOp::ReadModifyWrite { key, value } => {
                self.db.get(key)?;
                self.db.put(key, value)?;
            }
            ScenarioOp::Scan { start, len } => {
                let take = *len as usize;
                match &self.snapshot {
                    Some(rolling) => {
                        let snap = rolling.get();
                        for pair in snap.scan_range(Some(start), None)?.take(take) {
                            pair?;
                        }
                    }
                    None => {
                        for pair in self.db.scan_range(Some(start), None)?.take(take) {
                            pair?;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Post-completion bookkeeping: advances the completed-op counter and
    /// rolls the shared snapshot on refresh boundaries.
    fn finish_one(&self) {
        let done = self.completed.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(rolling) = &self.snapshot {
            if self.snapshot_refresh_every > 0 && done % self.snapshot_refresh_every == 0 {
                rolling.roll(&self.db);
            }
        }
    }
}

fn unique_dir(label: &str) -> std::path::PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let sanitized: String =
        label.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '-' }).collect();
    std::env::temp_dir().join(format!(
        "triad-scenario-{sanitized}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Sleeps until `target`, spinning only for the final stretch so release
/// jitter stays well under typical inter-arrival gaps (~50 µs at 20k ops/s)
/// without burning a core through long quiet phases.
fn wait_until(target: Instant) {
    loop {
        let now = Instant::now();
        if now >= target {
            return;
        }
        let remain = target - now;
        if remain > Duration::from_millis(2) {
            std::thread::sleep(remain - Duration::from_millis(1));
        } else {
            std::hint::spin_loop();
        }
    }
}

/// Runs one scenario and returns its outcome. The database lives in a fresh
/// temporary directory that is removed afterwards.
pub fn run_scenario(
    scenario: &Scenario,
    config: &ScenarioRunConfig,
) -> triad_common::Result<ScenarioOutcome> {
    let dir = unique_dir(&scenario.name);
    let _ = std::fs::remove_dir_all(&dir);
    let db = Arc::new(Db::open(&dir, config.options.clone())?);

    for (key, value) in scenario.prepopulation() {
        db.put(&key, &value)?;
    }
    db.flush()?;
    db.wait_for_compactions()?;

    let context = Arc::new(WorkerContext {
        db: Arc::clone(&db),
        kind_hists: std::array::from_fn(|_| LatencyHistogram::new()),
        snapshot: scenario.snapshot_scans.then(|| RollingSnapshot::new(&db)),
        snapshot_refresh_every: config.snapshot_refresh_every.max(1),
        completed: AtomicU64::new(0),
    });

    let before = db.stats();
    let started = Instant::now();
    let (max_queue_depth, queue_full_stalls) = match scenario.arrival {
        ArrivalProcess::ClosedLoop => {
            run_closed_loop(scenario, config, &context)?;
            (0, 0)
        }
        _ => run_open_loop(scenario, config, &context)?,
    };
    let elapsed = started.elapsed();

    if config.drain_background {
        db.flush()?;
        db.wait_for_compactions()?;
    }
    let delta = db.stats().delta_since(&before);
    let stats = db.stats_handle();
    let engine_get_us = OpLatencies::from_hist(stats.get_latency());
    let engine_scan_us = OpLatencies::from_hist(stats.scan_latency());
    let snapshot_rolls =
        context.snapshot.as_ref().map_or(0, |rolling| rolling.rolls.load(Ordering::Relaxed));
    let client_latency_us = ScenarioOpKind::all()
        .iter()
        .map(|&kind| (kind, OpLatencies::from_hist(&context.kind_hists[kind_slot(kind)])))
        .collect();

    // Drop the rolling snapshot before closing the database.
    drop(Arc::try_unwrap(context).map_err(|_| ()).expect("workers joined; context is unique"));
    db.close()?;
    let _ = std::fs::remove_dir_all(&dir);

    Ok(ScenarioOutcome {
        name: scenario.name.clone(),
        mix: scenario.mix,
        mix_label: scenario.mix.label(),
        arrival: scenario.arrival.label(),
        offered_ops_per_sec: scenario.arrival.offered_ops_per_sec(),
        snapshot_scans: scenario.snapshot_scans,
        threads: config.threads,
        total_ops: config.ops,
        elapsed,
        kops: config.ops as f64 / elapsed.as_secs_f64().max(1e-9) / 1_000.0,
        write_amplification: delta.write_amplification(),
        read_amplification: delta.read_amplification(),
        block_cache_bytes: config.options.block_cache,
        block_cache_hits: delta.block_cache_hits,
        block_cache_misses: delta.block_cache_misses,
        block_cache_evictions: delta.block_cache_evictions,
        block_cache_inserted_bytes: delta.block_cache_inserted_bytes,
        op_stream_checksum: stream_checksum(scenario, config.seed, config.ops),
        max_queue_depth,
        queue_full_stalls,
        snapshot_rolls,
        client_latency_us,
        engine_get_us,
        engine_scan_us,
    })
}

/// The open-loop path: one dispatcher releasing the schedule into the
/// bounded queue, `config.threads` workers draining it.
fn run_open_loop(
    scenario: &Scenario,
    config: &ScenarioRunConfig,
    context: &Arc<WorkerContext>,
) -> triad_common::Result<(usize, u64)> {
    let queue = Arc::new(ArrivalQueue::new(config.queue_capacity));

    let mut workers = Vec::new();
    for _ in 0..config.threads.max(1) {
        let queue = Arc::clone(&queue);
        let context = Arc::clone(context);
        workers.push(std::thread::spawn(move || -> triad_common::Result<()> {
            while let Some((scheduled, op)) = queue.pop() {
                context.execute(&op)?;
                // Scheduled arrival → completion: queueing delay (and any
                // dispatcher stall behind a full queue) counts against the
                // store, exactly as an outside client would experience it.
                let latency_ns = scheduled.elapsed().as_nanos() as u64;
                context.kind_hists[kind_slot(op.kind())].record(latency_ns);
                context.finish_one();
            }
            Ok(())
        }));
    }

    let dispatcher = {
        let queue = Arc::clone(&queue);
        let stream = scenario.stream(config.seed, config.ops);
        std::thread::spawn(move || {
            let start = Instant::now();
            for event in stream {
                let scheduled = start + Duration::from_nanos(event.arrival_ns);
                wait_until(scheduled);
                queue.push(scheduled, event.op);
            }
            queue.close();
        })
    };

    dispatcher.join().expect("dispatcher thread panicked");
    for worker in workers {
        worker.join().expect("worker thread panicked")?;
    }
    Ok(queue.depth_stats())
}

/// The closed-loop path: the event stream is split round-robin across the
/// worker threads, each issuing its share back-to-back. Latency runs from op
/// start (there is no schedule to be late against).
fn run_closed_loop(
    scenario: &Scenario,
    config: &ScenarioRunConfig,
    context: &Arc<WorkerContext>,
) -> triad_common::Result<()> {
    let threads = config.threads.max(1);
    let mut shares: Vec<Vec<ScenarioOp>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, event) in scenario.stream(config.seed, config.ops).enumerate() {
        shares[i % threads].push(event.op);
    }
    let mut workers = Vec::new();
    for share in shares {
        let context = Arc::clone(context);
        workers.push(std::thread::spawn(move || -> triad_common::Result<()> {
            for op in share {
                let issued = Instant::now();
                context.execute(&op)?;
                context.kind_hists[kind_slot(op.kind())].record(issued.elapsed().as_nanos() as u64);
                context.finish_one();
            }
            Ok(())
        }));
    }
    for worker in workers {
        worker.join().expect("worker thread panicked")?;
    }
    Ok(())
}

/// Checks a batch of outcomes for schema/coverage problems: duplicate names,
/// op kinds the mix promises but no latency was recorded for, and engine
/// histograms that stayed empty despite read or scan traffic. Returns a list
/// of human-readable violations (empty = valid).
pub fn validate(outcomes: &[ScenarioOutcome]) -> Vec<String> {
    let mut errors = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for outcome in outcomes {
        if !seen.insert(outcome.name.clone()) {
            errors.push(format!("duplicate scenario name {:?}", outcome.name));
        }
        for &kind in ScenarioOpKind::all().iter() {
            let expected = outcome.mix.probability(kind) > 0.0;
            let observed = outcome.client_latency(kind).count > 0;
            if expected && !observed {
                errors.push(format!(
                    "{}: mix promises {} ops but none were recorded",
                    outcome.name,
                    kind.label()
                ));
            }
        }
        let reads = outcome.mix.get + outcome.mix.rmw;
        if reads > 0.0 && outcome.engine_get_us.count == 0 {
            errors.push(format!("{}: engine get histogram is empty despite reads", outcome.name));
        }
        if outcome.mix.scan > 0.0 && outcome.engine_scan_us.count == 0 {
            errors.push(format!("{}: engine scan histogram is empty despite scans", outcome.name));
        }
        // YCSB-C is pure point reads over a prepopulated set: with a block
        // cache enabled, a zero hit rate means the cache is wired up wrong
        // (blocks keyed inconsistently, or probes bypassing it entirely).
        if outcome.name.starts_with("ycsb_c")
            && outcome.block_cache_bytes > 0
            && outcome.block_cache_hit_rate() == 0.0
        {
            errors.push(format!(
                "{}: block cache enabled ({} bytes) but the hit rate is 0",
                outcome.name, outcome.block_cache_bytes
            ));
        }
        if outcome.block_cache_bytes == 0
            && outcome.block_cache_hits + outcome.block_cache_misses > 0
        {
            errors.push(format!("{}: block cache disabled but probes were counted", outcome.name));
        }
    }
    errors
}

/// The block-cache budgets of the YCSB-C sweep: disabled, a budget small
/// enough that the working set does not fit (CLOCK must actually evict), and
/// one comfortably larger than the prepopulated data.
fn cache_sweep(scale: Scale) -> [(&'static str, usize); 3] {
    match scale {
        Scale::Quick => [("off", 0), ("64kib", 64 << 10), ("16mib", 16 << 20)],
        Scale::Full => [("off", 0), ("1mib", 1 << 20), ("64mib", 64 << 20)],
    }
}

/// Runs the whole suite (YCSB A–F plus the burst/churn/drift scenarios) and
/// returns the rendered table alongside the raw outcomes.
pub fn run(scale: Scale) -> triad_common::Result<(Table, Vec<ScenarioOutcome>)> {
    let keys = scale.keys(5_000, 200_000);
    let config = ScenarioRunConfig::for_scale(
        scale,
        super::bench_options(scale, TriadConfig::all_enabled()),
    );
    let mut outcomes = Vec::new();
    for scenario in Scenario::suite(keys) {
        outcomes.push(run_scenario(&scenario, &config)?);
    }

    // Cache-size sweep: the read-only YCSB-C mix re-run at several block-cache
    // budgets, 0 first as the uncached baseline. Same stream, same options
    // otherwise, so the rows are directly comparable before/after columns for
    // the cache (an explicit budget also pins the rows against the
    // TRIAD_BLOCK_CACHE override the smoke jobs use).
    for (label, budget) in cache_sweep(scale) {
        let mut sweep_config = config.clone();
        sweep_config.options.block_cache = budget;
        let mut outcome = run_scenario(&Scenario::ycsb('c', keys), &sweep_config)?;
        outcome.name = format!("ycsb_c_cache_{label}");
        outcomes.push(outcome);
    }

    let mut table = Table::new(&[
        "scenario",
        "mix",
        "arrival",
        "offered kops",
        "kops",
        "get p50/p99/p999 us",
        "put p50/p99/p999 us",
        "scan p50/p99/p999 us",
        "WA",
        "cache hit%",
        "max queue",
        "snap rolls",
    ]);
    let fmt_lat = |l: OpLatencies| {
        if l.count == 0 {
            "-".to_string()
        } else {
            format!("{:.0}/{:.0}/{:.0}", l.p50, l.p99, l.p999)
        }
    };
    for outcome in &outcomes {
        table.add_row(vec![
            outcome.name.clone(),
            outcome.mix_label.clone(),
            outcome.arrival.to_string(),
            format!("{:.0}", outcome.offered_ops_per_sec / 1_000.0),
            format!("{:.1}", outcome.kops),
            fmt_lat(outcome.client_latency(ScenarioOpKind::Get)),
            fmt_lat(outcome.client_latency(ScenarioOpKind::Put)),
            fmt_lat(outcome.client_latency(ScenarioOpKind::Scan)),
            format!("{:.2}", outcome.write_amplification),
            if outcome.block_cache_bytes == 0 {
                "off".to_string()
            } else {
                format!("{:.0}", outcome.block_cache_hit_rate() * 100.0)
            },
            outcome.max_queue_depth.to_string(),
            outcome.snapshot_rolls.to_string(),
        ]);
    }
    print_table(
        "Scenario suite: open-loop production traffic (latency from scheduled arrival)",
        &table,
        "latency counts queueing delay against the store; closed-loop figure runners \
         cannot show this because their offered load slows down with the store",
    );
    Ok((table, outcomes))
}

fn json_latency(l: &OpLatencies) -> String {
    format!(
        "{{\"count\": {}, \"p50\": {:.1}, \"p99\": {:.1}, \"p999\": {:.1}, \
         \"max\": {:.1}, \"mean\": {:.1}}}",
        l.count, l.p50, l.p99, l.p999, l.max, l.mean
    )
}

/// Serializes the suite's outcomes to the JSON trajectory file
/// (`BENCH_scenarios.json`). The schema is stable: every scenario always
/// lists all five op kinds under `client_latency_us` (zero counts included)
/// plus the engine's `get`/`scan` histograms, so downstream diffing never
/// sees keys appear or vanish with the mix. `replication` is the
/// pre-rendered object from
/// [`replica_lag::json`](super::replica_lag::json), when that scenario ran.
pub fn write_json(
    path: &Path,
    scale: Scale,
    outcomes: &[ScenarioOutcome],
    replication: Option<&str>,
) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"experiment\": \"scenarios\",\n");
    out.push_str(&format!(
        "  \"scale\": \"{}\",\n",
        if scale == Scale::Full { "full" } else { "quick" }
    ));
    out.push_str(&format!("  \"meta\": {},\n", crate::report::host_meta_json()));
    out.push_str(
        "  \"latency_unit\": \"microseconds; open-loop client latency runs from scheduled \
         arrival to completion (queueing delay included), engine latency from the store's \
         own get/scan histograms\",\n",
    );
    out.push_str("  \"scenarios\": [\n");
    for (i, o) in outcomes.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"mix\": \"{}\", \"arrival\": \"{}\", \
             \"offered_ops_per_sec\": {:.0}, \"snapshot_scans\": {}, \"threads\": {}, \
             \"total_ops\": {}, \"elapsed_sec\": {:.3}, \"kops\": {:.2}, \
             \"write_amplification\": {:.3}, \"read_amplification\": {:.3}, \
             \"op_stream_checksum\": \"{:#018x}\", \"max_queue_depth\": {}, \
             \"queue_full_stalls\": {}, \"snapshot_rolls\": {},\n",
            o.name,
            o.mix_label,
            o.arrival,
            o.offered_ops_per_sec,
            o.snapshot_scans,
            o.threads,
            o.total_ops,
            o.elapsed.as_secs_f64(),
            o.kops,
            o.write_amplification,
            o.read_amplification,
            o.op_stream_checksum,
            o.max_queue_depth,
            o.queue_full_stalls,
            o.snapshot_rolls,
        ));
        out.push_str("     \"client_latency_us\": {");
        for (j, (kind, lat)) in o.client_latency_us.iter().enumerate() {
            out.push_str(&format!(
                "\"{}\": {}{}",
                kind.label(),
                json_latency(lat),
                if j + 1 == o.client_latency_us.len() { "" } else { ", " }
            ));
        }
        out.push_str("},\n");
        out.push_str(&format!(
            "     \"block_cache\": {{\"budget_bytes\": {}, \"block_cache_hits\": {}, \
             \"block_cache_misses\": {}, \"block_cache_evictions\": {}, \
             \"block_cache_inserted_bytes\": {}, \"hit_rate\": {:.4}}},\n",
            o.block_cache_bytes,
            o.block_cache_hits,
            o.block_cache_misses,
            o.block_cache_evictions,
            o.block_cache_inserted_bytes,
            o.block_cache_hit_rate(),
        ));
        out.push_str(&format!(
            "     \"engine_latency_us\": {{\"get\": {}, \"scan\": {}}}}}{}\n",
            json_latency(&o.engine_get_us),
            json_latency(&o.engine_scan_us),
            if i + 1 == outcomes.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]");
    if let Some(replication) = replication {
        out.push_str(",\n  \"replication\": ");
        out.push_str(replication);
    }
    out.push_str("\n}\n");
    std::fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config(ops: u64) -> ScenarioRunConfig {
        let mut options = Options::small_for_tests();
        options.l0_compaction_trigger = 2;
        ScenarioRunConfig {
            options,
            threads: 2,
            ops,
            seed: 42,
            queue_capacity: 64,
            snapshot_refresh_every: 100,
            drain_background: false,
        }
    }

    #[test]
    fn open_loop_run_covers_the_mix_and_validates() {
        // A fast schedule keeps the test short: ~800 ops at 50k ops/s.
        let mut scenario = Scenario::ycsb('a', 500);
        scenario.arrival = ArrivalProcess::Poisson { ops_per_sec: 50_000.0 };
        let outcome = run_scenario(&scenario, &tiny_config(800)).unwrap();
        assert_eq!(outcome.total_ops, 800);
        assert!(outcome.kops > 0.0);
        assert!(outcome.client_latency(ScenarioOpKind::Get).count > 0);
        assert!(outcome.client_latency(ScenarioOpKind::Put).count > 0);
        assert_eq!(outcome.client_latency(ScenarioOpKind::Delete).count, 0);
        assert!(outcome.engine_get_us.count > 0, "Db::get must feed the engine histogram");
        let get = outcome.client_latency(ScenarioOpKind::Get);
        assert!(get.p999 >= get.p99 && get.p99 >= get.p50, "percentiles monotone");
        assert!(validate(std::slice::from_ref(&outcome)).is_empty());
        assert_eq!(
            outcome.op_stream_checksum,
            triad_workload::stream_checksum(&scenario, 42, 800),
            "the recorded checksum matches an independent regeneration"
        );
    }

    #[test]
    fn rolling_snapshot_scans_record_scan_latency() {
        let mut scenario = Scenario::ycsb('e', 500);
        scenario.arrival = ArrivalProcess::Poisson { ops_per_sec: 50_000.0 };
        let mut config = tiny_config(400);
        config.snapshot_refresh_every = 50;
        let outcome = run_scenario(&scenario, &config).unwrap();
        assert!(outcome.snapshot_scans);
        assert!(outcome.client_latency(ScenarioOpKind::Scan).count > 0);
        assert!(outcome.engine_scan_us.count > 0, "snapshot scans must feed the scan histogram");
        assert!(outcome.snapshot_rolls >= 1, "the snapshot must have rolled at least once");
        assert!(validate(std::slice::from_ref(&outcome)).is_empty());
    }

    #[test]
    fn closed_loop_path_runs_without_a_queue() {
        let profile =
            triad_workload::ProductionProfile::new(triad_workload::ProductionWorkload::W2, 10_000);
        let scenario = Scenario::production(&profile);
        let outcome = run_scenario(&scenario, &tiny_config(600)).unwrap();
        assert_eq!(outcome.arrival, "closed-loop");
        assert_eq!(outcome.max_queue_depth, 0);
        assert_eq!(outcome.queue_full_stalls, 0);
        assert!(outcome.client_latency(ScenarioOpKind::Put).count == 600);
        assert!(validate(std::slice::from_ref(&outcome)).is_empty());
    }

    #[test]
    fn json_is_schema_stable_across_mixes() {
        let mut scenario = Scenario::ycsb('c', 300);
        scenario.arrival = ArrivalProcess::Poisson { ops_per_sec: 50_000.0 };
        let outcome = run_scenario(&scenario, &tiny_config(300)).unwrap();
        let path = std::env::temp_dir()
            .join(format!("triad-scenarios-json-test-{}.json", std::process::id()));
        write_json(&path, Scale::Quick, std::slice::from_ref(&outcome), None).unwrap();
        let json = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        // All five kinds appear even though YCSB-C only ever issues gets.
        for label in ["\"get\"", "\"put\"", "\"scan\"", "\"rmw\"", "\"delete\""] {
            assert!(json.contains(label), "missing {label}");
        }
        for field in ["\"p50\"", "\"p99\"", "\"p999\"", "\"op_stream_checksum\""] {
            assert!(json.contains(field), "missing {field}");
        }
    }

    #[test]
    fn validate_flags_promised_but_missing_kinds() {
        let mut scenario = Scenario::ycsb('c', 300);
        scenario.arrival = ArrivalProcess::Poisson { ops_per_sec: 50_000.0 };
        let mut outcome = run_scenario(&scenario, &tiny_config(300)).unwrap();
        // Claim the mix also promised scans: validation must notice none ran.
        outcome.mix = ScenarioMix::new(0.5, 0.0, 0.5, 0.0, 0.0);
        let errors = validate(std::slice::from_ref(&outcome));
        assert!(errors.iter().any(|e| e.contains("scan")), "errors: {errors:?}");
    }

    #[test]
    fn cache_counters_flow_into_outcomes_and_json() {
        let mut scenario = Scenario::ycsb('c', 500);
        scenario.arrival = ArrivalProcess::Poisson { ops_per_sec: 50_000.0 };
        let mut config = tiny_config(400);
        config.options.block_cache = 1 << 20;
        let outcome = run_scenario(&scenario, &config).unwrap();
        assert!(outcome.block_cache_misses > 0, "reads must probe the cache");
        assert!(outcome.block_cache_hit_rate() > 0.0, "repeated reads must hit");
        assert!(validate(std::slice::from_ref(&outcome)).is_empty());

        let path = std::env::temp_dir()
            .join(format!("triad-scenarios-cache-json-test-{}.json", std::process::id()));
        write_json(&path, Scale::Quick, std::slice::from_ref(&outcome), None).unwrap();
        let json = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        for field in [
            "\"block_cache_hits\"",
            "\"block_cache_misses\"",
            "\"block_cache_evictions\"",
            "\"hit_rate\"",
        ] {
            assert!(json.contains(field), "missing {field}");
        }
    }

    #[test]
    fn disabled_cache_runs_report_zero_probes() {
        let mut scenario = Scenario::ycsb('c', 500);
        scenario.arrival = ArrivalProcess::Poisson { ops_per_sec: 50_000.0 };
        let mut config = tiny_config(300);
        config.options.block_cache = 0;
        let outcome = run_scenario(&scenario, &config).unwrap();
        assert_eq!(outcome.block_cache_hits + outcome.block_cache_misses, 0);
        assert!(validate(std::slice::from_ref(&outcome)).is_empty());
    }

    #[test]
    fn validate_flags_a_cold_cache_on_ycsb_c() {
        let mut scenario = Scenario::ycsb('c', 500);
        scenario.arrival = ArrivalProcess::Poisson { ops_per_sec: 50_000.0 };
        let mut config = tiny_config(300);
        config.options.block_cache = 1 << 20;
        let mut outcome = run_scenario(&scenario, &config).unwrap();
        // Fake a wired-up-wrong cache: enabled, probed, but never hitting.
        outcome.block_cache_hits = 0;
        let errors = validate(std::slice::from_ref(&outcome));
        assert!(errors.iter().any(|e| e.contains("hit rate is 0")), "errors: {errors:?}");
    }

    #[test]
    fn bounded_queue_counts_depth_and_closes_cleanly() {
        let queue = ArrivalQueue::new(2);
        let now = Instant::now();
        queue.push(now, ScenarioOp::Get { key: vec![1] });
        queue.push(now, ScenarioOp::Get { key: vec![2] });
        assert!(queue.pop().is_some());
        assert!(queue.pop().is_some());
        queue.close();
        assert!(queue.pop().is_none(), "closed and drained");
        let (max_depth, stalls) = queue.depth_stats();
        assert_eq!(max_depth, 2);
        assert_eq!(stalls, 0);
    }
}
