// lint-fixture: crates/core/src/table_cache.rs
// A missing table file is corruption: surface it, never retry.

fn open_table(&self, file_number: u64) {
    let table = Table::open(&path, Some(cache));
}
