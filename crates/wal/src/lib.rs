//! The commit log (write-ahead log) of the TRIAD engine.
//!
//! Every update is appended to the current commit log before being inserted into the
//! memory component, so that acknowledged writes survive a crash. TRIAD-LOG gives
//! the commit log a second life: when the memory component is flushed, the sealed
//! log file itself becomes the backing store of an L0 "CL-SSTable" and only a small
//! sorted index of `(key → offset)` pairs is written, avoiding the duplicate write
//! of every value.
//!
//! To support that, the log is *offset addressable*: [`LogWriter::append`] returns
//! the byte offset of the record it wrote, and [`LogReader::read_at`] fetches a
//! single record back by offset.
//!
//! ## On-disk format
//!
//! A log file is a sequence of records:
//!
//! ```text
//! +----------------+------------------+---------------------+
//! | masked CRC32C  | payload length   | payload             |
//! | (4 bytes, LE)  | (4 bytes, LE)    | (length bytes)      |
//! +----------------+------------------+---------------------+
//! ```
//!
//! The CRC covers the length field and the payload, so a torn write at the tail of
//! the file is detected and recovery stops cleanly at the last intact record.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod reader;
mod record;
mod writer;

pub use reader::{decode_record_in_buffer, LogReader, RecoveredRecord, TailStatus};
pub use record::{encode_record_parts, encode_record_parts_stamped, BatchStamp, LogRecord};
pub use writer::{BatchEncoder, LogSyncHandle, LogWriter};

use std::path::{Path, PathBuf};

/// Size of the fixed record header (CRC + length).
pub const RECORD_HEADER_LEN: usize = 8;

/// Returns the canonical file name for commit log `id`, e.g. `000042.log`.
pub fn log_file_name(id: u64) -> String {
    format!("{id:06}.log")
}

/// Returns the full path of commit log `id` inside `dir`.
pub fn log_file_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(log_file_name(id))
}

/// Parses a commit log id back out of a file name produced by [`log_file_name`].
pub fn parse_log_file_name(name: &str) -> Option<u64> {
    let stem = name.strip_suffix(".log")?;
    if stem.is_empty() || !stem.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    stem.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_name_round_trip() {
        for id in [0u64, 1, 42, 999_999, 1_000_000, u64::from(u32::MAX)] {
            let name = log_file_name(id);
            assert!(name.ends_with(".log"));
            assert_eq!(parse_log_file_name(&name), Some(id));
        }
    }

    #[test]
    fn parse_rejects_non_log_names() {
        assert_eq!(parse_log_file_name("000001.sst"), None);
        assert_eq!(parse_log_file_name("abc.log"), None);
        assert_eq!(parse_log_file_name(".log"), None);
        assert_eq!(parse_log_file_name("12x4.log"), None);
    }

    #[test]
    fn path_is_inside_dir() {
        let path = log_file_path(Path::new("/data/triad"), 7);
        assert_eq!(path, PathBuf::from("/data/triad/000007.log"));
    }
}
