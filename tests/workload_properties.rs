//! Property-based tests for the workload generators: Zipfian skew against the
//! theoretical rank probabilities, operation-mix ratio convergence, and
//! seed-determinism of both the classic generator and the scenario streams.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use triad_workload::{
    stream_checksum, KeyDistribution, OperationMix, Scenario, ScenarioMix, WorkloadGenerator,
    WorkloadSpec, Zipfian,
};

/// The generalized harmonic number `H_{n,theta}` — the Zipf normaliser.
fn zeta(n: u64, theta: f64) -> f64 {
    (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

    /// The YCSB-style Zipfian sampler tracks the theoretical distribution:
    /// the hottest rank's empirical frequency lands near `1 / H_{n,theta}`,
    /// the top-10 share near its theoretical mass, and the head of the
    /// distribution dominates the tail.
    fn zipfian_skew_matches_theoretical_ranks(
        // The vendored proptest stand-in has integer strategies only; theta
        // is drawn in hundredths.
        theta_hundredths in 60u32..95,
        seed in any::<u64>(),
    ) {
        let theta = theta_hundredths as f64 / 100.0;
        let n = 500u64;
        let samples = 60_000u64;
        let zipf = Zipfian::new(n, theta);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0u64; n as usize];
        for _ in 0..samples {
            let rank = zipf.sample(&mut rng);
            prop_assert!(rank < n, "sample {rank} out of range");
            counts[rank as usize] += 1;
        }
        let zeta_n = zeta(n, theta);
        let p = |rank: u64| 1.0 / ((rank + 1) as f64).powf(theta) / zeta_n;

        // Hottest rank: within 20% relative of theory (generous against
        // sampling noise; p(0) >= 1/H_{500,0.95} ~ 0.07, so the expected
        // count is in the thousands).
        let hottest = counts[0] as f64 / samples as f64;
        prop_assert!(
            (hottest - p(0)).abs() / p(0) < 0.20,
            "hottest-rank frequency {hottest:.4} vs theoretical {:.4}", p(0)
        );
        // Top-10 mass: within 5 points absolute of theory.
        let top10_mass: f64 = (0..10).map(p).sum();
        let top10: f64 = counts[..10].iter().sum::<u64>() as f64 / samples as f64;
        prop_assert!(
            (top10 - top10_mass).abs() < 0.05,
            "top-10 share {top10:.4} vs theoretical {top10_mass:.4}"
        );
        // The head must dominate: the first 10% of ranks out-draw the last 50%.
        let head: u64 = counts[..(n as usize / 10)].iter().sum();
        let tail: u64 = counts[(n as usize / 2)..].iter().sum();
        prop_assert!(head > tail, "head {head} should out-draw tail {tail}");
    }

    /// The classic three-way operation mix converges to its specified ratios.
    fn operation_mix_ratios_converge(
        read_w in 0u32..8,
        write_w in 1u32..8,
        delete_w in 0u32..4,
        seed in any::<u64>(),
    ) {
        let total_w = (read_w + write_w + delete_w) as f64;
        let mix = OperationMix::new(
            read_w as f64 / total_w,
            write_w as f64 / total_w,
            delete_w as f64 / total_w,
        );
        let spec = WorkloadSpec::synthetic(KeyDistribution::uniform(1_000), mix);
        let mut generator = WorkloadGenerator::new(spec, seed);
        let samples = 20_000u64;
        let mut writes = 0u64;
        let mut deletes = 0u64;
        for _ in 0..samples {
            match generator.next_op() {
                triad_workload::Operation::Put { .. } => writes += 1,
                triad_workload::Operation::Delete { .. } => deletes += 1,
                triad_workload::Operation::Get { .. } => {}
            }
        }
        // 3 points absolute is ~8 sigma at n = 20k: failures mean bias, not noise.
        prop_assert!(
            (writes as f64 / samples as f64 - mix.write).abs() < 0.03,
            "write share {writes} / {samples} vs {:.3}", mix.write
        );
        prop_assert!(
            (deletes as f64 / samples as f64 - mix.delete).abs() < 0.03,
            "delete share {deletes} / {samples} vs {:.3}", mix.delete
        );
    }

    /// The five-way scenario mix converges the same way.
    fn scenario_mix_ratios_converge(
        get_w in 1u32..8,
        put_w in 1u32..8,
        scan_w in 0u32..4,
        seed in any::<u64>(),
    ) {
        let total_w = (get_w + put_w + scan_w) as f64;
        let mix = ScenarioMix::new(
            get_w as f64 / total_w,
            put_w as f64 / total_w,
            scan_w as f64 / total_w,
            0.0,
            0.0,
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let samples = 20_000u64;
        let mut gets = 0u64;
        for _ in 0..samples {
            if mix.sample(&mut rng) == triad_workload::ScenarioOpKind::Get {
                gets += 1;
            }
        }
        prop_assert!(
            (gets as f64 / samples as f64 - mix.get).abs() < 0.03,
            "get share {gets} / {samples} vs {:.3}", mix.get
        );
    }

    /// Identical seeds produce identical op streams, for both the classic
    /// generator and the scenario streams (checksum included).
    fn identical_seeds_produce_identical_streams(
        seed in any::<u64>(),
        ops in 50u64..300,
    ) {
        let spec = WorkloadSpec::synthetic(
            KeyDistribution::zipfian(1_000, 0.9),
            OperationMix::balanced(),
        );
        let mut a = WorkloadGenerator::new(spec.clone(), seed);
        let mut b = WorkloadGenerator::new(spec, seed);
        for _ in 0..ops {
            prop_assert_eq!(a.next_op(), b.next_op());
        }

        let scenario = Scenario::ycsb('a', 1_000);
        let first: Vec<_> = scenario.stream(seed, ops).collect();
        let second: Vec<_> = scenario.stream(seed, ops).collect();
        prop_assert_eq!(first, second);
        prop_assert_eq!(
            stream_checksum(&scenario, seed, ops),
            stream_checksum(&scenario, seed, ops)
        );
    }
}

/// Different seeds produce different streams (fixed seeds, not proptest: the
/// property is about these specific inputs, and a spurious collision would be
/// a deterministic, debuggable failure rather than flake).
#[test]
fn different_seeds_diverge() {
    let scenario = Scenario::ycsb('b', 2_000);
    assert_ne!(stream_checksum(&scenario, 1, 400), stream_checksum(&scenario, 2, 400));
    let spec =
        WorkloadSpec::synthetic(KeyDistribution::zipfian(2_000, 0.9), OperationMix::balanced());
    let ops_a: Vec<_> = {
        let mut generator = WorkloadGenerator::new(spec.clone(), 1);
        (0..200).map(|_| generator.next_op()).collect()
    };
    let ops_b: Vec<_> = {
        let mut generator = WorkloadGenerator::new(spec, 2);
        (0..200).map(|_| generator.next_op()).collect()
    };
    assert_ne!(ops_a, ops_b);
}
