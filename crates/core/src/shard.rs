//! Keyspace sharding: hash routing, the on-disk shard layout and the
//! per-shard engine handle.
//!
//! A sharded database is `Options::shards.count` fully independent LSM
//! engines behind one [`crate::Db`] facade. Each shard owns its own WAL,
//! leader/follower commit pipeline, memtable stack, version set, GC queue
//! and background worker, rooted in a `shard-NNN/` subdirectory with its
//! own manifest. Point operations hash to exactly one shard and touch no
//! cross-shard state on the hot path; only shard-spanning snapshots (and
//! the scans built on them) coordinate across shards, via the router gate
//! (rank `ROUTER`, below `WAL`).
//!
//! # Layout
//!
//! * `count == 1` — the single shard lives directly in the database root,
//!   byte-identical to the unsharded layout of earlier versions.
//! * `count > 1` — the root holds a `SHARDS` marker file recording the
//!   count, plus one `shard-000/` … `shard-NNN/` subdirectory per shard.
//!
//! The persisted count wins on reopen: a database created with four shards
//! reopens with four shards regardless of `Options::shards`. Re-sharding an
//! existing database is not supported; opening a root-layout (unsharded)
//! database with `count > 1` is an [`Error::InvalidArgument`].

use std::path::Path;
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;

use triad_common::{Error, Result};

use crate::db::DbInner;

/// Name of the root-level marker file persisting the shard count.
pub(crate) const SHARDS_MARKER: &str = "SHARDS";

/// Upper bound on the shard count, mirrored by `Options::validate`.
const MAX_SHARDS: usize = 256;

/// Deterministic key → shard routing.
///
/// Routing is FNV-1a over the user key modulo the shard count, so a key's
/// shard is a pure function of `(key, count)` — stable across restarts and
/// across processes. `count == 1` short-circuits to shard 0 without
/// hashing.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ShardRouter {
    count: usize,
}

impl ShardRouter {
    pub(crate) fn new(count: usize) -> ShardRouter {
        debug_assert!(count >= 1);
        ShardRouter { count }
    }

    /// Index of the shard owning `key`.
    pub(crate) fn route(&self, key: &[u8]) -> usize {
        if self.count == 1 {
            return 0;
        }
        (fnv1a(key) % self.count as u64) as usize
    }
}

/// 64-bit FNV-1a: cheap, allocation-free and stable across platforms.
fn fnv1a(key: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in key {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Subdirectory name for shard `index` (`shard-000`, `shard-001`, …).
pub(crate) fn dir_name(index: usize) -> String {
    format!("shard-{index:03}")
}

/// Reads the persisted shard count, if the root carries a `SHARDS` marker.
pub(crate) fn read_marker(root: &Path) -> Result<Option<usize>> {
    let marker = root.join(SHARDS_MARKER);
    let raw = match std::fs::read_to_string(&marker) {
        Ok(raw) => raw,
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(err) => return Err(Error::io(format!("read {}", marker.display()), err)),
    };
    let count: usize = raw
        .trim()
        .parse()
        .map_err(|_| Error::corruption_at(format!("unparsable SHARDS marker {raw:?}"), &marker))?;
    if !(2..=MAX_SHARDS).contains(&count) {
        return Err(Error::corruption_at(
            format!("SHARDS marker records implausible shard count {count}"),
            &marker,
        ));
    }
    Ok(Some(count))
}

/// Persists the shard count marker (only ever written for `count > 1`).
pub(crate) fn write_marker(root: &Path, count: usize) -> Result<()> {
    debug_assert!(count > 1);
    let marker = root.join(SHARDS_MARKER);
    std::fs::write(&marker, format!("{count}\n"))
        .map_err(|err| Error::io(format!("write {}", marker.display()), err))?;
    let file = std::fs::File::open(&marker)
        .map_err(|err| Error::io(format!("open {}", marker.display()), err))?;
    file.sync_all().map_err(|err| Error::io(format!("sync {}", marker.display()), err))?;
    Ok(())
}

/// Resolves the effective shard count for a database rooted at `root`.
///
/// A persisted `SHARDS` marker always wins over the requested count. Without
/// a marker, shard subdirectories mean the marker was lost (corruption), a
/// root-level `CURRENT` means an unsharded database that cannot be reopened
/// with `requested > 1`, and a fresh directory adopts `requested`.
pub(crate) fn resolve_count(root: &Path, requested: usize) -> Result<usize> {
    if let Some(persisted) = read_marker(root)? {
        return Ok(persisted);
    }
    if root.join(dir_name(0)).exists() {
        return Err(Error::corruption_at(
            "shard directories present but the SHARDS marker is missing",
            root,
        ));
    }
    if requested > 1 && root.join("CURRENT").exists() {
        return Err(Error::InvalidArgument(format!(
            "database at {} was created unsharded; it cannot be reopened with shards.count = {requested}",
            root.display()
        )));
    }
    Ok(requested)
}

/// One independent LSM engine plus its background worker thread.
///
/// The engine itself ([`DbInner`]) is exactly the pre-sharding database;
/// `Shard` only pairs it with the worker handle so the [`crate::Db`] facade
/// can open and close each shard independently. Construction and teardown
/// (`Shard::open` / `Shard::close`) live in `db.rs`, next to the `DbInner`
/// internals they manipulate.
pub(crate) struct Shard {
    pub(crate) inner: Arc<DbInner>,
    pub(crate) worker: Mutex<Option<JoinHandle<()>>>,
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempRoot(std::path::PathBuf);

    impl TempRoot {
        fn new(name: &str) -> TempRoot {
            let path = std::env::temp_dir().join(format!(
                "triad-shard-{name}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&path);
            std::fs::create_dir_all(&path).expect("create temp root");
            TempRoot(path)
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempRoot {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let router = ShardRouter::new(4);
        for i in 0..1000u32 {
            let key = format!("key-{i:08}");
            let first = router.route(key.as_bytes());
            assert!(first < 4);
            assert_eq!(first, router.route(key.as_bytes()));
        }
    }

    #[test]
    fn single_shard_routing_never_hashes_away_from_zero() {
        let router = ShardRouter::new(1);
        assert_eq!(router.route(b"anything"), 0);
        assert_eq!(router.route(b""), 0);
    }

    #[test]
    fn routing_spreads_keys_across_shards() {
        let router = ShardRouter::new(4);
        let mut hits = [0usize; 4];
        for i in 0..4000u32 {
            hits[router.route(format!("user{i:06}").as_bytes())] += 1;
        }
        // FNV-1a over distinct keys should land within 2x of uniform.
        for (shard, &count) in hits.iter().enumerate() {
            assert!(count > 500 && count < 2000, "shard {shard} got {count} of 4000 keys");
        }
    }

    #[test]
    fn dir_names_are_zero_padded() {
        assert_eq!(dir_name(0), "shard-000");
        assert_eq!(dir_name(17), "shard-017");
        assert_eq!(dir_name(255), "shard-255");
    }

    #[test]
    fn marker_round_trips() {
        let dir = TempRoot::new("marker-round-trips");
        assert_eq!(read_marker(dir.path()).expect("read"), None);
        write_marker(dir.path(), 8).expect("write");
        assert_eq!(read_marker(dir.path()).expect("read"), Some(8));
        assert_eq!(resolve_count(dir.path(), 1).expect("resolve"), 8);
    }

    #[test]
    fn garbage_markers_are_corruption() {
        let dir = TempRoot::new("garbage-markers");
        std::fs::write(dir.path().join(SHARDS_MARKER), "not-a-count\n").expect("write");
        assert!(matches!(read_marker(dir.path()), Err(Error::Corruption { .. })));
        std::fs::write(dir.path().join(SHARDS_MARKER), "0\n").expect("write");
        assert!(matches!(read_marker(dir.path()), Err(Error::Corruption { .. })));
    }

    #[test]
    fn unsharded_databases_refuse_a_sharded_reopen() {
        let dir = TempRoot::new("unsharded-reopen");
        std::fs::write(dir.path().join("CURRENT"), "MANIFEST-000001\n").expect("write");
        assert!(matches!(resolve_count(dir.path(), 4), Err(Error::InvalidArgument(_))));
        assert_eq!(resolve_count(dir.path(), 1).expect("resolve"), 1);
    }

    #[test]
    fn orphaned_shard_directories_are_corruption() {
        let dir = TempRoot::new("orphaned-dirs");
        std::fs::create_dir(dir.path().join(dir_name(0))).expect("mkdir");
        assert!(matches!(resolve_count(dir.path(), 1), Err(Error::Corruption { .. })));
    }
}
