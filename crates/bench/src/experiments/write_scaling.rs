//! Write-scaling: the group-commit pipeline vs the legacy serialized write path.
//!
//! This is not a figure from the paper — it is the repository's own perf
//! trajectory for the front-door write path. The sweep runs a put-only workload
//! at 1→16 writer threads under `SyncMode::NoSync` and `SyncMode::SyncEveryWrite`,
//! once with the grouped pipeline (the default) and once with
//! `group_commit.enabled = false` (the pre-group-commit write path, preserved as
//! the in-run baseline), so every report contains its own before/after numbers.
//!
//! The acceptance gate for the group-commit PR: at ≥ 8 writers with
//! `SyncEveryWrite`, grouped throughput must be ≥ 2× legacy, with strictly fewer
//! fsyncs than acknowledged write batches.
//!
//! Reading the NoSync side: group commit amortizes the flush/fsync and
//! parallelizes memtable inserts across member threads, so its NoSync gains
//! need real cores. On a single-core host the sweep instead charges the
//! pipeline for its leader→follower scheduler hand-offs while the legacy
//! mutex convoy runs as a tight serial loop, so grouped NoSync numbers there
//! reflect wake-up cost, not the pipeline's multi-core behaviour. The durable
//! sweep is meaningful on any host: one group fsync covers the whole group.

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use triad_core::{Db, Options, SyncMode};

use crate::report::{print_table, Table};
use crate::runner::Scale;

/// One measured configuration of the sweep.
#[derive(Debug, Clone)]
pub struct WriteScalingPoint {
    /// `"NoSync"` or `"SyncEveryWrite"`.
    pub sync_mode: &'static str,
    /// Number of concurrent writer threads.
    pub threads: usize,
    /// `"grouped"` (group-commit pipeline) or `"legacy"` (serialized baseline).
    pub pipeline: &'static str,
    /// Thousands of acknowledged single-put batches per second.
    pub kops: f64,
    /// Acknowledged write batches (every one a single put here).
    pub acked_batches: u64,
    /// WAL fsyncs issued during the timed phase.
    pub wal_syncs: u64,
    /// `wal_syncs / acked_batches` — group commit drives this below 1.
    pub fsyncs_per_batch: f64,
    /// Commit groups formed (0 on the legacy pipeline).
    pub write_groups: u64,
    /// Mean batches per commit group.
    pub avg_group_batches: f64,
    /// Largest commit group observed, in batches.
    pub max_group_batches: u64,
}

/// The PR's acceptance numbers, computed from the sweep itself.
#[derive(Debug, Clone)]
pub struct WriteScalingAcceptance {
    /// Writer threads the gate is evaluated at.
    pub threads: usize,
    /// Legacy throughput at the gate point (kops).
    pub legacy_kops: f64,
    /// Grouped throughput at the gate point (kops).
    pub grouped_kops: f64,
    /// `grouped_kops / legacy_kops`.
    pub speedup: f64,
    /// Grouped fsyncs per acknowledged batch at the gate point.
    pub fsyncs_per_batch: f64,
}

impl WriteScalingAcceptance {
    /// Whether the PR's perf gate holds: ≥ 2× throughput and < 1 fsync/batch.
    pub fn holds(&self) -> bool {
        self.speedup >= 2.0 && self.fsyncs_per_batch < 1.0
    }
}

fn sync_label(mode: SyncMode) -> &'static str {
    match mode {
        SyncMode::NoSync => "NoSync",
        SyncMode::SyncEveryWrite => "SyncEveryWrite",
        SyncMode::SyncEvery(_) => "SyncEvery(n)",
    }
}

/// Writer-thread counts the sweep covers.
pub fn thread_sweep() -> [usize; 5] {
    [1, 2, 4, 8, 16]
}

fn bench_db_options(sync_mode: SyncMode, grouped: bool) -> Options {
    // The sweep measures the write *path*, not flush/compaction: keep the
    // memory component large enough that no rotation fires during a point.
    let mut options = Options {
        memtable_size: 256 * 1024 * 1024,
        max_log_size: 512 * 1024 * 1024,
        sync_mode,
        ..Options::default()
    };
    options.group_commit.enabled = grouped;
    options
}

fn run_point(
    scale: Scale,
    sync_mode: SyncMode,
    threads: usize,
    grouped: bool,
) -> triad_common::Result<WriteScalingPoint> {
    let ops_per_thread = match sync_mode {
        // An fsync costs ~100 µs on commodity SSD-backed filesystems; keep the
        // synced points short so the full sweep stays CI-friendly.
        SyncMode::SyncEveryWrite => scale.ops(400, 5_000),
        _ => scale.ops(10_000, 200_000),
    };
    let label = format!(
        "write-scaling-{}-{}t-{}",
        sync_label(sync_mode),
        threads,
        if grouped { "grouped" } else { "legacy" }
    );
    let dir = std::env::temp_dir().join(format!("triad-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db = Arc::new(Db::open(&dir, bench_db_options(sync_mode, grouped))?);

    let before = db.stats();
    let started = Instant::now();
    let mut handles = Vec::new();
    for t in 0..threads {
        let db = Arc::clone(&db);
        handles.push(std::thread::spawn(move || -> triad_common::Result<()> {
            let value = vec![0x5au8; 200];
            for i in 0..ops_per_thread {
                // Disjoint per-thread key slices, revisited round-robin: pure
                // write traffic with realistic overwrite pressure.
                let key = format!("key-{t:02}-{:06}", i % 4_096);
                db.put(key.as_bytes(), &value)?;
            }
            Ok(())
        }));
    }
    for handle in handles {
        handle.join().expect("writer thread panicked")?;
    }
    let elapsed = started.elapsed();
    let delta = db.stats().delta_since(&before);
    db.close()?;
    let _ = std::fs::remove_dir_all(&dir);

    let acked_batches = ops_per_thread * threads as u64;
    Ok(WriteScalingPoint {
        sync_mode: sync_label(sync_mode),
        threads,
        pipeline: if grouped { "grouped" } else { "legacy" },
        kops: acked_batches as f64 / elapsed.as_secs_f64() / 1_000.0,
        acked_batches,
        wal_syncs: delta.wal_syncs,
        fsyncs_per_batch: delta.wal_syncs as f64 / acked_batches as f64,
        write_groups: delta.write_groups,
        avg_group_batches: delta.avg_write_group_batches(),
        max_group_batches: delta.write_group_max_size,
    })
}

/// Runs the full sweep and returns (table, points, acceptance-at-8-threads).
pub fn run(
    scale: Scale,
) -> triad_common::Result<(Table, Vec<WriteScalingPoint>, WriteScalingAcceptance)> {
    let mut points = Vec::new();
    for sync_mode in [SyncMode::NoSync, SyncMode::SyncEveryWrite] {
        for threads in thread_sweep() {
            for grouped in [false, true] {
                points.push(run_point(scale, sync_mode, threads, grouped)?);
            }
        }
    }

    let mut table = Table::new(&[
        "sync mode",
        "threads",
        "pipeline",
        "kops",
        "fsyncs/batch",
        "groups",
        "avg batches/group",
        "max group",
    ]);
    for point in &points {
        table.add_row(vec![
            point.sync_mode.to_string(),
            point.threads.to_string(),
            point.pipeline.to_string(),
            format!("{:.1}", point.kops),
            format!("{:.3}", point.fsyncs_per_batch),
            point.write_groups.to_string(),
            format!("{:.2}", point.avg_group_batches),
            point.max_group_batches.to_string(),
        ]);
    }

    let gate_threads = 8;
    let find = |pipeline: &str| {
        points
            .iter()
            .find(|p| {
                p.sync_mode == "SyncEveryWrite"
                    && p.threads == gate_threads
                    && p.pipeline == pipeline
            })
            .expect("the sweep always covers the gate point")
            .clone()
    };
    let legacy = find("legacy");
    let grouped = find("grouped");
    let acceptance = WriteScalingAcceptance {
        threads: gate_threads,
        legacy_kops: legacy.kops,
        grouped_kops: grouped.kops,
        speedup: grouped.kops / legacy.kops.max(1e-9),
        fsyncs_per_batch: grouped.fsyncs_per_batch,
    };

    print_table(
        "Write scaling: group commit vs legacy serialized writes (put-only)",
        &table,
        &format!(
            "gate at {} writers, SyncEveryWrite: {:.2}x speedup (need >= 2x), \
             {:.3} fsyncs/batch (need < 1)",
            acceptance.threads, acceptance.speedup, acceptance.fsyncs_per_batch
        ),
    );
    Ok((table, points, acceptance))
}

/// Serializes the sweep to the JSON trajectory file (`BENCH_write_scaling.json`).
pub fn write_json(
    path: &Path,
    scale: Scale,
    points: &[WriteScalingPoint],
    acceptance: &WriteScalingAcceptance,
) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"experiment\": \"write_scaling\",\n");
    out.push_str(&format!(
        "  \"scale\": \"{}\",\n",
        if scale == Scale::Full { "full" } else { "quick" }
    ));
    out.push_str("  \"unit\": \"kops = 1000 acknowledged single-put batches per second\",\n");
    out.push_str("  \"results\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"sync_mode\": \"{}\", \"threads\": {}, \"pipeline\": \"{}\", \
             \"kops\": {:.2}, \"acked_batches\": {}, \"wal_syncs\": {}, \
             \"fsyncs_per_batch\": {:.4}, \"write_groups\": {}, \
             \"avg_group_batches\": {:.3}, \"max_group_batches\": {}}}{}\n",
            p.sync_mode,
            p.threads,
            p.pipeline,
            p.kops,
            p.acked_batches,
            p.wal_syncs,
            p.fsyncs_per_batch,
            p.write_groups,
            p.avg_group_batches,
            p.max_group_batches,
            if i + 1 == points.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"acceptance\": {\n");
    out.push_str(&format!("    \"threads\": {},\n", acceptance.threads));
    out.push_str("    \"sync_mode\": \"SyncEveryWrite\",\n");
    out.push_str(&format!("    \"legacy_kops\": {:.2},\n", acceptance.legacy_kops));
    out.push_str(&format!("    \"grouped_kops\": {:.2},\n", acceptance.grouped_kops));
    out.push_str(&format!("    \"speedup\": {:.3},\n", acceptance.speedup));
    out.push_str(&format!(
        "    \"grouped_fsyncs_per_batch\": {:.4},\n",
        acceptance.fsyncs_per_batch
    ));
    out.push_str(&format!("    \"meets_2x_and_sub_1_fsync\": {}\n", acceptance.holds()));
    out.push_str("  }\n");
    out.push_str("}\n");
    std::fs::write(path, out)
}
