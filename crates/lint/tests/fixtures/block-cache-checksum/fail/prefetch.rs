// lint-fixture: crates/core/src/prefetch.rs
// Engine code outside reader.rs must never feed the cache itself — only
// reader.rs's marked region may call `.get_or_load(`.

fn warm(&self, table_id: u64, offset: u64) -> Result<Arc<Block>> {
    self.cache.get_or_load(table_id, offset, None, &|| self.load_unchecked(offset))
}
