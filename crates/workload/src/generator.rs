//! The operation generator driving the benchmark harness and the examples.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dist::KeyDistribution;
use crate::mix::{OperationKind, OperationMix};
use crate::{encode_key, encode_value};

/// A single operation to execute against the KV store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Operation {
    /// Read the current value of a key.
    Get {
        /// The encoded key.
        key: Vec<u8>,
    },
    /// Insert or update a key.
    Put {
        /// The encoded key.
        key: Vec<u8>,
        /// The value to write.
        value: Vec<u8>,
    },
    /// Delete a key.
    Delete {
        /// The encoded key.
        key: Vec<u8>,
    },
}

impl Operation {
    /// The key targeted by the operation.
    pub fn key(&self) -> &[u8] {
        match self {
            Operation::Get { key } | Operation::Put { key, .. } | Operation::Delete { key } => key,
        }
    }

    /// Returns `true` for operations that modify the store.
    pub fn is_write(&self) -> bool {
        !matches!(self, Operation::Get { .. })
    }
}

/// The full description of a synthetic workload.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Number of distinct keys in the key space.
    pub num_keys: u64,
    /// Encoded key size in bytes (8 in the paper's synthetic experiments).
    pub key_size: usize,
    /// Value size in bytes (255 in the paper's synthetic experiments).
    pub value_size: usize,
    /// Read/write/delete mix.
    pub mix: OperationMix,
    /// Key popularity distribution.
    pub distribution: KeyDistribution,
}

impl WorkloadSpec {
    /// The paper's synthetic workload template: 1M keys, 8-byte keys, 255-byte values.
    pub fn synthetic(distribution: KeyDistribution, mix: OperationMix) -> Self {
        WorkloadSpec {
            num_keys: distribution.num_keys(),
            key_size: 8,
            value_size: 255,
            mix,
            distribution,
        }
    }

    /// Scales the key space down (or up) while preserving skew and sizes; used by the
    /// `--quick` mode of the figure binaries.
    pub fn with_num_keys(mut self, num_keys: u64) -> Self {
        self.num_keys = num_keys;
        self.distribution = match self.distribution {
            KeyDistribution::Uniform { .. } => KeyDistribution::uniform(num_keys),
            KeyDistribution::HotCold { hot_fraction, hot_access_share, .. } => {
                KeyDistribution::hot_cold(num_keys, hot_fraction, hot_access_share)
            }
            KeyDistribution::Zipfian { theta, .. } => KeyDistribution::zipfian(num_keys, theta),
        };
        self
    }

    /// Logical bytes written per put (key + value).
    pub fn bytes_per_write(&self) -> u64 {
        (self.key_size + self.value_size) as u64
    }
}

/// A deterministic stream of operations for one worker thread.
#[derive(Debug)]
pub struct WorkloadGenerator {
    spec: WorkloadSpec,
    rng: StdRng,
    /// Monotonically increasing per-generator version used to build distinct values.
    next_version: u64,
    ops_issued: u64,
}

impl WorkloadGenerator {
    /// Creates a generator for `spec`. Give each worker thread a distinct `seed` so
    /// that threads issue independent streams while the run as a whole stays
    /// reproducible.
    pub fn new(spec: WorkloadSpec, seed: u64) -> Self {
        WorkloadGenerator { spec, rng: StdRng::seed_from_u64(seed), next_version: 0, ops_issued: 0 }
    }

    /// The workload specification backing this generator.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Number of operations issued so far.
    pub fn ops_issued(&self) -> u64 {
        self.ops_issued
    }

    /// Produces the next operation.
    pub fn next_op(&mut self) -> Operation {
        self.ops_issued += 1;
        let key_index = self.spec.distribution.sample(&mut self.rng);
        let key = encode_key(key_index, self.spec.key_size);
        match self.spec.mix.sample(&mut self.rng) {
            OperationKind::Read => Operation::Get { key },
            OperationKind::Write => {
                self.next_version += 1;
                let value = encode_value(key_index, self.next_version, self.spec.value_size);
                Operation::Put { key, value }
            }
            OperationKind::Delete => Operation::Delete { key },
        }
    }

    /// Produces the keys and values used to pre-populate the store before a run.
    ///
    /// The paper initialises the LSM tree with "roughly half of the keys in the key
    /// range" before each synthetic experiment; `fraction` controls that share.
    pub fn prepopulation(&self, fraction: f64) -> Vec<(Vec<u8>, Vec<u8>)> {
        let count = ((self.spec.num_keys as f64) * fraction.clamp(0.0, 1.0)) as u64;
        // Deterministic subset: every other key for fraction 0.5, etc.
        let step = if count == 0 {
            self.spec.num_keys
        } else {
            (self.spec.num_keys / count.max(1)).max(1)
        };
        let mut pairs = Vec::with_capacity(count as usize);
        let mut index = 0u64;
        while index < self.spec.num_keys && (pairs.len() as u64) < count {
            pairs.push((
                encode_key(index, self.spec.key_size),
                encode_value(index, 0, self.spec.value_size),
            ));
            index += step;
        }
        pairs
    }

    /// Samples a random existing key; useful for read-only phases.
    pub fn random_key(&mut self) -> Vec<u8> {
        let key_index = self.rng.gen_range(0..self.spec.num_keys);
        encode_key(key_index, self.spec.key_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> WorkloadSpec {
        WorkloadSpec::synthetic(
            KeyDistribution::ws1_high_skew(10_000),
            OperationMix::write_intensive(),
        )
    }

    #[test]
    fn generator_is_deterministic_per_seed() {
        let mut a = WorkloadGenerator::new(spec(), 7);
        let mut b = WorkloadGenerator::new(spec(), 7);
        for _ in 0..1_000 {
            assert_eq!(a.next_op(), b.next_op());
        }
        let mut c = WorkloadGenerator::new(spec(), 8);
        let ops_a: Vec<Operation> = (0..100).map(|_| a.next_op()).collect();
        let ops_c: Vec<Operation> = (0..100).map(|_| c.next_op()).collect();
        assert_ne!(ops_a, ops_c, "different seeds must differ");
        assert_eq!(a.ops_issued(), 1_100);
    }

    #[test]
    fn operations_respect_the_mix() {
        let mut generator = WorkloadGenerator::new(spec(), 1);
        let mut writes = 0u32;
        let total = 20_000;
        for _ in 0..total {
            if generator.next_op().is_write() {
                writes += 1;
            }
        }
        let share = f64::from(writes) / f64::from(total);
        assert!((share - 0.9).abs() < 0.02, "write share {share} should be ~0.9");
    }

    #[test]
    fn keys_have_the_configured_size_and_range() {
        let mut generator = WorkloadGenerator::new(spec(), 2);
        for _ in 0..1_000 {
            let op = generator.next_op();
            assert_eq!(op.key().len(), 8);
            let index = crate::decode_key(op.key()).unwrap();
            assert!(index < 10_000);
            if let Operation::Put { value, .. } = op {
                assert_eq!(value.len(), 255);
            }
        }
    }

    #[test]
    fn prepopulation_covers_the_requested_fraction() {
        let generator = WorkloadGenerator::new(spec(), 3);
        let pairs = generator.prepopulation(0.5);
        assert!((pairs.len() as i64 - 5_000).abs() <= 1, "got {} pairs", pairs.len());
        // Keys are distinct and sorted ascending by construction.
        for window in pairs.windows(2) {
            assert!(window[0].0 < window[1].0);
        }
        let none = generator.prepopulation(0.0);
        assert!(none.is_empty());
        let all = generator.prepopulation(1.0);
        assert_eq!(all.len(), 10_000);
    }

    #[test]
    fn with_num_keys_rescales_the_distribution() {
        let scaled = spec().with_num_keys(500);
        assert_eq!(scaled.num_keys, 500);
        assert_eq!(scaled.distribution.num_keys(), 500);
        let mut generator = WorkloadGenerator::new(scaled, 4);
        for _ in 0..1_000 {
            assert!(crate::decode_key(generator.next_op().key()).unwrap() < 500);
        }
    }

    #[test]
    fn bytes_per_write_matches_key_plus_value() {
        assert_eq!(spec().bytes_per_write(), 263);
    }

    #[test]
    fn random_key_stays_in_range() {
        let mut generator = WorkloadGenerator::new(spec(), 5);
        for _ in 0..100 {
            assert!(crate::decode_key(&generator.random_key()).unwrap() < 10_000);
        }
    }
}
