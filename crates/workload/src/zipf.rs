//! Zipfian key sampling.
//!
//! The production-like profiles model the Nutanix key-popularity curves (paper
//! Figure 7) as Zipf distributions with different exponents. The implementation
//! follows the classic Gray et al. "Quickly generating billion-record synthetic
//! databases" construction, also used by YCSB: draw from the Zipf CDF using a
//! precomputed zeta value, in O(1) per sample.

use rand::Rng;

/// A Zipfian distribution over `0..n` with exponent `theta` (0 < theta < 1 for the
/// YCSB-style construction; larger theta means more skew).
#[derive(Debug, Clone)]
pub struct Zipfian {
    num_items: u64,
    theta: f64,
    alpha: f64,
    zeta_n: f64,
    eta: f64,
    zeta_theta: f64,
}

impl Zipfian {
    /// Creates a Zipfian distribution over `num_items` items with exponent `theta`.
    ///
    /// # Panics
    /// Panics if `num_items` is zero or `theta` is not in `(0, 1)`.
    pub fn new(num_items: u64, theta: f64) -> Self {
        assert!(num_items > 0, "Zipfian needs at least one item");
        assert!(theta > 0.0 && theta < 1.0, "theta must be in (0, 1), got {theta}");
        let zeta_n = Self::zeta(num_items, theta);
        let zeta_theta = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / num_items as f64).powf(1.0 - theta)) / (1.0 - zeta_theta / zeta_n);
        Zipfian { num_items, theta, alpha, zeta_n, eta, zeta_theta }
    }

    /// The generalized harmonic number `H_{n,theta}`.
    fn zeta(n: u64, theta: f64) -> f64 {
        // Exact summation is fine for the sizes used in experiments (≤ tens of
        // millions); for very large n we fall back to an integral approximation.
        if n <= 10_000_000 {
            (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
        } else {
            let exact: f64 = (1..=10_000_000u64).map(|i| 1.0 / (i as f64).powf(theta)).sum();
            // ∫ x^-theta dx from 10^7 to n.
            let a = 1.0 - theta;
            exact + ((n as f64).powf(a) - 10_000_000f64.powf(a)) / a
        }
    }

    /// Number of items in the distribution.
    pub fn num_items(&self) -> u64 {
        self.num_items
    }

    /// The skew exponent.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Samples a rank in `0..num_items`, where rank 0 is the most popular item.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zeta_n;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank =
            (self.num_items as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.num_items - 1)
    }

    /// Exposes zeta(2, theta), used by tests to validate internals.
    #[doc(hidden)]
    pub fn zeta_theta(&self) -> f64 {
        self.zeta_theta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    #[should_panic]
    fn zero_items_panics() {
        Zipfian::new(0, 0.9);
    }

    #[test]
    #[should_panic]
    fn out_of_range_theta_panics() {
        Zipfian::new(10, 1.5);
    }

    #[test]
    fn samples_stay_in_range() {
        let zipf = Zipfian::new(1_000, 0.9);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50_000 {
            assert!(zipf.sample(&mut rng) < 1_000);
        }
        assert_eq!(zipf.num_items(), 1_000);
        assert!((zipf.theta() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn low_ranks_are_much_more_popular() {
        let zipf = Zipfian::new(100_000, 0.99);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0u64; 100_000];
        let samples = 200_000;
        for _ in 0..samples {
            counts[zipf.sample(&mut rng) as usize] += 1;
        }
        let top_1_percent: u64 = counts[..1_000].iter().sum();
        let share = top_1_percent as f64 / samples as f64;
        assert!(share > 0.5, "with theta=0.99 the top 1% of keys should dominate, got {share}");
        // Rank 0 should be the single most popular key.
        let max = *counts.iter().max().unwrap();
        assert_eq!(counts[0], max);
    }

    #[test]
    fn lower_theta_is_less_skewed() {
        let mut rng = StdRng::seed_from_u64(11);
        let share_of_top = |theta: f64, rng: &mut StdRng| {
            let zipf = Zipfian::new(10_000, theta);
            let mut hits = 0u64;
            let samples = 100_000;
            for _ in 0..samples {
                if zipf.sample(rng) < 100 {
                    hits += 1;
                }
            }
            hits as f64 / samples as f64
        };
        let skewed = share_of_top(0.99, &mut rng);
        let mild = share_of_top(0.5, &mut rng);
        assert!(skewed > mild, "theta 0.99 ({skewed}) must concentrate more than 0.5 ({mild})");
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let zipf = Zipfian::new(1_000, 0.8);
        let draw = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..100).map(|_| zipf.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(3), draw(3));
        assert_ne!(draw(3), draw(4));
    }

    #[test]
    fn large_item_count_uses_integral_approximation() {
        // 20M items exercises the approximation branch of zeta(); the distribution
        // must still behave sanely.
        let zipf = Zipfian::new(20_000_000, 0.9);
        let mut rng = StdRng::seed_from_u64(5);
        let mut below_million = 0;
        for _ in 0..10_000 {
            if zipf.sample(&mut rng) < 1_000_000 {
                below_million += 1;
            }
        }
        // With heavy skew, far more than 5% (the uniform share) of samples land in the
        // first 5% of the key space.
        assert!(below_million > 3_000, "got {below_million}");
    }
}
