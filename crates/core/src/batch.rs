//! Write batches and per-write options.

use triad_common::types::ValueKind;

/// Options applied to an individual write.
#[derive(Debug, Clone, Copy, Default)]
pub struct WriteOptions {
    /// Force an `fsync` of the commit log after this write, regardless of the
    /// engine-wide [`SyncMode`](crate::SyncMode).
    pub sync: bool,
}

/// A single operation inside a [`WriteBatch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct BatchOp {
    pub kind: ValueKind,
    pub key: Vec<u8>,
    pub value: Vec<u8>,
}

/// A group of writes applied together under one commit-log acquisition.
///
/// Batching amortises the per-write locking and log-framing overhead; all operations
/// in the batch receive consecutive sequence numbers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WriteBatch {
    pub(crate) ops: Vec<BatchOp>,
    /// Cross-shard provenance, set by the router when this batch is one
    /// shard's slice of a shard-spanning batch. The commit paths write it
    /// onto the slice's first WAL record so crash recovery can detect a
    /// partially-durable batch. `None` for ordinary (single-shard) batches.
    pub(crate) stamp: Option<triad_wal::BatchStamp>,
}

impl WriteBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues a put.
    pub fn put(&mut self, key: impl Into<Vec<u8>>, value: impl Into<Vec<u8>>) -> &mut Self {
        self.ops.push(BatchOp { kind: ValueKind::Put, key: key.into(), value: value.into() });
        self
    }

    /// Queues a delete.
    pub fn delete(&mut self, key: impl Into<Vec<u8>>) -> &mut Self {
        self.ops.push(BatchOp { kind: ValueKind::Delete, key: key.into(), value: Vec::new() });
        self
    }

    /// Number of queued operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` when no operations are queued.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Removes every queued operation.
    pub fn clear(&mut self) {
        self.ops.clear();
    }

    /// Total bytes of keys and values queued.
    pub fn approximate_size(&self) -> usize {
        self.ops.iter().map(|op| op.key.len() + op.value.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_accumulates_operations_in_order() {
        let mut batch = WriteBatch::new();
        assert!(batch.is_empty());
        batch
            .put(b"a".to_vec(), b"1".to_vec())
            .delete(b"b".to_vec())
            .put(b"c".to_vec(), b"3".to_vec());
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.ops[0].kind, ValueKind::Put);
        assert_eq!(batch.ops[1].kind, ValueKind::Delete);
        assert_eq!(batch.ops[2].key, b"c");
        assert_eq!(batch.approximate_size(), 1 + 1 + 1 + 1 + 1);
        batch.clear();
        assert!(batch.is_empty());
    }

    #[test]
    fn write_options_default_to_no_sync() {
        assert!(!WriteOptions::default().sync);
    }
}
