//! CL-SSTables: commit-log-backed L0 tables (TRIAD-LOG, paper §4.3).
//!
//! When TRIAD-LOG is enabled, flushing the memory component does not rewrite the
//! key/value data: the values already live in the sealed commit log. Instead the
//! flush writes a small sorted *index* mapping each (cold) user key to the offset of
//! its most recent update in the log. The index file plus the sealed log together
//! form a CL-SSTable that serves reads and participates in L0→L1 compaction exactly
//! like a regular SSTable.
//!
//! The index file reuses the regular table format (blocks, bloom filter, properties,
//! footer) with [`TableKind::CommitLogIndex`]; the value of each index entry is the
//! varint-encoded byte offset into the backing log.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use triad_common::types::{Entry, InternalKey, ValueKind};
use triad_common::varint;
use triad_common::{Error, Result, Stats};
use triad_wal::LogReader;

use crate::builder::{TableBuilder, TableBuilderOptions};
use crate::iter::EntryIter;
use crate::properties::{TableKind, TableProperties};
use crate::reader::Table;
use crate::SortedTable;

/// Builds the index file of a CL-SSTable.
#[derive(Debug)]
pub struct ClTableBuilder {
    inner: TableBuilder,
    log_id: u64,
    referenced_value_bytes: u64,
}

impl ClTableBuilder {
    /// Creates a builder for the index file at `index_path`, referencing commit log
    /// `log_id`.
    pub fn create(
        index_path: impl AsRef<Path>,
        options: TableBuilderOptions,
        log_id: u64,
    ) -> Result<Self> {
        let inner = TableBuilder::create(index_path, options)?;
        Ok(ClTableBuilder { inner, log_id, referenced_value_bytes: 0 })
    }

    /// Adds an index entry: `key` lives at byte `log_offset` of the backing log and
    /// its value occupies `value_len` bytes there.
    ///
    /// Keys must be added in strictly increasing internal-key order.
    pub fn add(&mut self, key: &InternalKey, log_offset: u64, value_len: u64) -> Result<()> {
        let mut offset_bytes = Vec::with_capacity(10);
        varint::encode_u64(&mut offset_bytes, log_offset);
        self.inner.add(key, &offset_bytes)?;
        self.referenced_value_bytes += value_len;
        Ok(())
    }

    /// Number of index entries added so far.
    pub fn num_entries(&self) -> u64 {
        self.inner.num_entries()
    }

    /// Finishes the index file and returns its properties and on-disk size.
    ///
    /// The returned size is the number of bytes actually written by the flush — the
    /// whole point of TRIAD-LOG is that this is small compared to the data the log
    /// already holds.
    pub fn finish(mut self) -> Result<(TableProperties, u64)> {
        self.inner.set_kind(TableKind::CommitLogIndex);
        self.inner.set_backing_log_id(self.log_id);
        // Report the bytes the table *represents* (for compaction sizing), not the
        // tiny varint offsets stored in the index blocks.
        self.inner.set_raw_value_bytes(self.referenced_value_bytes);
        self.inner.finish()
    }

    /// Abandons the partially built index file.
    pub fn abandon(self) -> Result<()> {
        self.inner.abandon()
    }
}

/// An open CL-SSTable: a sorted offset index plus the sealed commit log it references.
pub struct ClTable {
    index: Table,
    log: LogReader,
    props: TableProperties,
    index_size: u64,
}

impl std::fmt::Debug for ClTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClTable")
            .field("index", &self.index)
            .field("log", &self.log.path())
            .field("entries", &self.props.num_entries)
            .finish()
    }
}

impl ClTable {
    /// Opens a CL-SSTable from its index file and the path of its backing log.
    pub fn open(
        index_path: impl AsRef<Path>,
        log_path: impl AsRef<Path>,
        stats: Option<Arc<Stats>>,
    ) -> Result<ClTable> {
        ClTable::open_with_fetch(index_path, log_path, stats, None)
    }

    /// Opens the CL-SSTable with an optional [`FetchContext`](crate::FetchContext) for the *index*
    /// table's data blocks (the value payloads live in the commit log and are
    /// read positioned; only the index goes through the block cache).
    pub fn open_with_fetch(
        index_path: impl AsRef<Path>,
        log_path: impl AsRef<Path>,
        stats: Option<Arc<Stats>>,
        fetch: Option<crate::FetchContext>,
    ) -> Result<ClTable> {
        let index = Table::open_with_fetch(index_path.as_ref(), stats, fetch)?;
        let mut props = index.properties().clone();
        if props.kind != TableKind::CommitLogIndex {
            return Err(Error::corruption_at(
                "expected a CL-SSTable index file",
                index_path.as_ref(),
            ));
        }
        // Keep the CL kind but expose combined metadata to the engine.
        props.kind = TableKind::CommitLogIndex;
        let log = LogReader::open(log_path.as_ref())?;
        let index_size = index.file_size();
        Ok(ClTable { index, log, props, index_size })
    }

    /// The path of the backing commit log.
    pub fn log_path(&self) -> &Path {
        self.log.path()
    }

    /// The path of the index file.
    pub fn index_path(&self) -> PathBuf {
        self.index.path().to_path_buf()
    }

    /// Size of the index file (the bytes the flush actually wrote).
    pub fn index_size(&self) -> u64 {
        self.index_size
    }

    /// Size of the backing commit log file.
    pub fn log_size(&self) -> u64 {
        self.log.len()
    }

    fn resolve(&self, index_entry: Entry) -> Result<Entry> {
        // Tombstones carry no value; no need to touch the log.
        if index_entry.key.kind == ValueKind::Delete {
            return Ok(Entry::new(index_entry.key, Vec::new()));
        }
        let (offset, _) = varint::decode_u64(&index_entry.value)?;
        let record = self.log.read_at(offset)?;
        if record.key != index_entry.key.user_key {
            return Err(Error::corruption_at(
                format!(
                    "CL-SSTable index points at offset {offset} holding a different key ({} vs {})",
                    String::from_utf8_lossy(&record.key),
                    String::from_utf8_lossy(&index_entry.key.user_key)
                ),
                self.log.path(),
            ));
        }
        Ok(Entry::new(index_entry.key, record.value))
    }
}

impl SortedTable for ClTable {
    fn get(&self, user_key: &[u8], snapshot: u64) -> Result<Option<Entry>> {
        match self.index.get_entry(user_key, snapshot)? {
            Some(index_entry) => Ok(Some(self.resolve(index_entry)?)),
            None => Ok(None),
        }
    }

    fn entries(&self) -> Result<EntryIter> {
        // Bulk iteration (compaction, full scans) reads the sealed log once into
        // memory and resolves offsets from the buffer; issuing one positioned read
        // per entry would dominate compaction time.
        let buffer = self.log.read_to_buffer()?;
        let index_entries = SortedTable::entries(&self.index)?;
        let mut resolved = Vec::new();
        for item in index_entries {
            let index_entry = item?;
            if index_entry.key.kind == ValueKind::Delete {
                resolved.push(Entry::new(index_entry.key, Vec::new()));
                continue;
            }
            let (offset, _) = varint::decode_u64(&index_entry.value)?;
            let record = triad_wal::decode_record_in_buffer(&buffer, offset)?;
            if record.key != index_entry.key.user_key {
                return Err(Error::corruption_at(
                    format!("CL-SSTable index points at offset {offset} holding a different key"),
                    self.log.path(),
                ));
            }
            resolved.push(Entry::new(index_entry.key, record.value));
        }
        Ok(Box::new(resolved.into_iter().map(Ok)))
    }

    fn properties(&self) -> &TableProperties {
        &self.props
    }

    fn size_bytes(&self) -> u64 {
        // The bytes this table occupies on disk beyond what the WAL already wrote.
        self.index_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triad_wal::{LogRecord, LogWriter};

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("triad-cl-table-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Builds a commit log with `n` puts (and every 10th key also deleted afterwards),
    /// then a CL-SSTable index over the *latest* state, mimicking what a TRIAD-LOG
    /// flush does.
    fn build_cl_table(dir: &Path, n: u64) -> (PathBuf, PathBuf) {
        let log_path = triad_wal::log_file_path(dir, 1);
        let mut writer = LogWriter::create(&log_path, 1).unwrap();
        let mut latest: std::collections::BTreeMap<Vec<u8>, (u64, u64, ValueKind, u64)> =
            std::collections::BTreeMap::new();
        let mut seqno = 0u64;
        for i in 0..n {
            seqno += 1;
            let key = format!("key-{i:05}").into_bytes();
            // Values are padded to 100 bytes, mirroring the paper's small-key /
            // larger-value workloads where TRIAD-LOG pays off.
            let mut value = format!("value-{i}").into_bytes();
            value.resize(100, b'x');
            let record = LogRecord::put(seqno, key.clone(), value.clone());
            let offset = writer.append(&record).unwrap();
            latest.insert(key, (seqno, offset, ValueKind::Put, value.len() as u64));
        }
        for i in (0..n).step_by(10) {
            seqno += 1;
            let key = format!("key-{i:05}").into_bytes();
            let record = LogRecord::delete(seqno, key.clone());
            let offset = writer.append(&record).unwrap();
            latest.insert(key, (seqno, offset, ValueKind::Delete, 0));
        }
        writer.seal().unwrap();

        let index_path = crate::cl_index_file_path(dir, 1);
        let mut builder =
            ClTableBuilder::create(&index_path, TableBuilderOptions::default(), 1).unwrap();
        for (key, (seqno, offset, kind, value_len)) in &latest {
            let ikey = InternalKey::new(key.clone(), *seqno, *kind);
            builder.add(&ikey, *offset, *value_len).unwrap();
        }
        builder.finish().unwrap();
        (index_path, log_path)
    }

    #[test]
    fn lookups_resolve_values_from_the_log() {
        let dir = temp_dir("lookup");
        let (index_path, log_path) = build_cl_table(&dir, 200);
        let table = ClTable::open(&index_path, &log_path, None).unwrap();
        // Key 5 was never deleted.
        let entry = table.get(b"key-00005", u64::MAX).unwrap().unwrap();
        assert_eq!(entry.key.kind, ValueKind::Put);
        assert!(entry.value.starts_with(b"value-5"));
        assert_eq!(entry.value.len(), 100);
        // Key 10 was deleted after being written.
        let entry = table.get(b"key-00010", u64::MAX).unwrap().unwrap();
        assert_eq!(entry.key.kind, ValueKind::Delete);
        // Absent key.
        assert!(table.get(b"key-99999", u64::MAX).unwrap().is_none());
    }

    #[test]
    fn index_is_much_smaller_than_the_data_it_references() {
        let dir = temp_dir("size");
        let (index_path, log_path) = build_cl_table(&dir, 2_000);
        let table = ClTable::open(&index_path, &log_path, None).unwrap();
        assert!(table.index_size() > 0);
        assert!(table.log_size() > 0);
        // The point of TRIAD-LOG: the flush writes far fewer bytes than a regular
        // flush (which would rewrite every key and value).
        assert!(
            table.index_size() * 2 < table.log_size(),
            "index ({}) should be much smaller than the log ({})",
            table.index_size(),
            table.log_size()
        );
        assert_eq!(table.size_bytes(), table.index_size());
    }

    #[test]
    fn entries_iterate_in_key_order_with_resolved_values() {
        let dir = temp_dir("entries");
        let (index_path, log_path) = build_cl_table(&dir, 100);
        let table = ClTable::open(&index_path, &log_path, None).unwrap();
        let entries: Vec<Entry> = table.entries().unwrap().map(|r| r.unwrap()).collect();
        assert_eq!(entries.len(), 100);
        for window in entries.windows(2) {
            assert!(window[0].key < window[1].key);
        }
        // Non-deleted keys carry their value read back from the log.
        let alive: Vec<&Entry> = entries.iter().filter(|e| e.key.kind == ValueKind::Put).collect();
        assert!(!alive.is_empty());
        for entry in alive {
            let expect = format!(
                "value-{}",
                String::from_utf8_lossy(&entry.key.user_key)
                    .trim_start_matches("key-")
                    .trim_start_matches('0')
            );
            // Key 0 trims to an empty string; handle it explicitly.
            let expect = if expect == "value-" { "value-0".to_string() } else { expect };
            assert!(entry.value.starts_with(expect.as_bytes()));
            assert_eq!(entry.value.len(), 100);
        }
    }

    #[test]
    fn properties_record_the_backing_log() {
        let dir = temp_dir("props");
        let (index_path, log_path) = build_cl_table(&dir, 50);
        let table = ClTable::open(&index_path, &log_path, None).unwrap();
        let props = SortedTable::properties(&table);
        assert_eq!(props.kind, TableKind::CommitLogIndex);
        assert_eq!(props.backing_log_id, Some(1));
        assert_eq!(props.num_entries, 50);
        assert_eq!(props.num_tombstones, 5);
    }

    #[test]
    fn open_rejects_a_regular_sstable_index() {
        let dir = temp_dir("wrong-kind");
        // Build a *regular* table and try to open it as a CL index.
        let sst_path = crate::sst_file_path(&dir, 9);
        let mut builder = TableBuilder::create(&sst_path, TableBuilderOptions::default()).unwrap();
        builder.add(&InternalKey::new(b"a".to_vec(), 1, ValueKind::Put), b"v").unwrap();
        builder.finish().unwrap();
        let log_path = triad_wal::log_file_path(&dir, 9);
        LogWriter::create(&log_path, 9).unwrap().seal().unwrap();
        assert!(ClTable::open(&sst_path, &log_path, None).is_err());
    }

    #[test]
    fn corrupt_offset_is_reported_as_corruption() {
        let dir = temp_dir("corrupt-offset");
        let log_path = triad_wal::log_file_path(&dir, 2);
        let mut writer = LogWriter::create(&log_path, 2).unwrap();
        let offset_a = writer.append(&LogRecord::put(1, b"aaa".to_vec(), b"va".to_vec())).unwrap();
        let _offset_b = writer.append(&LogRecord::put(2, b"bbb".to_vec(), b"vb".to_vec())).unwrap();
        writer.seal().unwrap();

        let index_path = crate::cl_index_file_path(&dir, 2);
        let mut builder =
            ClTableBuilder::create(&index_path, TableBuilderOptions::default(), 2).unwrap();
        builder.add(&InternalKey::new(b"aaa".to_vec(), 1, ValueKind::Put), offset_a, 2).unwrap();
        // Deliberately point "bbb" at the offset of "aaa" to simulate a bad index.
        builder.add(&InternalKey::new(b"bbb".to_vec(), 2, ValueKind::Put), offset_a, 2).unwrap();
        builder.finish().unwrap();

        let table = ClTable::open(&index_path, &log_path, None).unwrap();
        assert_eq!(table.get(b"aaa", u64::MAX).unwrap().unwrap().value, b"va");
        let err = table.get(b"bbb", u64::MAX).unwrap_err();
        assert!(err.is_corruption());
    }
}
