// lint-fixture: crates/core/src/table_cache.rs
// A bare waiver: it still silences the rule on the next line, but carries no
// reason, which is itself a violation.

// lint:allow(no-stale-version-retry)
fn retry_stale_version() {}
