//! Runs the production-traffic scenario suite — YCSB A–F plus the diurnal
//! burst, overwrite-churn and hot-set-drift scenarios — through the open-loop
//! harness and emits `BENCH_scenarios.json` with per-op-kind p50/p99/p999
//! client latencies (measured from scheduled arrival, so queueing delay
//! counts), the engine's own get/scan histograms, and the deterministic
//! checksum of each scenario's op stream.
//!
//! Flags: `--full` for paper-scale op counts (default is a quick CI-scale
//! run), `--out PATH` to redirect the JSON.
//!
//! The binary validates its own output — every op kind the mix promises must
//! have been observed, and every engine histogram fed — and exits non-zero on
//! violations, which is what the CI smoke step relies on.

use std::path::PathBuf;

use triad_bench::experiments::{replica_lag, scenarios};
use triad_bench::runner::Scale;

fn out_path() -> PathBuf {
    let args: Vec<String> = std::env::args().collect();
    for pair in args.windows(2) {
        if pair[0] == "--out" {
            return PathBuf::from(&pair[1]);
        }
    }
    PathBuf::from("BENCH_scenarios.json")
}

fn main() {
    let scale = Scale::from_args();
    let (_table, outcomes) = scenarios::run(scale).expect("scenario suite failed");
    let replication = replica_lag::run(scale).expect("replica-lag scenario failed");
    let path = out_path();
    scenarios::write_json(&path, scale, &outcomes, Some(&replica_lag::json(&replication)))
        .expect("writing BENCH_scenarios.json failed");
    println!("\nwrote {}", path.display());

    let errors = scenarios::validate(&outcomes);
    if !errors.is_empty() {
        for error in &errors {
            eprintln!("scenario validation failed: {error}");
        }
        std::process::exit(1);
    }
}
