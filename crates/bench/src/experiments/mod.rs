//! One module per figure of the paper's evaluation.
//!
//! Every module exposes a `run(scale)` function that executes the experiment and
//! prints a table mirroring the corresponding figure, plus a short note stating what
//! the paper reports so the reader can compare shapes directly.

pub mod fig10_breakdown;
pub mod fig11_wa_ra;
pub mod fig2_background_io;
pub mod fig7_profiles;
pub mod fig9a_production;
pub mod fig9d_io_time;
pub mod grid;
pub mod replica_lag;
pub mod scenarios;
pub mod summary;
pub mod write_scaling;

use triad_core::{Options, TriadConfig};
use triad_workload::{KeyDistribution, OperationMix, WorkloadSpec};

use crate::runner::Scale;

/// The three synthetic skew profiles of §5.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkewProfile {
    /// WS1: 1% of the keys receive 99% of the accesses.
    High,
    /// WS2: 20% of the keys receive 80% of the accesses.
    Medium,
    /// WS3: uniform popularity.
    None,
}

impl SkewProfile {
    /// All profiles in the order the paper plots them.
    pub fn all() -> [SkewProfile; 3] {
        [SkewProfile::High, SkewProfile::Medium, SkewProfile::None]
    }

    /// The label used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            SkewProfile::High => "Skew 1%-99%",
            SkewProfile::Medium => "Skew 20%-80%",
            SkewProfile::None => "No Skew",
        }
    }

    /// Builds the key distribution over `num_keys` keys.
    pub fn distribution(&self, num_keys: u64) -> KeyDistribution {
        match self {
            SkewProfile::High => KeyDistribution::ws1_high_skew(num_keys),
            SkewProfile::Medium => KeyDistribution::ws2_medium_skew(num_keys),
            SkewProfile::None => KeyDistribution::ws3_uniform(num_keys),
        }
    }
}

/// Number of keys used by the synthetic experiments at each scale. The paper uses
/// 1 M keys with a 4 MB memtable; quick mode shrinks both proportionally.
pub fn synthetic_keys(scale: Scale) -> u64 {
    scale.keys(20_000, 1_000_000)
}

/// Engine options mirroring the paper's synthetic setup at the given scale.
pub fn bench_options(scale: Scale, triad: TriadConfig) -> Options {
    let mut options = Options::default();
    match scale {
        Scale::Quick => {
            options.memtable_size = 256 * 1024;
            options.max_log_size = 512 * 1024;
            options.l1_target_size = 2 * 1024 * 1024;
            options.target_file_size = 512 * 1024;
        }
        Scale::Full => {
            options.memtable_size = 4 * 1024 * 1024;
            options.max_log_size = 8 * 1024 * 1024;
        }
    }
    options.triad = triad;
    // Scale TRIAD-MEM's small-flush threshold with the memtable.
    options.triad.flush_skip_threshold_bytes = options.memtable_size / 2;
    options
}

/// The paper's synthetic workload (8-byte keys, 255-byte values) for a skew profile
/// and read/write mix.
pub fn synthetic_workload(scale: Scale, skew: SkewProfile, mix: OperationMix) -> WorkloadSpec {
    let keys = synthetic_keys(scale);
    WorkloadSpec::synthetic(skew.distribution(keys), mix)
}

/// Per-thread operation counts for the timed phase.
pub fn ops_per_thread(scale: Scale) -> u64 {
    scale.ops(8_000, 250_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skew_profiles_cover_the_paper_grid() {
        assert_eq!(SkewProfile::all().len(), 3);
        assert_eq!(SkewProfile::High.label(), "Skew 1%-99%");
        let dist = SkewProfile::Medium.distribution(1_000);
        assert_eq!(dist.num_keys(), 1_000);
    }

    #[test]
    fn quick_options_are_smaller_than_full() {
        let quick = bench_options(Scale::Quick, TriadConfig::baseline());
        let full = bench_options(Scale::Full, TriadConfig::all_enabled());
        assert!(quick.memtable_size < full.memtable_size);
        assert!(full.triad.any_enabled());
        assert!(!quick.triad.any_enabled());
        quick.validate().unwrap();
        full.validate().unwrap();
    }

    #[test]
    fn synthetic_workload_matches_paper_sizes() {
        let spec =
            synthetic_workload(Scale::Full, SkewProfile::High, OperationMix::write_intensive());
        assert_eq!(spec.num_keys, 1_000_000);
        assert_eq!(spec.key_size, 8);
        assert_eq!(spec.value_size, 255);
    }
}
