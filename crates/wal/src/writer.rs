//! Appending records to a commit log file.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use triad_common::checksum;
use triad_common::{Error, Result};

use crate::record::LogRecord;
use crate::RECORD_HEADER_LEN;

/// Computes the framing header for a record payload: `(masked CRC, length)`,
/// both little-endian. The CRC covers the length field and the payload. This is
/// the single definition of the on-disk frame; the per-record and batched
/// append paths must stay byte-identical, so both go through here.
fn frame_header(payload: &[u8]) -> Result<([u8; 4], [u8; 4])> {
    let len = u32::try_from(payload.len())
        .map_err(|_| Error::InvalidArgument("commit log record exceeds 4 GiB".to_string()))?;
    let len_bytes = len.to_le_bytes();
    let crc = checksum::extend(checksum::crc32c(&len_bytes), payload);
    Ok((checksum::mask(crc).to_le_bytes(), len_bytes))
}

/// A reusable buffer that frames many [`LogRecord`]s for one batched append.
///
/// The group-commit write path encodes a whole group of write batches into a
/// single `BatchEncoder` and hands it to [`LogWriter::append_batch`], turning N
/// small framed writes into one `write_all`. The internal buffers are retained
/// across [`clear`](BatchEncoder::clear) calls, so a long-lived encoder stops
/// allocating once it has seen its largest group.
#[derive(Debug, Default)]
pub struct BatchEncoder {
    /// Fully framed bytes (CRC + length + payload per record), ready to write.
    framed: Vec<u8>,
    /// Scratch space for one record's payload, reused between records.
    scratch: Vec<u8>,
    /// Offset of each record's frame relative to the start of the buffer.
    offsets: Vec<u64>,
}

impl BatchEncoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forgets all encoded records but keeps the allocated capacity.
    pub fn clear(&mut self) {
        self.framed.clear();
        self.offsets.clear();
    }

    /// Frames `record` — its cross-shard [`BatchStamp`](crate::BatchStamp)
    /// included, if any — and returns its offset relative to the batch start.
    ///
    /// The absolute file offset is this value plus the start offset returned by
    /// [`LogWriter::append_batch`].
    pub fn add(&mut self, record: &LogRecord) -> Result<u64> {
        self.add_parts_stamped(record.seqno, record.kind, &record.key, &record.value, record.stamp)
    }

    /// Frames a record given as borrowed parts — the clone-free variant of
    /// [`add`](Self::add) used when the key and value live in a caller's batch.
    pub fn add_parts(
        &mut self,
        seqno: triad_common::types::SeqNo,
        kind: triad_common::types::ValueKind,
        key: &[u8],
        value: &[u8],
    ) -> Result<u64> {
        self.add_parts_stamped(seqno, kind, key, value, None)
    }

    /// [`add_parts`](Self::add_parts) with an optional cross-shard
    /// [`BatchStamp`](crate::BatchStamp) appended to the record payload.
    pub fn add_parts_stamped(
        &mut self,
        seqno: triad_common::types::SeqNo,
        kind: triad_common::types::ValueKind,
        key: &[u8],
        value: &[u8],
        stamp: Option<crate::BatchStamp>,
    ) -> Result<u64> {
        self.scratch.clear();
        crate::record::encode_record_parts_stamped(
            &mut self.scratch,
            seqno,
            kind,
            key,
            value,
            stamp,
        );
        let (crc_bytes, len_bytes) = frame_header(&self.scratch)?;

        let start = self.framed.len() as u64;
        self.framed.extend_from_slice(&crc_bytes);
        self.framed.extend_from_slice(&len_bytes);
        self.framed.extend_from_slice(&self.scratch);
        self.offsets.push(start);
        Ok(start)
    }

    /// Number of records framed so far.
    pub fn record_count(&self) -> usize {
        self.offsets.len()
    }

    /// Returns `true` when no records are framed.
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// Total framed bytes (headers included) — exactly what the append will write.
    pub fn encoded_bytes(&self) -> u64 {
        self.framed.len() as u64
    }

    /// Offsets of every framed record relative to the batch start, in add order.
    pub fn relative_offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// The framed bytes.
    pub fn framed_bytes(&self) -> &[u8] {
        &self.framed
    }
}

/// A shared reference to a log file that only ever writes through it.
///
/// [`LogWriter`] buffers appends in a `BufWriter` over this wrapper while keeping a
/// second [`Arc`] to the same [`File`] for [`LogSyncHandle`]: `write`/`flush` go
/// through `&File` (which implements [`Write`]), and `sync_data` takes `&self`, so a
/// sync handle can fsync the file concurrently with buffered appends without any
/// lock on the writer itself.
#[derive(Debug)]
struct SharedFile(Arc<File>);

impl Write for SharedFile {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        (&*self.0).write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        (&*self.0).flush()
    }
}

/// A clonable handle that can fsync a commit log without exclusive access to its
/// [`LogWriter`].
///
/// This is what makes a *pipelined* commit possible: the writer's append lock is
/// released after the buffered append + OS flush, and the durability stage issues
/// the fsync through this handle while the next group is already appending. The
/// fsync covers every byte written to the file before the `sync_data` call, i.e.
/// everything a preceding [`LogWriter::flush`] pushed to the OS.
#[derive(Debug, Clone)]
pub struct LogSyncHandle {
    path: PathBuf,
    file: Arc<File>,
}

impl LogSyncHandle {
    /// Fsyncs the log file (data only; the engine never relies on metadata sync
    /// for commit-log durability — file length is recovered by scanning frames).
    pub fn sync(&self) -> Result<()> {
        self.file
            .sync_data()
            .map_err(|e| Error::io(format!("syncing commit log {}", self.path.display()), e))
    }
}

/// An append-only writer for a single commit log file.
///
/// The writer buffers records in user space; [`LogWriter::flush`] pushes them to the
/// OS and [`LogWriter::sync`] additionally issues an `fsync`. The engine decides how
/// often to call each based on its durability configuration. For pipelined commits,
/// [`LogWriter::sync_handle`] hands out a shared handle that fsyncs the same file
/// without holding the writer.
#[derive(Debug)]
pub struct LogWriter {
    id: u64,
    path: PathBuf,
    file: BufWriter<SharedFile>,
    shared: Arc<File>,
    /// Offset at which the next record will start.
    offset: u64,
    /// Number of records appended.
    records: u64,
    /// Set when a write failed partway: the file's tail (and therefore `offset`)
    /// is no longer trustworthy, so every further append is refused.
    poisoned: bool,
}

impl LogWriter {
    /// Creates a new, empty log file with the given id at `path`.
    ///
    /// Fails if the file already exists, to avoid silently clobbering a log that may
    /// still be needed for recovery.
    pub fn create(path: impl AsRef<Path>, id: u64) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
            .map_err(|e| Error::io(format!("creating commit log {}", path.display()), e))?;
        let shared = Arc::new(file);
        Ok(LogWriter {
            id,
            path,
            file: BufWriter::new(SharedFile(Arc::clone(&shared))),
            shared,
            offset: 0,
            records: 0,
            poisoned: false,
        })
    }

    /// Returns a handle that can fsync this log without exclusive access to the
    /// writer. Only bytes already [`flush`](LogWriter::flush)ed to the OS are
    /// guaranteed to be covered by a sync issued through the handle.
    pub fn sync_handle(&self) -> LogSyncHandle {
        LogSyncHandle { path: self.path.clone(), file: Arc::clone(&self.shared) }
    }

    /// The id of this log file.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The path of this log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Bytes written so far (i.e. the current size of the log).
    pub fn size(&self) -> u64 {
        self.offset
    }

    /// Number of records appended so far.
    pub fn record_count(&self) -> u64 {
        self.records
    }

    /// Appends a record and returns the offset at which it was written.
    ///
    /// The returned offset is the handle TRIAD-LOG stores in the memtable entry so
    /// the value can later be served straight from the log file.
    pub fn append(&mut self, record: &LogRecord) -> Result<u64> {
        let payload = record.encode();
        self.append_payload(&payload)
    }

    /// Appends a pre-encoded payload; used when replaying entries verbatim.
    pub fn append_payload(&mut self, payload: &[u8]) -> Result<u64> {
        self.check_usable()?;
        let start = self.offset;
        let (crc_bytes, len_bytes) = frame_header(payload)?;

        self.file
            .write_all(&crc_bytes)
            .and_then(|_| self.file.write_all(&len_bytes))
            .and_then(|_| self.file.write_all(payload))
            .map_err(|e| {
                self.poisoned = true;
                Error::io(format!("appending to commit log {}", self.path.display()), e)
            })?;

        self.offset += (RECORD_HEADER_LEN + payload.len()) as u64;
        self.records += 1;
        Ok(start)
    }

    /// Appends every record framed in `batch` with a single buffered write.
    ///
    /// Returns the file offset at which the batch starts; record `i` of the batch
    /// lives at `start + batch.relative_offsets()[i]`. This is the group-commit
    /// fast path: one `write_all` for the whole group instead of one per record.
    pub fn append_batch(&mut self, batch: &BatchEncoder) -> Result<u64> {
        self.check_usable()?;
        let start = self.offset;
        if batch.is_empty() {
            return Ok(start);
        }
        self.file.write_all(batch.framed_bytes()).map_err(|e| {
            self.poisoned = true;
            Error::io(format!("appending batch to commit log {}", self.path.display()), e)
        })?;
        self.offset += batch.encoded_bytes();
        self.records += batch.record_count() as u64;
        Ok(start)
    }

    /// Refuses further appends after a failed write. A partial `write_all`
    /// leaves an unknown number of bytes in the file, so `offset` can no longer
    /// be trusted: appending more records would hand out log positions shifted
    /// from where the bytes actually land, silently corrupting offset-addressed
    /// reads of *later, acknowledged* writes. An explicit error until the log is
    /// rotated is strictly safer.
    fn check_usable(&self) -> Result<()> {
        if self.poisoned {
            return Err(Error::io(
                format!(
                    "appending to commit log {} after an earlier failed write",
                    self.path.display()
                ),
                std::io::Error::other("commit log writer poisoned"),
            ));
        }
        Ok(())
    }

    /// Flushes buffered records to the operating system.
    pub fn flush(&mut self) -> Result<()> {
        self.file
            .flush()
            .map_err(|e| Error::io(format!("flushing commit log {}", self.path.display()), e))
    }

    /// Flushes and fsyncs the log file, guaranteeing durability of all appended records.
    pub fn sync(&mut self) -> Result<()> {
        self.flush()?;
        self.shared
            .sync_data()
            .map_err(|e| Error::io(format!("syncing commit log {}", self.path.display()), e))
    }

    /// Flushes buffers and returns the final size of the log file.
    ///
    /// The file remains on disk; TRIAD-LOG keeps sealed logs around as the backing
    /// store of CL-SSTables.
    pub fn seal(mut self) -> Result<u64> {
        self.flush()?;
        self.shared
            .sync_data()
            .map_err(|e| Error::io(format!("sealing commit log {}", self.path.display()), e))?;
        Ok(self.offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::LogReader;
    use crate::{log_file_path, RECORD_HEADER_LEN};

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("triad-wal-writer-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn create_refuses_to_overwrite() {
        let dir = temp_dir("no-overwrite");
        let path = log_file_path(&dir, 1);
        let _writer = LogWriter::create(&path, 1).unwrap();
        assert!(LogWriter::create(&path, 1).is_err());
    }

    #[test]
    fn offsets_are_monotonic_and_addressable() {
        let dir = temp_dir("offsets");
        let path = log_file_path(&dir, 2);
        let mut writer = LogWriter::create(&path, 2).unwrap();
        let mut offsets = Vec::new();
        for i in 0..100u64 {
            let record =
                LogRecord::put(i, format!("key-{i}").into_bytes(), vec![b'v'; i as usize % 32]);
            let offset = writer.append(&record).unwrap();
            if let Some(&last) = offsets.last() {
                assert!(offset > last);
            }
            offsets.push(offset);
        }
        assert_eq!(writer.record_count(), 100);
        writer.sync().unwrap();

        let reader = LogReader::open(&path).unwrap();
        for (i, &offset) in offsets.iter().enumerate() {
            let record = reader.read_at(offset).unwrap();
            assert_eq!(record.seqno, i as u64);
            assert_eq!(record.key, format!("key-{i}").into_bytes());
        }
    }

    #[test]
    fn size_accounts_for_headers() {
        let dir = temp_dir("size");
        let path = log_file_path(&dir, 3);
        let mut writer = LogWriter::create(&path, 3).unwrap();
        let record = LogRecord::put(1, b"k".to_vec(), b"v".to_vec());
        let payload_len = record.encode().len();
        writer.append(&record).unwrap();
        assert_eq!(writer.size(), (RECORD_HEADER_LEN + payload_len) as u64);
        let sealed_size = writer.seal().unwrap();
        assert_eq!(sealed_size, std::fs::metadata(&path).unwrap().len());
    }

    #[test]
    fn append_batch_matches_record_by_record_appends() {
        let dir = temp_dir("batch");
        let records: Vec<LogRecord> = (0..50u64)
            .map(|i| {
                if i % 7 == 0 {
                    LogRecord::delete(i, format!("key-{i}").into_bytes())
                } else {
                    LogRecord::put(i, format!("key-{i}").into_bytes(), vec![b'v'; i as usize % 64])
                }
            })
            .collect();

        // Reference: one append per record.
        let serial_path = log_file_path(&dir, 10);
        let mut serial = LogWriter::create(&serial_path, 10).unwrap();
        let mut serial_offsets = Vec::new();
        for record in &records {
            serial_offsets.push(serial.append(record).unwrap());
        }
        serial.sync().unwrap();

        // One batched append, in two groups to exercise a non-zero start offset.
        let batch_path = log_file_path(&dir, 11);
        let mut batched = LogWriter::create(&batch_path, 11).unwrap();
        let mut encoder = BatchEncoder::new();
        let mut batch_offsets = Vec::new();
        for group in records.chunks(17) {
            encoder.clear();
            for record in group {
                encoder.add(record).unwrap();
            }
            let start = batched.append_batch(&encoder).unwrap();
            batch_offsets.extend(encoder.relative_offsets().iter().map(|rel| start + rel));
        }
        batched.sync().unwrap();

        assert_eq!(batched.record_count(), records.len() as u64);
        assert_eq!(batched.size(), serial.size());
        assert_eq!(batch_offsets, serial_offsets, "batched offsets must match serial appends");
        assert_eq!(
            std::fs::read(&batch_path).unwrap(),
            std::fs::read(&serial_path).unwrap(),
            "batched framing must be byte-identical to serial framing"
        );

        // Every record is offset-addressable and the log recovers in full.
        let reader = LogReader::open(&batch_path).unwrap();
        for (record, offset) in records.iter().zip(&batch_offsets) {
            assert_eq!(&reader.read_at(*offset).unwrap(), record);
        }
        let recovered: Vec<_> = reader.iter().unwrap().collect::<Result<Vec<_>>>().unwrap();
        assert_eq!(recovered.len(), records.len());
    }

    #[test]
    fn empty_batch_append_is_a_no_op() {
        let dir = temp_dir("empty-batch");
        let mut writer = LogWriter::create(log_file_path(&dir, 12), 12).unwrap();
        let encoder = BatchEncoder::new();
        assert_eq!(writer.append_batch(&encoder).unwrap(), 0);
        assert_eq!(writer.size(), 0);
        assert_eq!(writer.record_count(), 0);
    }

    #[test]
    fn batch_encoder_clear_retains_capacity() {
        let mut encoder = BatchEncoder::new();
        encoder.add(&LogRecord::put(1, b"k".to_vec(), vec![0u8; 512])).unwrap();
        assert_eq!(encoder.record_count(), 1);
        assert!(encoder.encoded_bytes() > 512);
        encoder.clear();
        assert!(encoder.is_empty());
        assert_eq!(encoder.encoded_bytes(), 0);
        assert!(encoder.framed_bytes().is_empty());
    }

    #[test]
    fn sync_handle_syncs_flushed_bytes_without_the_writer() {
        let dir = temp_dir("sync-handle");
        let path = log_file_path(&dir, 20);
        let mut writer = LogWriter::create(&path, 20).unwrap();
        let handle = writer.sync_handle();
        let record = LogRecord::put(1, b"pipelined".to_vec(), b"commit".to_vec());
        writer.append(&record).unwrap();
        writer.flush().unwrap();
        // The handle needs no access to the writer; a concurrent thread could be
        // appending the next group while this fsync is in flight.
        handle.sync().unwrap();
        let reader = LogReader::open(&path).unwrap();
        let recovered: Vec<_> = reader.iter().unwrap().collect::<Result<Vec<_>>>().unwrap();
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].record, record);
        // The handle stays valid (and harmless) after the writer is gone.
        drop(writer);
        handle.sync().unwrap();
    }

    #[test]
    fn append_payload_matches_append() {
        let dir = temp_dir("payload");
        let path = log_file_path(&dir, 4);
        let mut writer = LogWriter::create(&path, 4).unwrap();
        let record = LogRecord::put(9, b"alpha".to_vec(), b"beta".to_vec());
        writer.append_payload(&record.encode()).unwrap();
        writer.sync().unwrap();
        let reader = LogReader::open(&path).unwrap();
        let recovered: Vec<_> = reader.iter().unwrap().collect::<Result<Vec<_>>>().unwrap();
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].record, record);
    }
}
