//! Regenerates Figure 11 (write- and read-amplification breakdown per technique).

use triad_bench::experiments::fig11_wa_ra;
use triad_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    fig11_wa_ra::run_write_amplification(scale).expect("figure 11 WA breakdown failed");
    fig11_wa_ra::run_read_amplification(scale).expect("figure 11 RA breakdown failed");
}
