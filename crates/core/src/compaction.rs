//! Leveled compaction, including TRIAD-DISK's deferred L0→L1 compaction.
//!
//! Compaction keeps the tree shaped: L0 is bounded by file count, deeper levels by
//! total size. The baseline triggers an L0→L1 compaction as soon as
//! `l0_compaction_trigger` files accumulate. TRIAD-DISK (paper §4.2) instead
//! estimates, from the per-file HyperLogLog sketches, how many duplicate keys the
//! candidate files share (the *overlap ratio*) and defers the compaction until the
//! ratio reaches a threshold — unless L0 has hit its hard file cap.

use std::sync::Arc;
use std::time::Instant;

use triad_common::{Error, Result};
use triad_hll::overlap_ratio;
use triad_sstable::{
    sst_file_path, DedupIterator, EntryIter, MergingIterator, TableBuilder, TableBuilderOptions,
    TableKind,
};

use crate::db::DbInner;
use crate::version::{FileMetadata, Version, VersionEdit};

/// A picked compaction: the input files and the level they compact into.
#[derive(Debug)]
pub(crate) struct CompactionJob {
    /// Level the compaction starts from.
    pub source_level: usize,
    /// Files taken from `source_level`.
    pub inputs_lower: Vec<Arc<FileMetadata>>,
    /// Overlapping files taken from `source_level + 1`.
    pub inputs_upper: Vec<Arc<FileMetadata>>,
}

impl CompactionJob {
    /// The level the outputs are written to.
    pub fn target_level(&self) -> usize {
        self.source_level + 1
    }

    /// Every input file, lower level first.
    pub fn all_inputs(&self) -> impl Iterator<Item = &Arc<FileMetadata>> {
        self.inputs_lower.iter().chain(self.inputs_upper.iter())
    }
}

impl DbInner {
    /// Returns `true` if the current version needs compaction work.
    pub(crate) fn compaction_needed(&self) -> bool {
        let version = self.current_version.read().clone();
        if self.l0_should_compact(&version) {
            return true;
        }
        for level in 1..version.num_levels().saturating_sub(1) {
            if version.level_size(level) > self.options.level_target_size(level) {
                return true;
            }
        }
        false
    }

    /// Decides whether L0 should be compacted right now, applying TRIAD-DISK's
    /// deferral when enabled.
    fn l0_should_compact(&self, version: &Version) -> bool {
        let l0_count = version.num_files(0);
        if l0_count == 0 {
            return false;
        }
        let triad = &self.options.triad;
        if !triad.disk_enabled {
            return l0_count >= self.options.l0_compaction_trigger;
        }
        if l0_count < self.options.l0_compaction_trigger {
            return false;
        }
        // Hard cap: never let L0 grow past max_l0_files.
        if l0_count >= triad.max_l0_files {
            return true;
        }
        match self.l0_overlap_ratio(version) {
            Ok(estimate) => {
                if estimate.ratio >= triad.overlap_ratio_threshold {
                    true
                } else {
                    self.stats.add_compactions_deferred(1);
                    false
                }
            }
            // If the sketches are unusable for some reason, fall back to the baseline.
            Err(_) => l0_count >= self.options.l0_compaction_trigger,
        }
    }

    /// Computes the overlap ratio over all L0 files plus the L1 files their combined
    /// key range overlaps (the configuration shown in the paper's Figure 5).
    pub(crate) fn l0_overlap_ratio(&self, version: &Version) -> Result<triad_hll::OverlapEstimate> {
        let l0 = &version.levels[0];
        if l0.is_empty() {
            return overlap_ratio(std::iter::empty());
        }
        let start = l0.iter().map(|f| f.smallest.user_key.clone()).min().unwrap_or_default();
        let end = l0.iter().map(|f| f.largest.user_key.clone()).max().unwrap_or_default();
        let l1 = version.overlapping_files(1, &start, &end);
        let files: Vec<(&triad_hll::HyperLogLog, u64)> = l0
            .iter()
            .map(|f| (&f.hll, f.num_entries))
            .chain(l1.iter().map(|f| (&f.hll, f.num_entries)))
            .collect();
        overlap_ratio(files)
    }

    /// Picks and runs at most one compaction. Returns `true` if one ran.
    pub(crate) fn maybe_compact(&self) -> Result<bool> {
        let version = self.current_version.read().clone();
        let job = if self.l0_should_compact(&version) {
            Some(self.pick_l0_compaction(&version))
        } else {
            self.pick_size_compaction(&version)
        };
        match job {
            Some(job) => {
                self.run_compaction(&version, job)?;
                // Our own reference to the pre-compaction version would otherwise
                // keep the input files alive through the collection pass.
                drop(version);
                self.collect_garbage();
                Ok(true)
            }
            None => Ok(false),
        }
    }

    fn pick_l0_compaction(&self, version: &Version) -> CompactionJob {
        let inputs_lower: Vec<Arc<FileMetadata>> = version.levels[0].clone();
        let start =
            inputs_lower.iter().map(|f| f.smallest.user_key.clone()).min().unwrap_or_default();
        let end = inputs_lower.iter().map(|f| f.largest.user_key.clone()).max().unwrap_or_default();
        let inputs_upper = version.overlapping_files(1, &start, &end);
        CompactionJob { source_level: 0, inputs_lower, inputs_upper }
    }

    fn pick_size_compaction(&self, version: &Version) -> Option<CompactionJob> {
        for level in 1..version.num_levels().saturating_sub(1) {
            if version.level_size(level) <= self.options.level_target_size(level) {
                continue;
            }
            // Pick the largest file on the level; a simple, deterministic heuristic.
            let file = version.levels[level].iter().max_by_key(|f| f.size)?.clone();
            let inputs_upper = version.overlapping_files(
                level + 1,
                &file.smallest.user_key,
                &file.largest.user_key,
            );
            return Some(CompactionJob {
                source_level: level,
                inputs_lower: vec![file],
                inputs_upper,
            });
        }
        None
    }

    /// Runs `job`: merges the inputs, writes the outputs, applies the version edit
    /// and removes the obsolete files.
    pub(crate) fn run_compaction(&self, version: &Version, job: CompactionJob) -> Result<()> {
        let started = Instant::now();
        self.failpoints.check("compaction.start")?;
        let target_level = job.target_level();
        if target_level >= version.num_levels() {
            return Err(Error::InvalidArgument(format!(
                "compaction target level {target_level} exceeds configured levels"
            )));
        }

        // Sources must be ordered newest-first so the dedup keeps the latest version:
        // L0 files are already newest-first; upper-level files hold strictly older
        // data for any overlapping key.
        let mut sources: Vec<EntryIter> = Vec::new();
        let mut bytes_read = 0u64;
        let mut input_entries = 0u64;
        for file in job.all_inputs() {
            let table = self.table_cache.get_or_open(file)?;
            bytes_read += file.size;
            input_entries += file.num_entries;
            // Streaming (with sequential readahead when an I/O pool runs) keeps
            // compaction's memory footprint at one block per input, not one table.
            sources.push(table.entries_arc()?);
        }
        let merged = MergingIterator::new(sources)?;
        // Tombstones can be dropped only when nothing older can exist below the
        // output level.
        let drop_tombstones =
            ((target_level + 1)..version.num_levels()).all(|l| version.num_files(l) == 0);
        let mut dedup = DedupIterator::new(Box::new(merged), drop_tombstones);

        // Write the merged stream into new tables on the target level, splitting at
        // the configured file size.
        let table_options = TableBuilderOptions {
            block_size: self.options.block_size,
            bloom_bits_per_key: self.options.bloom_bits_per_key,
        };
        let mut outputs: Vec<FileMetadata> = Vec::new();
        let mut bytes_written = 0u64;
        let mut builder: Option<(u64, TableBuilder)> = None;
        for entry in &mut dedup {
            let entry = entry?;
            if builder.is_none() {
                let file_id = self.versions.lock().allocate_file_number();
                let path = sst_file_path(&self.path, file_id);
                builder = Some((file_id, TableBuilder::create(&path, table_options)?));
            }
            let (_, active) = builder.as_mut().expect("just created");
            active.add_entry(&entry)?;
            if active.estimated_size() >= self.options.target_file_size {
                let (file_id, finished) = builder.take().expect("active builder");
                let (props, size) = finished.finish()?;
                bytes_written += size;
                outputs.push(Self::output_metadata(file_id, target_level as u32, props, size));
            }
        }
        if let Some((file_id, finished)) = builder.take() {
            if finished.num_entries() > 0 {
                let (props, size) = finished.finish()?;
                bytes_written += size;
                outputs.push(Self::output_metadata(file_id, target_level as u32, props, size));
            } else {
                finished.abandon()?;
            }
        }

        self.failpoints.check("compaction.before_manifest")?;
        // Retire the inputs *before* installing the edit: the GC pass never deletes
        // a file the current version references, and enqueueing first means the
        // queue already covers the retirement once the new version is visible.
        // Physical deletion happens when no live version — including any pinned by
        // in-flight readers — references them any more.
        self.retire_files(job.all_inputs().map(|f| f.as_ref()));
        let mut edit = VersionEdit::default();
        for file in job.all_inputs() {
            edit.deleted.push((file.level, file.id));
        }
        edit.added.extend(outputs.iter().cloned());
        {
            let mut versions = self.versions.lock();
            let new_version = versions.log_and_apply(edit)?;
            *self.current_version.write() = new_version;
        }

        // Warm the table cache so the first readers of the new version skip the
        // open cost. Done after the install (a failure between output write and
        // manifest commit must not leave handles for orphaned files behind) and
        // best-effort: the compaction has already committed, so a transient open
        // failure must not mark it failed — readers open tables on demand.
        for output in &outputs {
            let _ = self.table_cache.get_or_open(output);
        }

        self.stats.add_compaction_count(1);
        self.stats.add_bytes_compacted_read(bytes_read);
        self.stats.add_bytes_compacted_written(bytes_written);
        self.stats.add_entries_compacted(input_entries);
        self.stats.add_entries_dropped(dedup.dropped());
        self.stats.add_compaction_duration(started.elapsed());
        Ok(())
    }

    fn output_metadata(
        file_id: u64,
        level: u32,
        props: triad_sstable::TableProperties,
        size: u64,
    ) -> FileMetadata {
        FileMetadata {
            id: file_id,
            level,
            kind: TableKind::Block,
            size,
            num_entries: props.num_entries,
            smallest: props.smallest.clone().expect("non-empty output"),
            largest: props.largest.clone().expect("non-empty output"),
            hll: props.hll.clone(),
            backing_log_id: None,
        }
    }
}
