//! MVCC snapshot tests: frozen views under concurrent writers, flushes and
//! compaction churn; group-boundary consistency; GC interaction; and the
//! pipelined crash window.

mod common;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use common::{assert_disk_matches_live_set, disk_files, key_for, open_small};
use triad_common::failpoint::{FailpointAction, FailpointRegistry};
use triad_core::{Db, Options, SyncMode, TriadConfig, WriteBatch, WriteOptions};

fn churny(options: &mut Options) {
    options.l0_compaction_trigger = 2;
    options.triad = TriadConfig::all_enabled();
    // Never defer L0 compaction and never absorb a rotation with the
    // small-flush rule, so flushes and compactions deterministically retire
    // files while snapshots hold their frozen views.
    options.triad.overlap_ratio_threshold = 0.0;
    options.triad.flush_skip_threshold_bytes = 0;
}

#[test]
fn snapshot_freezes_reads_across_flush_and_compaction() {
    let (db, dir) = open_small("snapshot-freeze", churny);
    let db = Arc::new(db);
    const KEYS: u64 = 200;
    for i in 0..KEYS {
        db.put(key_for(i), format!("v1-{i}").into_bytes()).unwrap();
    }
    db.delete(key_for(0)).unwrap();

    let snap = db.snapshot();
    let snap_seqno = snap.seqno();
    assert_eq!(snap_seqno, db.last_seqno(), "quiesced: the snapshot sits at the published seqno");

    // N concurrent write groups overwrite every key, insert fresh keys and
    // delete one the snapshot can see.
    let mut writers = Vec::new();
    for t in 0..4u64 {
        let db = Arc::clone(&db);
        writers.push(thread::spawn(move || {
            for i in 0..KEYS {
                if i % 4 == t {
                    db.put(key_for(i), format!("v2-{i}").into_bytes()).unwrap();
                    db.put(key_for(1_000 + t * KEYS + i), b"post-snapshot").unwrap();
                }
            }
        }));
    }
    for writer in writers {
        writer.join().unwrap();
    }
    db.delete(key_for(7)).unwrap();

    // Push the overwritten state through a flush *and* an L0→L1 compaction, so
    // the snapshot's files are retired from the current version while it reads.
    db.flush().unwrap();
    db.wait_for_compactions().unwrap();

    for i in 1..KEYS {
        let live = db.get(key_for(i)).unwrap();
        if i == 7 {
            assert_eq!(live, None, "the live view saw the post-snapshot delete");
        } else {
            assert_eq!(live.as_deref(), Some(format!("v2-{i}").as_bytes()), "live key {i}");
        }
        assert_eq!(
            snap.get(key_for(i)).unwrap().as_deref(),
            Some(format!("v1-{i}").as_bytes()),
            "snapshot must return the pre-overwrite value of key {i}"
        );
    }
    assert_eq!(snap.get(key_for(0)).unwrap(), None, "pre-snapshot delete stays deleted");
    assert_eq!(snap.get(key_for(1_003)).unwrap(), None, "post-snapshot keys are invisible");

    // The scan shows exactly the snapshot's world: keys 1..KEYS at v1.
    let scanned: Vec<(Vec<u8>, Vec<u8>)> = snap.scan().unwrap().map(|r| r.unwrap()).collect();
    assert_eq!(scanned.len() as u64, KEYS - 1);
    for (key, value) in &scanned {
        let i: u64 = String::from_utf8_lossy(&key[4..]).parse().unwrap();
        assert_eq!(value, format!("v1-{i}").as_bytes(), "scan value for key {i}");
    }
    // Bounded range scans work too.
    let ranged: Vec<_> = snap
        .scan_range(Some(&key_for(10)), Some(&key_for(20)))
        .unwrap()
        .map(|r| r.unwrap())
        .collect();
    assert_eq!(ranged.len(), 10);

    drop(snap);
    db.wait_for_compactions().unwrap();
    assert_disk_matches_live_set(&db, &dir);
    db.close().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn long_lived_snapshot_survives_concurrent_churn() {
    let (db, dir) = open_small("snapshot-churn", churny);
    let db = Arc::new(db);
    const KEYS: u64 = 300;
    for i in 0..KEYS {
        db.put(key_for(i), format!("base-{i}").into_bytes()).unwrap();
    }
    let snap = Arc::new(db.snapshot());
    let snap_seqno = snap.seqno();

    let stop = Arc::new(AtomicBool::new(false));
    let mut writers = Vec::new();
    for t in 0..3u64 {
        let db = Arc::clone(&db);
        writers.push(thread::spawn(move || {
            // Heavy overwrite + delete churn with values fat enough to force
            // rotations, flushes and compactions (file retirement under the
            // open snapshot).
            for i in 0..3_000u64 {
                let key = key_for((t * 31 + i * 7) % KEYS);
                if i % 13 == 0 {
                    db.delete(&key).unwrap();
                } else {
                    db.put(&key, format!("churn-{t}-{i}-{}", "x".repeat(120)).into_bytes())
                        .unwrap();
                }
            }
        }));
    }
    let mut checkers = Vec::new();
    for c in 0..2u64 {
        let snap = Arc::clone(&snap);
        let stop = Arc::clone(&stop);
        checkers.push(thread::spawn(move || {
            let mut rounds = 0u64;
            while !stop.load(Ordering::Relaxed) {
                // Point probes: every key frozen at its base value.
                for i in (c..KEYS).step_by(17) {
                    assert_eq!(
                        snap.get(key_for(i)).unwrap().as_deref(),
                        Some(format!("base-{i}").as_bytes()),
                        "snapshot lost key {i} under churn"
                    );
                }
                // Full scan: no missing keys, no future values, no duplicates.
                let scanned: Vec<(Vec<u8>, Vec<u8>)> =
                    snap.scan().unwrap().map(|r| r.unwrap()).collect();
                assert_eq!(scanned.len() as u64, KEYS, "snapshot scan must stay complete");
                for window in scanned.windows(2) {
                    assert!(window[0].0 < window[1].0, "scan keys must stay strictly sorted");
                }
                for (key, value) in &scanned {
                    let i: u64 = String::from_utf8_lossy(&key[4..]).parse().unwrap();
                    assert_eq!(
                        value,
                        format!("base-{i}").as_bytes(),
                        "snapshot scan surfaced a post-snapshot value for key {i}"
                    );
                }
                rounds += 1;
            }
            rounds
        }));
    }
    for writer in writers {
        writer.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    for checker in checkers {
        assert!(checker.join().unwrap() > 0, "the checker must have verified at least one round");
    }
    assert_eq!(snap.seqno(), snap_seqno, "a snapshot's seqno never moves");

    // Drop the last handle: GC reclaims everything only the snapshot pinned.
    drop(Arc::try_unwrap(snap).expect("checkers joined: last snapshot handle"));
    db.flush().unwrap();
    db.wait_for_compactions().unwrap();
    assert_disk_matches_live_set(&db, &dir);
    db.close().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn snapshots_never_observe_half_a_write_batch() {
    let (db, dir) = open_small("snapshot-batch-atomicity", |options| {
        options.memtable_size = 8 * 1024 * 1024;
        options.max_log_size = 16 * 1024 * 1024;
    });
    let db = Arc::new(db);
    const WRITERS: u64 = 4;
    const BATCH_KEYS: u64 = 5;
    // Seed generation 0 so every key always exists.
    for t in 0..WRITERS {
        let mut batch = WriteBatch::new();
        for k in 0..BATCH_KEYS {
            batch.put(format!("w{t}-k{k}").into_bytes(), b"gen-00000".to_vec());
        }
        db.write(batch, WriteOptions::default()).unwrap();
    }

    let stop = Arc::new(AtomicBool::new(false));
    let mut writers = Vec::new();
    for t in 0..WRITERS {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        writers.push(thread::spawn(move || {
            let mut generation = 1u64;
            while !stop.load(Ordering::Relaxed) {
                // One batch bumps all five keys to the same generation; a
                // snapshot must see all five at one generation or none updated.
                let mut batch = WriteBatch::new();
                for k in 0..BATCH_KEYS {
                    batch.put(
                        format!("w{t}-k{k}").into_bytes(),
                        format!("gen-{generation:05}").into_bytes(),
                    );
                }
                db.write(batch, WriteOptions::default()).unwrap();
                generation += 1;
            }
        }));
    }

    for _ in 0..200 {
        let snap = db.snapshot();
        for t in 0..WRITERS {
            let first = snap.get(format!("w{t}-k0").into_bytes()).unwrap().unwrap();
            for k in 1..BATCH_KEYS {
                let value = snap.get(format!("w{t}-k{k}").into_bytes()).unwrap().unwrap();
                assert_eq!(
                    value,
                    first,
                    "snapshot at seqno {} observed writer {t}'s batch half-applied",
                    snap.seqno()
                );
            }
        }
    }
    stop.store(true, Ordering::Relaxed);
    for writer in writers {
        writer.join().unwrap();
    }
    db.close().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dropping_the_snapshot_releases_exactly_the_files_it_pinned() {
    let (db, dir) = open_small("snapshot-gc", churny);
    const KEYS: u64 = 150;
    for i in 0..KEYS {
        db.put(key_for(i), format!("pinned-{i}-{}", "y".repeat(100)).into_bytes()).unwrap();
    }
    db.flush().unwrap();
    db.wait_for_compactions().unwrap();

    let snap = db.snapshot();
    // Churn the whole key space through several flushes and compactions: the
    // current version moves on, retiring the files the snapshot still reads.
    for round in 0..4u64 {
        for i in 0..KEYS {
            db.put(key_for(i), format!("new-{round}-{i}-{}", "z".repeat(100)).into_bytes())
                .unwrap();
        }
        db.flush().unwrap();
    }
    db.wait_for_compactions().unwrap();

    // While the snapshot is open, the expected live set includes its pinned
    // version's files, and the directory must match exactly that (no premature
    // deletion of pinned files, no leaks beyond them).
    for _ in 0..500 {
        db.collect_garbage();
        if disk_files(&dir) == db.expected_live_files() {
            break;
        }
        thread::sleep(std::time::Duration::from_millis(10));
    }
    let with_snapshot = db.expected_live_files();
    assert_eq!(disk_files(&dir), with_snapshot, "pinned files must stay on disk");
    // The snapshot still reads its frozen world from those files.
    for i in (0..KEYS).step_by(10) {
        let value = snap.get(key_for(i)).unwrap().unwrap();
        assert!(
            value.starts_with(format!("pinned-{i}-").as_bytes()),
            "snapshot must read the pinned version of key {i}"
        );
    }

    // Dropping the snapshot shrinks the expected set and GC deletes exactly
    // the difference: the directory converges to the current version's set.
    drop(snap);
    assert_disk_matches_live_set(&db, &dir);
    let without_snapshot = db.expected_live_files();
    assert!(
        without_snapshot.is_subset(&with_snapshot),
        "dropping a snapshot only ever shrinks the expected live set"
    );
    assert!(
        without_snapshot.len() < with_snapshot.len(),
        "the snapshot was pinning retired files; its drop must release some"
    );
    db.close().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn snapshot_of_an_empty_database_is_empty_and_stays_empty() {
    let (db, dir) = open_small("snapshot-empty", |_| {});
    let snap = db.snapshot();
    assert_eq!(snap.seqno(), 0);
    db.put(b"after", b"value").unwrap();
    assert_eq!(snap.get(b"after").unwrap(), None);
    assert_eq!(snap.scan().unwrap().count(), 0);
    assert_eq!(db.get(b"after").unwrap().as_deref(), Some(&b"value"[..]));
    drop(snap);
    db.close().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// The pipelined crash window (append done, fsync pending): a snapshot can
/// never observe the non-durable write, because publication — and therefore
/// the snapshot's seqno — waits for durability. After recovery, a fresh
/// snapshot agrees with the recovered live state (which is allowed to have
/// committed the unacknowledged write).
#[test]
fn snapshot_in_the_pipelined_sync_window_never_sees_nondurable_data() {
    let dir = common::temp_dir("snapshot-crash-window");
    let mut options = Options::small_for_tests();
    options.sync_mode = SyncMode::SyncEveryWrite;
    assert!(options.group_commit.pipelined, "this probes the pipelined window");
    let failpoints = FailpointRegistry::new();
    {
        let db = Db::open_with_failpoints(&dir, options.clone(), failpoints.clone()).unwrap();
        db.put(b"stable", b"durable-v1").unwrap();
        let seqno_before = db.last_seqno();

        // The next write dies between its append stage and its fsync — the
        // window the pipeline opened. It is appended (and may survive a crash)
        // but never acknowledged, never published.
        failpoints.arm("commit.before_group_wal_sync", FailpointAction::ErrorTimes(1));
        let err = db.put(b"stable", b"never-acked-v2").unwrap_err();
        assert!(matches!(err, triad_core::Error::Injected(_)), "unexpected failure: {err}");

        // A snapshot taken in (and after) that window is bounded by the
        // published seqno, which never covered the non-durable group.
        let snap = db.snapshot();
        assert_eq!(snap.seqno(), seqno_before, "the snapshot seqno excludes the failed group");
        assert_eq!(
            snap.get(b"stable").unwrap().as_deref(),
            Some(&b"durable-v1"[..]),
            "a snapshot must never observe unacknowledged, non-durable data"
        );
        let scanned: Vec<(Vec<u8>, Vec<u8>)> = snap.scan().unwrap().map(|r| r.unwrap()).collect();
        assert_eq!(scanned, vec![(b"stable".to_vec(), b"durable-v1".to_vec())]);
        drop(snap);
        db.close().unwrap();
    }

    // Recovery may replay the appended-but-unacknowledged record (the standard
    // contract). Whatever it decides, a post-recovery snapshot must agree with
    // the live read — published, group-boundary state only.
    let db = Db::open(&dir, options).unwrap();
    let live = db.get(b"stable").unwrap();
    let snap = db.snapshot();
    assert_eq!(snap.seqno(), db.last_seqno());
    assert_eq!(
        snap.get(b"stable").unwrap(),
        live,
        "a post-recovery snapshot agrees with the recovered live state"
    );
    db.close().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stale_prior_of_an_idle_key_is_released_when_the_snapshot_drops() {
    // The PR 5 retention caveat, fixed: pruning used to be piggybacked on the
    // overwrite path only, so a key overwritten *under* a snapshot kept its
    // retained prior after the snapshot dropped until the slot's next
    // overwrite or a flush. Now the last deregistration of a seqno moves the
    // registry bounds and triggers a prune sweep, so release is prompt even
    // for keys that are never touched again.
    let (db, dir) = open_small("retention-prompt-release", |options| {
        // Keep everything in one active memtable: no rotation, no flush.
        options.memtable_size = 4 * 1024 * 1024;
    });
    db.put(b"idle", b"v1").unwrap();
    db.put(b"other", b"w1").unwrap();
    assert_eq!(db.retained_prior_versions(), 0, "no snapshot, no retention");

    let snap = db.snapshot();
    db.put(b"idle", b"v2").unwrap();
    assert_eq!(db.retained_prior_versions(), 1, "the overwrite retained v1 for the snapshot");
    assert_eq!(snap.get(b"idle").unwrap().as_deref(), Some(b"v1".as_ref()));

    drop(snap);
    // The key is never overwritten again and nothing flushes; the drop alone
    // must have swept the stale prior.
    assert_eq!(
        db.retained_prior_versions(),
        0,
        "an idle key's stale prior is released promptly when the last snapshot drops"
    );
    assert_eq!(db.get(b"idle").unwrap().as_deref(), Some(b"v2".as_ref()));

    // An older snapshot that still needs the prior keeps it across a younger
    // snapshot's drop — only unreachable versions are swept.
    let older = db.snapshot();
    db.put(b"idle", b"v3").unwrap();
    let younger = db.snapshot();
    db.put(b"idle", b"v4").unwrap();
    assert_eq!(db.retained_prior_versions(), 2);
    drop(younger);
    assert_eq!(db.retained_prior_versions(), 1, "the older snapshot still pins v2's successor");
    assert_eq!(older.get(b"idle").unwrap().as_deref(), Some(b"v2".as_ref()));
    drop(older);
    assert_eq!(db.retained_prior_versions(), 0, "the last drop sweeps everything");

    db.close().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn retained_memory_stays_bounded_under_churn_with_a_live_snapshot() {
    // One open snapshot can pin at most one prior version per overwritten
    // slot, no matter how many times the slot churns: each overwrite prunes
    // the previous round's version (the snapshot can no longer read it,
    // having a newer visible successor) and keeps only the newest version the
    // snapshot *can* read. Memory is bounded by the key count, not the op count.
    const KEYS: u64 = 50;
    const ROUNDS: u64 = 40;
    let (db, dir) = open_small("retention-bounded", |options| {
        options.memtable_size = 8 * 1024 * 1024;
    });
    for i in 0..KEYS {
        db.put(key_for(i), format!("v0-{i}").into_bytes()).unwrap();
    }
    let snap = db.snapshot();
    for round in 1..=ROUNDS {
        for i in 0..KEYS {
            db.put(key_for(i), format!("v{round}-{i}").into_bytes()).unwrap();
        }
        let retained = db.retained_prior_versions();
        assert!(
            retained <= KEYS as usize,
            "round {round}: retained {retained} priors for {KEYS} keys — retention must be \
             bounded by the key count, not the {} overwrites so far",
            round * KEYS
        );
    }
    // The snapshot still reads its frozen world through all that churn.
    for i in 0..KEYS {
        assert_eq!(
            snap.get(key_for(i)).unwrap().as_deref(),
            Some(format!("v0-{i}").as_bytes()),
            "snapshot view of key {i}"
        );
    }
    drop(snap);
    // One more sweep over every slot releases everything.
    for i in 0..KEYS {
        db.put(key_for(i), b"final").unwrap();
    }
    assert_eq!(db.retained_prior_versions(), 0, "churn after the drop releases all priors");
    db.close().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
