//! Production-like workload profiles (paper §5.2, Figures 7 and 8).
//!
//! The paper evaluates TRIAD on four internal Nutanix metadata workloads. The traces
//! themselves are not public; what the paper does publish is:
//!
//! * the key-popularity distribution of each workload (Figure 7), which shows two
//!   skew families — W2 and W4 are noticeably more skewed than W1 and W3;
//! * the number of updates and distinct keys of each workload (Figure 8):
//!   W1 = 250M updates / 40M keys, W2 = 75M / 9M, W3 = 200M / 30M, W4 = 75M / 8M.
//!
//! This module substitutes synthetic profiles with the same *shape*: Zipf-distributed
//! popularity with a larger exponent for the "more skew" pair, and the published
//! update/key ratios. Experiments scale the absolute sizes down by a configurable
//! factor so they complete on a laptop; the relative comparisons the paper reports
//! (TRIAD vs RocksDB per workload) are preserved.

use crate::dist::KeyDistribution;
use crate::generator::WorkloadSpec;
use crate::mix::OperationMix;

/// Identifies one of the four production workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProductionWorkload {
    /// W1: 250M updates over 40M keys, less skew.
    W1,
    /// W2: 75M updates over 9M keys, more skew.
    W2,
    /// W3: 200M updates over 30M keys, less skew.
    W3,
    /// W4: 75M updates over 8M keys, more skew.
    W4,
}

impl ProductionWorkload {
    /// All four workloads, in paper order.
    pub fn all() -> [ProductionWorkload; 4] {
        [
            ProductionWorkload::W1,
            ProductionWorkload::W2,
            ProductionWorkload::W3,
            ProductionWorkload::W4,
        ]
    }

    /// The workload's label as used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            ProductionWorkload::W1 => "Prod Wkld 1",
            ProductionWorkload::W2 => "Prod Wkld 2",
            ProductionWorkload::W3 => "Prod Wkld 3",
            ProductionWorkload::W4 => "Prod Wkld 4",
        }
    }
}

/// A scaled, concrete instance of a production workload.
#[derive(Debug, Clone)]
pub struct ProductionProfile {
    /// Which workload this profile models.
    pub workload: ProductionWorkload,
    /// Total updates to issue (after scaling).
    pub num_updates: u64,
    /// Number of distinct keys (after scaling).
    pub num_keys: u64,
    /// Zipf exponent modelling the Figure 7 popularity curve.
    pub zipf_theta: f64,
    /// Value size in bytes. The paper does not publish the metadata value sizes; we
    /// use the same 255-byte values as the synthetic workloads.
    pub value_size: usize,
}

/// Paper-reported sizes: (updates, keys), in millions.
const PAPER_SIZES: [(u64, u64); 4] = [(250, 40), (75, 9), (200, 30), (75, 8)];

/// Zipf exponents for the two skew families seen in Figure 7. W2/W4 ("more skew")
/// concentrate accesses on fewer keys than W1/W3 ("less skew").
const LESS_SKEW_THETA: f64 = 0.75;
const MORE_SKEW_THETA: f64 = 0.95;

impl ProductionProfile {
    /// Builds the profile for `workload`, dividing the paper's sizes by `scale_down`.
    ///
    /// `scale_down = 1` reproduces the paper's full sizes (hundreds of millions of
    /// updates); the figure binaries default to a few thousand× smaller.
    pub fn new(workload: ProductionWorkload, scale_down: u64) -> Self {
        let scale_down = scale_down.max(1);
        let (updates_m, keys_m) = match workload {
            ProductionWorkload::W1 => PAPER_SIZES[0],
            ProductionWorkload::W2 => PAPER_SIZES[1],
            ProductionWorkload::W3 => PAPER_SIZES[2],
            ProductionWorkload::W4 => PAPER_SIZES[3],
        };
        let theta = match workload {
            ProductionWorkload::W1 | ProductionWorkload::W3 => LESS_SKEW_THETA,
            ProductionWorkload::W2 | ProductionWorkload::W4 => MORE_SKEW_THETA,
        };
        ProductionProfile {
            workload,
            num_updates: (updates_m * 1_000_000 / scale_down).max(1_000),
            num_keys: (keys_m * 1_000_000 / scale_down).max(100),
            zipf_theta: theta,
            value_size: 255,
        }
    }

    /// Ratio of updates to distinct keys; higher means more in-place overwrites and
    /// therefore more benefit from skew-aware flushing.
    pub fn update_to_key_ratio(&self) -> f64 {
        self.num_updates as f64 / self.num_keys as f64
    }

    /// Returns `true` for the workloads the paper characterises as "more skew".
    pub fn is_high_skew(&self) -> bool {
        matches!(self.workload, ProductionWorkload::W2 | ProductionWorkload::W4)
    }

    /// Converts the profile into a [`WorkloadSpec`] with the given operation mix.
    ///
    /// The production workloads are update streams; the paper's throughput figures
    /// are measured while applying them, so the default mix is write-only. Callers
    /// may mix in reads to study read-path effects.
    pub fn to_spec(&self, mix: OperationMix) -> WorkloadSpec {
        WorkloadSpec {
            num_keys: self.num_keys,
            key_size: 16,
            value_size: self.value_size,
            mix,
            distribution: KeyDistribution::zipfian(self.num_keys, self.zipf_theta),
        }
    }

    /// Approximates the access probability of the key at popularity `rank`
    /// (0-indexed), matching the shape plotted in Figure 7.
    pub fn access_probability(&self, rank: u64) -> f64 {
        let rank = rank.min(self.num_keys - 1) + 1;
        let normaliser: f64 = harmonic_approx(self.num_keys, self.zipf_theta);
        (1.0 / (rank as f64).powf(self.zipf_theta)) / normaliser
    }
}

/// Approximation of the generalized harmonic number used to normalise
/// [`ProductionProfile::access_probability`].
fn harmonic_approx(n: u64, theta: f64) -> f64 {
    let exact_terms = n.min(100_000);
    let mut sum: f64 = (1..=exact_terms).map(|i| 1.0 / (i as f64).powf(theta)).sum();
    if n > exact_terms {
        let a = 1.0 - theta;
        sum += ((n as f64).powf(a) - (exact_terms as f64).powf(a)) / a;
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizes_are_preserved_at_scale_one() {
        let w1 = ProductionProfile::new(ProductionWorkload::W1, 1);
        assert_eq!(w1.num_updates, 250_000_000);
        assert_eq!(w1.num_keys, 40_000_000);
        let w4 = ProductionProfile::new(ProductionWorkload::W4, 1);
        assert_eq!(w4.num_updates, 75_000_000);
        assert_eq!(w4.num_keys, 8_000_000);
    }

    #[test]
    fn scaling_divides_sizes_but_keeps_minimums() {
        let w2 = ProductionProfile::new(ProductionWorkload::W2, 1_000);
        assert_eq!(w2.num_updates, 75_000);
        assert_eq!(w2.num_keys, 9_000);
        let tiny = ProductionProfile::new(ProductionWorkload::W2, u64::MAX);
        assert!(tiny.num_updates >= 1_000);
        assert!(tiny.num_keys >= 100);
    }

    #[test]
    fn skew_families_match_the_paper() {
        for workload in ProductionWorkload::all() {
            let profile = ProductionProfile::new(workload, 1_000);
            match workload {
                ProductionWorkload::W2 | ProductionWorkload::W4 => {
                    assert!(profile.is_high_skew());
                    assert!(profile.zipf_theta > 0.9);
                }
                _ => {
                    assert!(!profile.is_high_skew());
                    assert!(profile.zipf_theta < 0.9);
                }
            }
        }
    }

    #[test]
    fn update_to_key_ratio_orders_like_the_paper() {
        // W2 and W4 rewrite each key more often than W1 and W3 on average.
        let ratio = |w| ProductionProfile::new(w, 1).update_to_key_ratio();
        assert!(ratio(ProductionWorkload::W2) > ratio(ProductionWorkload::W1));
        assert!(ratio(ProductionWorkload::W4) > ratio(ProductionWorkload::W3));
    }

    #[test]
    fn access_probability_is_decreasing_and_normalised() {
        let profile = ProductionProfile::new(ProductionWorkload::W4, 1_000);
        let p0 = profile.access_probability(0);
        let p100 = profile.access_probability(100);
        let p_last = profile.access_probability(profile.num_keys - 1);
        assert!(p0 > p100 && p100 > p_last, "popularity must decrease with rank");
        // The total probability over all ranks is approximately 1.
        let total: f64 = (0..profile.num_keys).map(|r| profile.access_probability(r)).sum();
        assert!((total - 1.0).abs() < 0.05, "probability mass {total} should be ~1");
    }

    #[test]
    fn more_skewed_profiles_concentrate_more_mass_on_top_keys() {
        let w1 = ProductionProfile::new(ProductionWorkload::W1, 1_000);
        let w2 = ProductionProfile::new(ProductionWorkload::W2, 1_000);
        let top_mass =
            |p: &ProductionProfile| -> f64 { (0..100).map(|r| p.access_probability(r)).sum() };
        assert!(top_mass(&w2) > top_mass(&w1));
    }

    #[test]
    fn to_spec_produces_a_matching_workload() {
        let profile = ProductionProfile::new(ProductionWorkload::W3, 10_000);
        let spec = profile.to_spec(OperationMix::write_intensive());
        assert_eq!(spec.num_keys, profile.num_keys);
        assert_eq!(spec.value_size, 255);
        assert_eq!(spec.distribution.num_keys(), profile.num_keys);
    }

    #[test]
    fn labels_match_figure_9a() {
        assert_eq!(ProductionWorkload::W1.label(), "Prod Wkld 1");
        assert_eq!(ProductionWorkload::all().len(), 4);
    }
}
