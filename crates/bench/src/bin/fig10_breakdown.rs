//! Regenerates Figure 10 (per-technique throughput breakdown).

use triad_bench::experiments::fig10_breakdown;
use triad_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    fig10_breakdown::run(scale).expect("figure 10 experiment failed");
}
