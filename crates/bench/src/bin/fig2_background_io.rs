//! Regenerates Figure 2 (background I/O impact). Pass `--full` for paper-scale runs.

use triad_bench::experiments::fig2_background_io;
use triad_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    fig2_background_io::run(scale).expect("figure 2 experiment failed");
}
