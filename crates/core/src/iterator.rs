//! Full-database scans.

use std::sync::Arc;
use std::time::Instant;

use triad_common::types::{Entry, ValueKind};
use triad_common::{Result, Stats};
use triad_sstable::{bounded_to_seqno, DedupIterator, EntryIter, MergingIterator};

use crate::db::DbInner;
use crate::snapshot::SnapshotShard;

/// An iterator over every live key/value pair in the database, in key order.
///
/// The iterator captures the tree once, at creation time: the active memtable's
/// contents, the sealed memtables and the current version. Every key live at that
/// moment is observed exactly once, at its newest captured version; writes issued
/// after creation are not reflected (except that a concurrent overwrite racing
/// iterator construction may already be the version captured). The version is
/// *pinned* for the iterator's whole lifetime, so every file it reads — tables,
/// CL indexes and the commit logs backing them — survives any concurrent
/// compaction until the iterator is dropped.
pub struct DbIterator {
    inner: DedupIterator,
    /// Inclusive lower bound on user keys, if any.
    start: Option<Vec<u8>>,
    /// Exclusive upper bound on user keys, if any.
    end: Option<Vec<u8>>,
    /// Keeps the captured files safe from garbage collection until drop —
    /// one pinned version per shard the iterator reads.
    _pins: Vec<crate::db::PinnedVersion>,
    /// Shared statistics registry; the drop impl records this iterator's
    /// lifetime into the scan-latency histogram.
    stats: Arc<Stats>,
    /// When the iterator was created. The recorded "scan latency" is the
    /// whole lifetime — tree capture through drop — which for a
    /// construct-iterate-drop scan (every bench and most callers) is exactly
    /// the scan's wall-clock cost.
    created: Instant,
}

impl Drop for DbIterator {
    fn drop(&mut self) {
        self.stats.record_scan_latency_ns(self.created.elapsed().as_nanos() as u64);
    }
}

impl DbIterator {
    /// Creates an iterator restricted to user keys in `[start, end)`.
    pub(crate) fn with_bounds(
        db: &Arc<DbInner>,
        start: Option<Vec<u8>>,
        end: Option<Vec<u8>>,
    ) -> Result<DbIterator> {
        let created = Instant::now();
        let mut sources: Vec<EntryIter> = Vec::new();

        // Capture the memory component under the WAL lock plus an exclusive
        // acquisition of the commit gate. The WAL lock serialises rotations, the
        // serialized write path and the flush hot-write-back; the gate (always
        // taken after the WAL lock, never before) drains the commit pipeline —
        // every in-flight group holds a shared gate membership from its WAL
        // append until its publication, and on the grouped pipeline memtable
        // inserts run *outside* the WAL lock, so the lock alone no longer
        // guarantees a batch-atomic capture. With both held, no write batch can
        // be half-applied while the active memtable is materialised, and the
        // sealed list captured alongside is consistent with it. (Sealed
        // memtables are immutable, so their contents can be materialised after
        // the locks are released, and they only ever hold whole batches —
        // rotation drains the same gate.) The merge
        // orders identical user keys by sequence number, newest first, so the
        // dedup stage keeps the newest captured version no matter which source
        // supplied it; memtable entries are deliberately *not* filtered by a
        // sequence-number snapshot, because the memtable keeps one slot per key —
        // suppressing a slot whose version is "too new" would hide the key
        // entirely, not reveal an older version.
        let (mem_entries, imm) = {
            let _wal = db.wal.lock();
            let _gate = db.commit_gate.write();
            let mem_entries = db.mem.read().snapshot_as_entries();
            let imm: Vec<Arc<crate::db::ImmutableMemtable>> = db.imm.read().clone();
            (mem_entries, imm)
        };

        sources.push(Box::new(mem_entries.into_iter().map(Ok)));
        for sealed in imm.iter().rev() {
            let entries = sealed.memtable.snapshot_as_entries();
            sources.push(Box::new(entries.into_iter().map(Ok)));
        }
        // Pinned after the memory capture: a flush completing in between installs
        // its table before removing its memtable from the sealed list, so the pin
        // can only add (deduplicated) coverage, never lose entries.
        let pin = db.pin_current_version();
        for level in 0..pin.num_levels() {
            for file in &pin.levels[level] {
                let table = db.table_cache.get_or_open(file)?;
                // `entries_arc` keeps the handle alive inside the iterator, which
                // lets block-backed tables stream blocks through the shared cache
                // (with readahead) instead of materialising the whole table.
                sources.push(table.entries_arc()?);
            }
        }
        let merged = MergingIterator::new(sources)?;
        Ok(DbIterator {
            inner: DedupIterator::new(Box::new(merged), false),
            start,
            end,
            _pins: vec![pin],
            stats: Arc::clone(&db.stats),
            created,
        })
    }

    /// Creates an iterator over a snapshot's captured components — one
    /// [`SnapshotShard`] per engine shard — each source bounded at its own
    /// shard's snapshot sequence number.
    ///
    /// No lock is taken here, in contrast to [`with_bounds`](Self::with_bounds):
    /// each shard's snapshot seqno sits on a commit-group boundary, so bounding
    /// that shard's sources at it yields a batch-atomic view by construction —
    /// a concurrent group's writes all carry seqnos above the bound, and any
    /// version the snapshot can see that such a write shadows is preserved on
    /// the memtable's prior list (the snapshot registered itself before the
    /// bound was chosen). Table sources are bounded *before* the dedup stage,
    /// so the survivor per user key is the newest version visible at the
    /// snapshot. The versions are the ones the snapshot pinned — never the
    /// current ones, whose compactions may already have deduped away versions
    /// the snapshot still needs. Hash routing makes the shards' key sets
    /// disjoint, so the k-way merge needs no cross-shard conflict resolution.
    ///
    /// The iterator takes its own version pins, so the snapshot handle may be
    /// dropped as soon as this returns (the ephemeral snapshot behind a live
    /// multi-shard [`Db::scan_range`](crate::Db::scan_range) does exactly that).
    pub(crate) fn with_snapshot_parts(
        parts: &[SnapshotShard],
        start: Option<Vec<u8>>,
        end: Option<Vec<u8>>,
    ) -> Result<DbIterator> {
        let created = Instant::now();
        let mut sources: Vec<EntryIter> = Vec::new();
        let mut pins = Vec::with_capacity(parts.len());
        for part in parts {
            let db: &Arc<DbInner> = &part.db;
            sources.push(Box::new(part.mem.snapshot_as_entries_at(part.seqno).into_iter().map(Ok)));
            for sealed in part.imm.iter().rev() {
                let entries = sealed.memtable.snapshot_as_entries_at(part.seqno);
                sources.push(Box::new(entries.into_iter().map(Ok)));
            }
            let pin = db.pin_version(Arc::clone(part.pin.version()));
            for level in 0..pin.num_levels() {
                for file in &pin.levels[level] {
                    let table = db.table_cache.get_or_open(file)?;
                    sources.push(bounded_to_seqno(table.entries_arc()?, part.seqno));
                }
            }
            pins.push(pin);
        }
        let merged = MergingIterator::new(sources)?;
        Ok(DbIterator {
            inner: DedupIterator::new(Box::new(merged), false),
            start,
            end,
            _pins: pins,
            stats: Arc::clone(&parts[0].db.stats),
            created,
        })
    }
}

impl Iterator for DbIterator {
    type Item = Result<(Vec<u8>, Vec<u8>)>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let entry: Entry = match self.inner.next()? {
                Ok(entry) => entry,
                Err(e) => return Some(Err(e)),
            };
            if let Some(start) = &self.start {
                if entry.key.user_key.as_slice() < start.as_slice() {
                    continue;
                }
            }
            if let Some(end) = &self.end {
                if entry.key.user_key.as_slice() >= end.as_slice() {
                    // Sources are sorted, so nothing after this point can qualify.
                    return None;
                }
            }
            match entry.key.kind {
                ValueKind::Put => return Some(Ok((entry.key.user_key, entry.value))),
                ValueKind::Delete => continue,
            }
        }
    }
}
