//! The replication-lag scenario: a primary under sustained multi-writer load
//! shipping its commit log to a read replica.
//!
//! The harness mirrors production read-replica deployments: the primary is
//! checkpointed (after arming WAL retention), a [`Replica`] bootstraps from
//! the checkpoint, and while writer threads keep committing, a catch-up loop
//! ships and applies records round after round, sampling the replica's lag
//! (in records) just before each round. Once the writers stop, the replica
//! drains to lag zero and the run **verifies convergence**: the replica's
//! full scan must equal the primary's snapshot at the same watermark —
//! a divergence fails the run, which is what the CI smoke step relies on.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use triad_common::{Error, Result};
use triad_core::{Db, Replica, TriadConfig};

use crate::report::{print_table, Table};
use crate::runner::Scale;

/// Everything measured from one replica-lag run.
#[derive(Debug, Clone)]
pub struct ReplicaLagOutcome {
    /// Stable name for trajectory files and CI greps.
    pub name: &'static str,
    /// Concurrent writer threads on the primary.
    pub writer_threads: usize,
    /// Writes committed on the primary during the churn phase.
    pub total_writes: u64,
    /// Catch-up rounds executed (including the drain after writers stop).
    pub rounds: u64,
    /// Records shipped and applied on the replica across all rounds.
    pub records_applied: u64,
    /// Largest lag (records) sampled just before a catch-up round.
    pub max_lag: u64,
    /// Mean of the sampled lags.
    pub mean_lag: f64,
    /// Lag after the final drain (must be 0 on a quiesced primary).
    pub final_lag: u64,
    /// Wall-clock time of the churn + drain phase.
    pub elapsed: Duration,
    /// Whether the converged replica byte-agreed with the primary's snapshot
    /// at the same watermark (a `false` never escapes [`run`]; it errors).
    pub converged: bool,
}

fn unique_dir(label: &str) -> std::path::PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "triad-replica-lag-{label}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Runs the scenario at `scale` and prints its table. Errors if the replica
/// fails to converge to the primary's contents.
pub fn run(scale: Scale) -> Result<ReplicaLagOutcome> {
    let writer_threads = 4usize;
    let total_writes = scale.ops(4_000, 100_000);
    let keys = scale.keys(2_000, 50_000);
    let options = super::bench_options(scale, TriadConfig::all_enabled());

    let primary_dir = unique_dir("primary");
    let replica_dir = unique_dir("follower");
    let _ = std::fs::remove_dir_all(&primary_dir);
    let _ = std::fs::remove_dir_all(&replica_dir);

    let db = Arc::new(Db::open(&primary_dir, options.clone())?);
    for key in 0..keys {
        db.put(key_bytes(key), value_bytes(key, 0))?;
    }
    db.flush()?;

    // Arm retention before the seeding checkpoint: the primary keeps every
    // log the follower could still need, releasing them as catch-up advances.
    db.hold_wal_for_replication();
    db.checkpoint(&replica_dir)?;
    let replica = Replica::bootstrap(&replica_dir, options)?;

    let started = Instant::now();
    let committed = Arc::new(AtomicU64::new(0));
    let writers: Vec<_> = (0..writer_threads as u64)
        .map(|t| {
            let db = Arc::clone(&db);
            let committed = Arc::clone(&committed);
            let share = total_writes / writer_threads as u64;
            std::thread::spawn(move || -> Result<()> {
                let mut state = 0x9e37_79b9_u64 ^ (t << 32);
                for i in 0..share {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    let key = state % keys;
                    db.put(key_bytes(key), value_bytes(key, i + 1))?;
                    committed.fetch_add(1, Ordering::Relaxed);
                }
                Ok(())
            })
        })
        .collect();

    // The catch-up loop: sample lag, ship, apply, repeat — then drain.
    let mut rounds = 0u64;
    let mut records_applied = 0u64;
    let mut max_lag = 0u64;
    let mut lag_sum = 0u64;
    let mut samples = 0u64;
    let mut writers_done = false;
    loop {
        let lag = replica.lag(&db);
        max_lag = max_lag.max(lag);
        lag_sum += lag;
        samples += 1;
        records_applied += replica.catch_up(&db)?;
        rounds += 1;
        if writers_done && replica.lag(&db) == 0 {
            break;
        }
        if !writers_done && writers.iter().all(|w| w.is_finished()) {
            writers_done = true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    for writer in writers {
        writer.join().expect("writer thread panicked")?;
    }
    // Writers may have raced the last pre-`writers_done` round; drain fully.
    while replica.lag(&db) > 0 {
        records_applied += replica.catch_up(&db)?;
        rounds += 1;
    }
    let elapsed = started.elapsed();

    // Convergence proof: the replica's view against the primary's snapshot
    // at the same watermark, key for key.
    let primary_view = db.snapshot();
    let ours: Vec<(Vec<u8>, Vec<u8>)> = replica.scan()?.collect::<Result<Vec<_>>>()?;
    let theirs: Vec<(Vec<u8>, Vec<u8>)> = primary_view.scan()?.collect::<Result<Vec<_>>>()?;
    if ours != theirs {
        return Err(Error::corruption(format!(
            "replica diverged from the primary after draining: {} vs {} entries",
            ours.len(),
            theirs.len()
        )));
    }

    db.release_wal_hold();
    replica.close()?;
    db.close()?;
    let _ = std::fs::remove_dir_all(&primary_dir);
    let _ = std::fs::remove_dir_all(&replica_dir);

    let outcome = ReplicaLagOutcome {
        name: "replica_lag",
        writer_threads,
        total_writes: committed.load(Ordering::Relaxed),
        rounds,
        records_applied,
        max_lag,
        mean_lag: lag_sum as f64 / samples.max(1) as f64,
        final_lag: 0,
        elapsed,
        converged: true,
    };

    let mut table = Table::new(&[
        "scenario",
        "writers",
        "writes",
        "rounds",
        "applied",
        "max lag",
        "mean lag",
        "elapsed s",
        "converged",
    ]);
    table.add_row(vec![
        outcome.name.to_string(),
        outcome.writer_threads.to_string(),
        outcome.total_writes.to_string(),
        outcome.rounds.to_string(),
        outcome.records_applied.to_string(),
        outcome.max_lag.to_string(),
        format!("{:.1}", outcome.mean_lag),
        format!("{:.2}", outcome.elapsed.as_secs_f64()),
        outcome.converged.to_string(),
    ]);
    print_table(
        "Replication: WAL shipping lag under sustained writer churn",
        &table,
        "lag is sampled (in records) just before each catch-up round; the run fails \
         unless the drained replica byte-agrees with the primary's snapshot",
    );
    Ok(outcome)
}

/// The JSON object the scenario contributes to `BENCH_scenarios.json`.
pub fn json(outcome: &ReplicaLagOutcome) -> String {
    format!(
        "{{\"name\": \"{}\", \"writer_threads\": {}, \"total_writes\": {}, \
         \"rounds\": {}, \"records_applied\": {}, \"max_lag\": {}, \
         \"mean_lag\": {:.1}, \"final_lag\": {}, \"elapsed_sec\": {:.3}, \
         \"converged\": {}}}",
        outcome.name,
        outcome.writer_threads,
        outcome.total_writes,
        outcome.rounds,
        outcome.records_applied,
        outcome.max_lag,
        outcome.mean_lag,
        outcome.final_lag,
        outcome.elapsed.as_secs_f64(),
        outcome.converged,
    )
}

fn key_bytes(key: u64) -> Vec<u8> {
    format!("user{key:012}").into_bytes()
}

fn value_bytes(key: u64, version: u64) -> Vec<u8> {
    format!("v-{key}-{version}-{}", "x".repeat(96)).into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_converges_and_reports_shipping() {
        let outcome = run(Scale::Quick).unwrap();
        assert!(outcome.converged);
        assert_eq!(outcome.final_lag, 0);
        assert!(outcome.records_applied > 0, "catch-up must have shipped records");
        assert!(outcome.rounds >= 1);
        assert!(outcome.total_writes > 0);
        let json = json(&outcome);
        for field in ["\"name\": \"replica_lag\"", "\"max_lag\"", "\"converged\": true"] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
    }
}
