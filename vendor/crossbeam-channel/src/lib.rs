//! Offline stand-in for the
//! [`crossbeam-channel`](https://crates.io/crates/crossbeam-channel) crate.
//!
//! TRIAD's background scheduler only needs an unbounded MPSC channel with
//! crossbeam's error types, so this crate wraps [`std::sync::mpsc`] (itself
//! crossbeam-based since Rust 1.67) behind crossbeam-compatible names:
//! [`unbounded`], [`Sender`], [`Receiver`], [`SendError`], [`RecvError`] and
//! [`TryRecvError`].

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::mpsc;
use std::time::Duration;

/// Error returned by [`Sender::send`] when all receivers have disconnected.
///
/// Carries the unsent message back to the caller, like crossbeam's type.
#[derive(PartialEq, Eq, Clone, Copy)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders have disconnected.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum TryRecvError {
    /// The channel is currently empty but senders still exist.
    Empty,
    /// All senders have disconnected and the channel is drained.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for TryRecvError {}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with the channel still empty.
    Timeout,
    /// All senders have disconnected and the channel is drained.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
            RecvTimeoutError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

/// The sending half of an unbounded channel. Cheap to clone; usable from any
/// number of threads.
pub struct Sender<T> {
    inner: mpsc::Sender<T>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender { inner: self.inner.clone() }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> Sender<T> {
    /// Enqueues `value`, failing only when every [`Receiver`] is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        self.inner.send(value).map_err(|mpsc::SendError(v)| SendError(v))
    }
}

/// The receiving half of an unbounded channel.
pub struct Receiver<T> {
    inner: mpsc::Receiver<T>,
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or every [`Sender`] disconnects.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.inner.recv().map_err(|_| RecvError)
    }

    /// Returns a pending message without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.inner.try_recv().map_err(|e| match e {
            mpsc::TryRecvError::Empty => TryRecvError::Empty,
            mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
        })
    }

    /// Blocks for at most `timeout` waiting for a message.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        self.inner.recv_timeout(timeout).map_err(|e| match e {
            mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
            mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
        })
    }
}

/// Creates an unbounded channel, returning its sending and receiving halves.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (Sender { inner: tx }, Receiver { inner: rx })
}

#[cfg(test)]
mod tests {
    use super::{unbounded, RecvError, TryRecvError};

    #[test]
    fn send_recv_in_order() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn recv_fails_after_all_senders_drop() {
        let (tx, rx) = unbounded::<u8>();
        let tx2 = tx.clone();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_after_receiver_drops() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(7).is_err());
    }
}
