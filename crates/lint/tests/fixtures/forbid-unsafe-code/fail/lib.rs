// lint-fixture: crates/example/src/lib.rs
// No #![forbid(unsafe_code)]: the workspace-level deny can be overridden by
// any module-level allow, forbid cannot.
#![warn(missing_docs)]

pub fn entry() {}
