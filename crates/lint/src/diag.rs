//! Diagnostics and their human/JSON renderings.

use std::fmt;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Id of the rule that fired (stable; listed by `--list-rules`).
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line of the violation (0 for whole-file diagnostics).
    pub line: u32,
    /// What went wrong and why it matters.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.message)
    }
}

/// Renders diagnostics as a single JSON document (no dependencies, so the
/// encoder is hand-rolled; every dynamic string is escaped).
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("{\n  \"violations\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            escape(d.rule),
            escape(&d.path),
            d.line,
            escape(&d.message)
        ));
    }
    if !diags.is_empty() {
        out.push('\n');
        out.push_str("  ");
    }
    out.push_str(&format!("],\n  \"count\": {}\n}}\n", diags.len()));
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_counts() {
        let diags = vec![Diagnostic {
            rule: "r",
            path: "a\"b.rs".to_string(),
            line: 3,
            message: "uses \\ and \"quotes\"".to_string(),
        }];
        let json = to_json(&diags);
        assert!(json.contains("\"count\": 1"));
        assert!(json.contains("a\\\"b.rs"));
        assert!(json.contains("uses \\\\ and \\\"quotes\\\""));
    }

    #[test]
    fn empty_report_is_valid() {
        assert_eq!(to_json(&[]), "{\n  \"violations\": [],\n  \"count\": 0\n}\n");
    }
}
