//! The logical payload stored in each commit-log record.

use triad_common::types::{SeqNo, ValueKind};
use triad_common::varint;
use triad_common::{Error, Result};

/// A single logical update recorded in the commit log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// The sequence number assigned to the update.
    pub seqno: SeqNo,
    /// Whether the update is a put or a delete.
    pub kind: ValueKind,
    /// The user key.
    pub key: Vec<u8>,
    /// The value; empty for deletes.
    pub value: Vec<u8>,
}

impl LogRecord {
    /// Creates a put record.
    pub fn put(seqno: SeqNo, key: impl Into<Vec<u8>>, value: impl Into<Vec<u8>>) -> Self {
        LogRecord { seqno, kind: ValueKind::Put, key: key.into(), value: value.into() }
    }

    /// Creates a delete record.
    pub fn delete(seqno: SeqNo, key: impl Into<Vec<u8>>) -> Self {
        LogRecord { seqno, kind: ValueKind::Delete, key: key.into(), value: Vec::new() }
    }

    /// Serializes the record payload (excluding the CRC/length framing).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        self.encode_into(&mut out);
        out
    }

    /// Serializes the record payload into `out`, appending to its current contents.
    ///
    /// The group-commit path encodes many records back to back into one reusable
    /// buffer; this is the allocation-free building block it uses.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        encode_record_parts(out, self.seqno, self.kind, &self.key, &self.value);
    }

    /// Upper bound on the encoded payload length.
    pub fn encoded_len(&self) -> usize {
        varint::encoded_len_u64(self.seqno)
            + 1
            + varint::encoded_len_u64(self.key.len() as u64)
            + self.key.len()
            + varint::encoded_len_u64(self.value.len() as u64)
            + self.value.len()
    }

    /// Parses a record payload produced by [`encode`](Self::encode).
    pub fn decode(payload: &[u8]) -> Result<LogRecord> {
        let (seqno, mut pos) = varint::decode_u64(payload)?;
        let kind_byte = *payload
            .get(pos)
            .ok_or_else(|| Error::corruption("log record truncated before kind byte"))?;
        let kind = ValueKind::from_u8(kind_byte)
            .ok_or_else(|| Error::corruption(format!("invalid log record kind {kind_byte}")))?;
        pos += 1;
        let (key, consumed) = varint::decode_length_prefixed(&payload[pos..])?;
        pos += consumed;
        let (value, consumed) = varint::decode_length_prefixed(&payload[pos..])?;
        pos += consumed;
        if pos != payload.len() {
            return Err(Error::corruption("log record has trailing bytes"));
        }
        Ok(LogRecord { seqno, kind, key: key.to_vec(), value: value.to_vec() })
    }

    /// Logical size of the update as seen by the application (key + value bytes).
    pub fn user_bytes(&self) -> u64 {
        (self.key.len() + self.value.len()) as u64
    }
}

/// Serializes a record payload from borrowed parts, appending to `out`.
///
/// Byte-identical to [`LogRecord::encode`] for the same fields; lets the
/// group-commit leader frame a writer's batch without first cloning every key
/// and value into an owned [`LogRecord`].
pub fn encode_record_parts(
    out: &mut Vec<u8>,
    seqno: SeqNo,
    kind: ValueKind,
    key: &[u8],
    value: &[u8],
) {
    varint::encode_u64(out, seqno);
    out.push(kind.as_u8());
    varint::encode_length_prefixed(out, key);
    varint::encode_length_prefixed(out, value);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_round_trip() {
        let record = LogRecord::put(42, b"key".to_vec(), b"value".to_vec());
        let payload = record.encode();
        assert!(payload.len() <= record.encoded_len());
        let decoded = LogRecord::decode(&payload).expect("decodes");
        assert_eq!(decoded, record);
        assert_eq!(decoded.user_bytes(), 8);
    }

    #[test]
    fn encode_into_appends_and_matches_encode() {
        let a = LogRecord::put(3, b"first".to_vec(), b"one".to_vec());
        let b = LogRecord::delete(4, b"second".to_vec());
        let mut buf = Vec::new();
        a.encode_into(&mut buf);
        let split = buf.len();
        b.encode_into(&mut buf);
        assert_eq!(&buf[..split], a.encode().as_slice());
        assert_eq!(&buf[split..], b.encode().as_slice());
    }

    #[test]
    fn delete_round_trip() {
        let record = LogRecord::delete(7, b"gone".to_vec());
        let decoded = LogRecord::decode(&record.encode()).expect("decodes");
        assert_eq!(decoded.kind, ValueKind::Delete);
        assert!(decoded.value.is_empty());
        assert_eq!(decoded, record);
    }

    #[test]
    fn empty_key_and_value_round_trip() {
        let record = LogRecord::put(0, Vec::new(), Vec::new());
        let decoded = LogRecord::decode(&record.encode()).expect("decodes");
        assert_eq!(decoded, record);
    }

    #[test]
    fn large_values_round_trip() {
        let record = LogRecord::put(u64::from(u32::MAX), vec![7u8; 300], vec![9u8; 70_000]);
        let decoded = LogRecord::decode(&record.encode()).expect("decodes");
        assert_eq!(decoded, record);
    }

    #[test]
    fn decode_rejects_truncation_at_every_point() {
        let record = LogRecord::put(123_456, b"some-key".to_vec(), b"some-value".to_vec());
        let payload = record.encode();
        for cut in 0..payload.len() {
            assert!(LogRecord::decode(&payload[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let mut payload = LogRecord::put(1, b"k".to_vec(), b"v".to_vec()).encode();
        payload.push(0xff);
        assert!(LogRecord::decode(&payload).is_err());
    }

    #[test]
    fn decode_rejects_bad_kind() {
        let record = LogRecord::put(1, b"k".to_vec(), b"v".to_vec());
        let mut payload = record.encode();
        // The kind byte follows the 1-byte varint seqno.
        payload[1] = 9;
        assert!(LogRecord::decode(&payload).is_err());
    }
}
