//! The closed-loop experiment runner.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use triad_core::{Db, Options};
use triad_workload::{Operation, WorkloadGenerator, WorkloadSpec};

/// How large an experiment to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds per data point; suitable for CI and quick sanity checks.
    Quick,
    /// Larger datasets and op counts; minutes per figure.
    Full,
}

impl Scale {
    /// Parses the scale from command-line arguments (`--full` selects [`Scale::Full`]).
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--full") {
            Scale::Full
        } else {
            Scale::Quick
        }
    }

    /// Scales an operation count.
    pub fn ops(&self, quick: u64, full: u64) -> u64 {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }

    /// Scales a key count.
    pub fn keys(&self, quick: u64, full: u64) -> u64 {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// One experiment: a database configuration driven by a workload.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Label printed in result tables (e.g. `"TRIAD"`, `"RocksDB"`).
    pub label: String,
    /// Engine configuration.
    pub options: Options,
    /// Workload specification.
    pub workload: WorkloadSpec,
    /// Number of client threads.
    pub threads: usize,
    /// Operations issued per thread.
    pub ops_per_thread: u64,
    /// Fraction of the key space inserted before the timed run (the paper
    /// pre-populates roughly half the key range).
    pub prepopulate_fraction: f64,
    /// Wait for pending compactions before capturing the final statistics, so write
    /// amplification includes queued background work.
    pub drain_background: bool,
}

impl ExperimentConfig {
    /// Creates a config with the defaults used by most figures.
    pub fn new(label: impl Into<String>, options: Options, workload: WorkloadSpec) -> Self {
        ExperimentConfig {
            label: label.into(),
            options,
            workload,
            threads: 8,
            ops_per_thread: 50_000,
            prepopulate_fraction: 0.5,
            drain_background: true,
        }
    }

    /// Sets the thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the per-thread operation count.
    pub fn with_ops_per_thread(mut self, ops: u64) -> Self {
        self.ops_per_thread = ops;
        self
    }
}

/// Metrics captured from one experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// The configuration label.
    pub label: String,
    /// Total operations executed across all threads.
    pub total_ops: u64,
    /// Wall-clock time of the timed phase.
    pub elapsed: Duration,
    /// Throughput in thousands of operations per second.
    pub kops: f64,
    /// Write amplification (paper definition: flushed + compacted over flushed).
    pub write_amplification: f64,
    /// Read amplification (table probes per read).
    pub read_amplification: f64,
    /// Bytes written by flushes during the run.
    pub flushed_bytes: u64,
    /// Bytes written by compactions during the run.
    pub compacted_bytes: u64,
    /// Bytes appended to the commit log during the run.
    pub wal_bytes: u64,
    /// Number of flushes.
    pub flushes: u64,
    /// Number of compactions.
    pub compactions: u64,
    /// Number of compactions TRIAD-DISK deferred.
    pub compactions_deferred: u64,
    /// Share of wall-clock time spent in flush + compaction (may exceed 1.0 with
    /// several background threads).
    pub background_time_fraction: f64,
    /// Files per level after the run.
    pub files_per_level: Vec<usize>,
    /// Commit groups formed by the group-commit write pipeline.
    pub write_groups: u64,
    /// Write batches carried by those groups (= acknowledged grouped writes).
    pub write_group_batches: u64,
    /// Largest commit group observed, in batches.
    pub write_group_max_size: u64,
    /// WAL fsyncs during the run.
    pub wal_syncs: u64,
    /// Fsyncs avoided because a group fsync covered additional batches.
    pub wal_syncs_amortized: u64,
    /// Durable groups retired by a neighbour's fsync (pipelined overlap).
    pub wal_syncs_overlapped: u64,
    /// Deepest commit pipeline observed (groups in flight at once).
    pub wal_pipeline_max_depth: u64,
    /// Sampled microseconds spent in the append stage (1-in-16 groups timed).
    pub wal_append_us: u64,
    /// Sampled microseconds spent waiting on group durability (same sampling).
    pub wal_sync_wait_us: u64,
}

impl ExperimentResult {
    /// Total background gigabytes written (flush + compaction).
    pub fn background_gb(&self) -> f64 {
        (self.flushed_bytes + self.compacted_bytes) as f64 / 1e9
    }

    /// Compacted gigabytes (the metric of Figure 9D, left).
    pub fn compacted_gb(&self) -> f64 {
        self.compacted_bytes as f64 / 1e9
    }
}

fn unique_dir(label: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let sanitized: String =
        label.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '-' }).collect();
    std::env::temp_dir().join(format!(
        "triad-bench-{sanitized}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Runs one experiment and returns its metrics.
///
/// The database lives in a fresh temporary directory that is removed afterwards.
pub fn run_experiment(config: &ExperimentConfig) -> triad_common::Result<ExperimentResult> {
    let dir = unique_dir(&config.label);
    let _ = std::fs::remove_dir_all(&dir);
    let db = Arc::new(Db::open(&dir, config.options.clone())?);

    // Pre-populate so that reads can always be served, as in the paper's setup.
    let seed_generator = WorkloadGenerator::new(config.workload.clone(), 0xfeed);
    for (key, value) in seed_generator.prepopulation(config.prepopulate_fraction) {
        db.put(&key, &value)?;
    }
    db.flush()?;
    db.wait_for_compactions()?;

    let before = db.stats();
    let started = Instant::now();
    let mut handles = Vec::new();
    for thread_id in 0..config.threads {
        let db = Arc::clone(&db);
        let spec = config.workload.clone();
        let ops = config.ops_per_thread;
        handles.push(std::thread::spawn(move || -> triad_common::Result<u64> {
            let mut generator = WorkloadGenerator::new(spec, 1000 + thread_id as u64);
            let mut executed = 0u64;
            for _ in 0..ops {
                match generator.next_op() {
                    Operation::Get { key } => {
                        db.get(&key)?;
                    }
                    Operation::Put { key, value } => {
                        db.put(&key, &value)?;
                    }
                    Operation::Delete { key } => {
                        db.delete(&key)?;
                    }
                }
                executed += 1;
            }
            Ok(executed)
        }));
    }
    let mut total_ops = 0u64;
    for handle in handles {
        total_ops += handle.join().expect("worker thread panicked")?;
    }
    let elapsed = started.elapsed();

    if config.drain_background {
        db.flush()?;
        db.wait_for_compactions()?;
    }
    let after = db.stats();
    let delta = after.delta_since(&before);
    let files_per_level = db.files_per_level();
    // Facade stats are merged across shards; the per-shard breakdown is
    // opt-in because it is noisy in multi-experiment sweeps.
    if db.shard_count() > 1 && std::env::var_os("TRIAD_BENCH_PER_SHARD").is_some() {
        for (index, shard) in db.shard_stats().iter().enumerate() {
            eprintln!(
                "[{}] shard {index}: user_writes={} user_reads={} wal_bytes={} flushed={} \
                 compacted={} wal_syncs={}",
                config.label,
                shard.user_writes,
                shard.user_reads,
                shard.wal_bytes_written,
                shard.bytes_flushed,
                shard.bytes_compacted_written,
                shard.wal_syncs
            );
        }
    }
    db.close()?;
    let _ = std::fs::remove_dir_all(&dir);

    let kops = total_ops as f64 / elapsed.as_secs_f64() / 1_000.0;
    Ok(ExperimentResult {
        label: config.label.clone(),
        total_ops,
        elapsed,
        kops,
        write_amplification: delta.write_amplification(),
        read_amplification: delta.read_amplification(),
        flushed_bytes: delta.bytes_flushed,
        compacted_bytes: delta.bytes_compacted_written,
        wal_bytes: delta.wal_bytes_written,
        flushes: delta.flush_count,
        compactions: delta.compaction_count,
        compactions_deferred: delta.compactions_deferred,
        background_time_fraction: delta.background_time_fraction(elapsed),
        files_per_level,
        write_groups: delta.write_groups,
        write_group_batches: delta.write_group_batches,
        write_group_max_size: delta.write_group_max_size,
        wal_syncs: delta.wal_syncs,
        wal_syncs_amortized: delta.wal_syncs_amortized,
        wal_syncs_overlapped: delta.wal_syncs_overlapped,
        wal_pipeline_max_depth: delta.wal_pipeline_max_depth,
        wal_append_us: delta.wal_append_us,
        wal_sync_wait_us: delta.wal_sync_wait_us,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use triad_workload::{KeyDistribution, OperationMix};

    fn tiny_config(label: &str, options: Options) -> ExperimentConfig {
        let workload = WorkloadSpec::synthetic(
            KeyDistribution::ws1_high_skew(2_000),
            OperationMix::write_intensive(),
        );
        ExperimentConfig::new(label, options, workload).with_threads(2).with_ops_per_thread(2_000)
    }

    #[test]
    fn runner_produces_sane_metrics() {
        let mut options = Options::small_for_tests();
        options.l0_compaction_trigger = 2;
        let result = run_experiment(&tiny_config("runner-sanity", options)).unwrap();
        assert_eq!(result.total_ops, 4_000);
        assert!(result.kops > 0.0);
        assert!(result.write_amplification >= 1.0);
        assert!(result.elapsed > Duration::ZERO);
        assert!(!result.files_per_level.is_empty());
        assert!(result.background_gb() >= 0.0);
    }

    #[test]
    fn triad_and_baseline_runs_both_complete() {
        let mut baseline = Options::small_for_tests();
        baseline.l0_compaction_trigger = 2;
        let mut triad = Options::small_for_tests();
        triad.l0_compaction_trigger = 2;
        triad.triad.enable_all();
        let baseline_result = run_experiment(&tiny_config("runner-baseline", baseline)).unwrap();
        let triad_result = run_experiment(&tiny_config("runner-triad", triad)).unwrap();
        assert!(baseline_result.kops > 0.0);
        assert!(triad_result.kops > 0.0);
        // Under heavy skew TRIAD must not write more background bytes than the baseline.
        assert!(
            triad_result.flushed_bytes + triad_result.compacted_bytes
                <= baseline_result.flushed_bytes + baseline_result.compacted_bytes
        );
    }

    #[test]
    fn scale_helpers() {
        assert_eq!(Scale::Quick.ops(10, 100), 10);
        assert_eq!(Scale::Full.ops(10, 100), 100);
        assert_eq!(Scale::Quick.keys(1, 2), 1);
        assert_eq!(Scale::Full.keys(1, 2), 2);
    }
}
