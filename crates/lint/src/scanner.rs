//! A token-level Rust scanner: just enough lexing for invariant rules.
//!
//! The scanner does not parse Rust — it tokenizes it. Comments, strings
//! (including raw and byte strings), char literals and lifetimes are handled
//! precisely so rules never fire on commented-out or quoted code, but grammar
//! above the token level (expressions, items) is left to each rule's own
//! pattern matching. Three by-products of the scan feed the rules:
//!
//! * **comments**, with line numbers — region markers and waivers live here;
//! * a **test mask** covering every `#[cfg(test)] mod … { … }` body, so rules
//!   about production code skip unit tests embedded in `src/` files;
//! * **waivers** — `// lint:allow(rule-id) reason` suppresses a rule on that
//!   line and the next, `// lint:allow-file(rule-id) reason` for the whole
//!   file. A reason is required: a bare waiver is itself a violation.

use std::collections::{HashMap, HashSet};

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword.
    Ident,
    /// A single punctuation character (`::` is two `:` tokens).
    Punct,
    /// A string literal; `text` holds the contents without quotes.
    Str,
    /// A numeric literal (lexed loosely; rules never inspect numbers).
    Num,
    /// A lifetime such as `'a`.
    Lifetime,
    /// A char literal such as `'x'`.
    Char,
}

/// One lexeme with its source line (1-based).
#[derive(Debug, Clone)]
pub struct Token {
    /// The token's class.
    pub kind: TokenKind,
    /// The token text (contents only for string literals).
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

impl Token {
    /// True for an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// True for a punctuation token with exactly this text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == text
    }
}

/// A comment (line or block) with the line it starts on.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Full comment text, delimiters included.
    pub text: String,
}

/// A tokenized source file plus the scan by-products rules consume.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes (a *virtual* path in
    /// fixture tests — rules scope themselves by this value).
    pub path: String,
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
    test_mask: Vec<bool>,
    line_waivers: HashMap<String, HashSet<u32>>,
    file_waivers: HashSet<String>,
    /// Lines carrying a `lint:allow` marker with no reason text after the
    /// closing parenthesis.
    pub bare_waiver_lines: Vec<u32>,
}

impl SourceFile {
    /// Tokenizes `src`, computing the test mask and waiver tables.
    pub fn parse(path: &str, src: &str) -> SourceFile {
        let (tokens, comments) = tokenize(src);
        let test_mask = compute_test_mask(&tokens);
        let mut file = SourceFile {
            path: path.replace('\\', "/"),
            tokens,
            comments,
            test_mask,
            line_waivers: HashMap::new(),
            file_waivers: HashSet::new(),
            bare_waiver_lines: Vec::new(),
        };
        file.collect_waivers();
        file
    }

    /// Whether the token at `idx` sits inside a `#[cfg(test)] mod` body.
    pub fn is_test(&self, idx: usize) -> bool {
        self.test_mask.get(idx).copied().unwrap_or(false)
    }

    /// Whether `rule` is waived at `line` (line waiver on the same or the
    /// preceding line, or a file-level waiver).
    pub fn waived(&self, rule: &str, line: u32) -> bool {
        if self.file_waivers.contains(rule) {
            return true;
        }
        match self.line_waivers.get(rule) {
            Some(lines) => lines.contains(&line) || lines.contains(&line.saturating_sub(1)),
            None => false,
        }
    }

    fn collect_waivers(&mut self) {
        for comment in &self.comments {
            for (marker, file_scope) in [("lint:allow-file(", true), ("lint:allow(", false)] {
                let Some(start) = comment.text.find(marker) else { continue };
                let rest = &comment.text[start + marker.len()..];
                let Some(end) = rest.find(')') else { continue };
                let has_reason = !rest[end + 1..].trim_matches(['*', '/', ' ']).is_empty();
                if !has_reason {
                    self.bare_waiver_lines.push(comment.line);
                }
                for rule in rest[..end].split(',') {
                    let rule = rule.trim().to_string();
                    if rule.is_empty() {
                        continue;
                    }
                    if file_scope {
                        self.file_waivers.insert(rule);
                    } else {
                        self.line_waivers.entry(rule).or_default().insert(comment.line);
                    }
                }
                break; // `allow-file(` also contains `allow(`; match once.
            }
        }
    }
}

fn tokenize(src: &str) -> (Vec<Token>, Vec<Comment>) {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0;
    let mut line: u32 = 1;

    let count_newlines = |s: &[u8]| s.iter().filter(|&&b| b == b'\n').count() as u32;

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let end =
                    bytes[i..].iter().position(|&b| b == b'\n').map_or(bytes.len(), |p| i + p);
                comments.push(Comment { line, text: src[i..end].to_string() });
                i = end;
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                let start_line = line;
                let mut depth = 1;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if bytes[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                comments.push(Comment { line: start_line, text: src[start..i].to_string() });
            }
            b'r' | b'b' if is_raw_string_start(bytes, i) => {
                let (end, text) = scan_raw_string(src, i);
                tokens.push(Token { kind: TokenKind::Str, text, line });
                line += count_newlines(&bytes[i..end]);
                i = end;
            }
            b'b' if bytes.get(i + 1) == Some(&b'"') => {
                let (end, text) = scan_string(src, i + 1);
                tokens.push(Token { kind: TokenKind::Str, text, line });
                line += count_newlines(&bytes[i..end]);
                i = end;
            }
            b'b' if bytes.get(i + 1) == Some(&b'\'') => {
                let end = scan_char(bytes, i + 1);
                tokens.push(Token { kind: TokenKind::Char, text: src[i..end].to_string(), line });
                i = end;
            }
            b'"' => {
                let (end, text) = scan_string(src, i);
                tokens.push(Token { kind: TokenKind::Str, text, line });
                line += count_newlines(&bytes[i..end]);
                i = end;
            }
            b'\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`): a lifetime
                // is a quote, ident chars, and *no* closing quote.
                let mut j = i + 1;
                while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                    j += 1;
                }
                if j > i + 1 && bytes.get(j) != Some(&b'\'') {
                    tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        text: src[i..j].to_string(),
                        line,
                    });
                    i = j;
                } else {
                    let end = scan_char(bytes, i);
                    tokens.push(Token {
                        kind: TokenKind::Char,
                        text: src[i..end].to_string(),
                        line,
                    });
                    i = end;
                }
            }
            _ if b.is_ascii_alphabetic() || b == b'_' => {
                let mut j = i + 1;
                while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                    j += 1;
                }
                tokens.push(Token { kind: TokenKind::Ident, text: src[i..j].to_string(), line });
                i = j;
            }
            _ if b.is_ascii_digit() => {
                let mut j = i + 1;
                while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                    j += 1;
                }
                tokens.push(Token { kind: TokenKind::Num, text: src[i..j].to_string(), line });
                i = j;
            }
            _ => {
                tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: src[i..i + 1].to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    (tokens, comments)
}

fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    // `r"`, `r#…#"`, `br"`, `br#…#"`.
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if bytes.get(j) != Some(&b'r') {
        return false;
    }
    j += 1;
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    bytes.get(j) == Some(&b'"')
}

fn scan_raw_string(src: &str, start: usize) -> (usize, String) {
    let bytes = src.as_bytes();
    let mut j = start;
    if bytes[j] == b'b' {
        j += 1;
    }
    j += 1; // 'r'
    let mut hashes = 0;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    j += 1; // opening quote
    let content_start = j;
    let closer = format!("\"{}", "#".repeat(hashes));
    match src[j..].find(&closer) {
        Some(pos) => (j + pos + closer.len(), src[content_start..j + pos].to_string()),
        None => (src.len(), src[content_start..].to_string()),
    }
}

fn scan_string(src: &str, quote: usize) -> (usize, String) {
    let bytes = src.as_bytes();
    let mut j = quote + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'"' => return (j + 1, src[quote + 1..j].to_string()),
            _ => j += 1,
        }
    }
    (bytes.len(), src[quote + 1..].to_string())
}

fn scan_char(bytes: &[u8], quote: usize) -> usize {
    let mut j = quote + 1;
    if bytes.get(j) == Some(&b'\\') {
        j += 2;
    } else if j < bytes.len() {
        // Multi-byte UTF-8 scalar: skip continuation bytes.
        j += 1;
        while j < bytes.len() && bytes[j] & 0b1100_0000 == 0b1000_0000 {
            j += 1;
        }
    }
    if bytes.get(j) == Some(&b'\'') {
        j + 1
    } else {
        j
    }
}

/// Marks every token inside a `#[cfg(test)] mod name { … }` body.
fn compute_test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if is_cfg_test_attr(tokens, i) {
            // Skip past the attribute, then look for `mod <name> {` within the
            // next few tokens (other attributes may sit in between).
            let mut j = i + 7;
            let mut guard = 0;
            while j < tokens.len() && guard < 24 {
                if is_cfg_test_attr(tokens, j) {
                    j += 7;
                } else if tokens[j].is_ident("mod") {
                    // `mod name {` — mask to the matching close brace.
                    if let Some(open) = tokens[j..].iter().position(|t| t.is_punct("{")) {
                        let open = j + open;
                        let close = matching_brace(tokens, open);
                        for slot in mask.iter_mut().take(close + 1).skip(i) {
                            *slot = true;
                        }
                        i = close;
                    }
                    break;
                } else {
                    j += 1;
                    guard += 1;
                }
            }
        }
        i += 1;
    }
    mask
}

fn is_cfg_test_attr(tokens: &[Token], i: usize) -> bool {
    tokens.len() > i + 6
        && tokens[i].is_punct("#")
        && tokens[i + 1].is_punct("[")
        && tokens[i + 2].is_ident("cfg")
        && tokens[i + 3].is_punct("(")
        && tokens[i + 4].is_ident("test")
        && tokens[i + 5].is_punct(")")
        && tokens[i + 6].is_punct("]")
}

/// Index of the `}` matching the `{` at `open` (or the last token).
pub fn matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    tokens.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_do_not_produce_idents() {
        let f = SourceFile::parse(
            "x.rs",
            "// retry_stale_version\nlet s = \"retry_stale_version\"; /* seal( */",
        );
        assert!(!f.tokens.iter().any(|t| t.is_ident("retry_stale_version")));
        assert!(f.tokens.iter().any(|t| t.kind == TokenKind::Str));
        assert_eq!(f.comments.len(), 2);
    }

    #[test]
    fn raw_strings_and_lifetimes_lex_cleanly() {
        let f = SourceFile::parse(
            "x.rs",
            "fn f<'a>(x: &'a str) { let r = r#\"quote \" inside\"#; let c = 'x'; let n = '\\n'; }",
        );
        let strs: Vec<_> = f.tokens.iter().filter(|t| t.kind == TokenKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert_eq!(strs[0].text, "quote \" inside");
        assert_eq!(f.tokens.iter().filter(|t| t.kind == TokenKind::Lifetime).count(), 2);
        assert_eq!(f.tokens.iter().filter(|t| t.kind == TokenKind::Char).count(), 2);
    }

    #[test]
    fn line_numbers_are_accurate() {
        let f = SourceFile::parse("x.rs", "a\nb\n\nc");
        let lines: Vec<u32> = f.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn test_mask_covers_cfg_test_mod() {
        let f = SourceFile::parse(
            "x.rs",
            "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn inner() {}\n}\nfn after() {}",
        );
        let real = f.tokens.iter().position(|t| t.is_ident("real")).unwrap();
        let inner = f.tokens.iter().position(|t| t.is_ident("inner")).unwrap();
        let after = f.tokens.iter().position(|t| t.is_ident("after")).unwrap();
        assert!(!f.is_test(real));
        assert!(f.is_test(inner));
        assert!(!f.is_test(after));
    }

    #[test]
    fn waivers_scope_to_line_and_file() {
        let f = SourceFile::parse(
            "x.rs",
            "// lint:allow(rule-a) the next line is fine\nfn a() {}\nfn b() {}\n\
             // lint:allow-file(rule-b) whole file is fine\n",
        );
        assert!(f.waived("rule-a", 1));
        assert!(f.waived("rule-a", 2));
        assert!(!f.waived("rule-a", 3));
        assert!(f.waived("rule-b", 3));
        assert!(f.bare_waiver_lines.is_empty());
    }

    #[test]
    fn bare_waivers_are_recorded() {
        let f = SourceFile::parse("x.rs", "// lint:allow(rule-a)\nfn a() {}");
        assert_eq!(f.bare_waiver_lines, vec![1]);
    }
}
