//! Criterion wrappers around scaled-down versions of the paper's figure workloads.
//!
//! These are intentionally tiny (they run on every `cargo bench`); the real figure
//! reproduction lives in the `fig*` binaries of this crate, which print full tables.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use triad_bench::experiments::{bench_options, synthetic_workload, SkewProfile};
use triad_bench::runner::{run_experiment, ExperimentConfig, Scale};
use triad_core::TriadConfig;
use triad_workload::OperationMix;

fn figure_point(c: &mut Criterion, name: &str, skew: SkewProfile, triad: TriadConfig) {
    c.bench_function(name, |b| {
        b.iter_batched(
            || {
                let workload =
                    synthetic_workload(Scale::Quick, skew, OperationMix::write_intensive())
                        .with_num_keys(4_000);
                ExperimentConfig::new(name, bench_options(Scale::Quick, triad.clone()), workload)
                    .with_threads(2)
                    .with_ops_per_thread(2_500)
            },
            |config| run_experiment(&config).expect("experiment run"),
            BatchSize::PerIteration,
        )
    });
}

fn bench_figures(c: &mut Criterion) {
    // One skewed and one uniform point for each system: the core comparison behind
    // Figures 9B/9C at a Criterion-friendly size.
    figure_point(c, "fig9/skew1-99/rocksdb", SkewProfile::High, TriadConfig::baseline());
    figure_point(c, "fig9/skew1-99/triad", SkewProfile::High, TriadConfig::all_enabled());
    figure_point(c, "fig9/uniform/rocksdb", SkewProfile::None, TriadConfig::baseline());
    figure_point(c, "fig9/uniform/triad", SkewProfile::None, TriadConfig::all_enabled());
    // Figure 10 breakdown points under skew.
    figure_point(c, "fig10/skew1-99/triad-mem", SkewProfile::High, TriadConfig::mem_only());
    figure_point(c, "fig10/uniform/triad-disk", SkewProfile::None, TriadConfig::disk_only());
    figure_point(c, "fig10/uniform/triad-log", SkewProfile::None, TriadConfig::log_only());
}

/// Shared Criterion configuration: small samples so `cargo bench` stays quick.
fn configure() -> Criterion {
    Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3))
}

criterion_group! {
    name = figures;
    config = configure();
    targets = bench_figures
}
criterion_main!(figures);
