//! Sweeps writer threads 1→16 under NoSync and SyncEveryWrite across the three
//! write-path generations — `legacy` (serialized), `grouped` (PR 3 commit
//! groups, fsync under the WAL lock) and `pipelined` (append decoupled from the
//! sync stage) — and emits the perf-trajectory file `BENCH_write_scaling.json`
//! with all three sets of numbers plus the acceptance gate.
//!
//! Flags: `--full` for paper-scale op counts (default is a quick CI-scale run;
//! `--quick` is accepted and is the default), `--out PATH` to redirect the JSON.

use std::path::PathBuf;

use triad_bench::experiments::write_scaling;
use triad_bench::runner::Scale;

fn out_path() -> PathBuf {
    let args: Vec<String> = std::env::args().collect();
    for pair in args.windows(2) {
        if pair[0] == "--out" {
            return PathBuf::from(&pair[1]);
        }
    }
    PathBuf::from("BENCH_write_scaling.json")
}

fn main() {
    let scale = Scale::from_args();
    let (_table, points, acceptance, shard_scaling) =
        write_scaling::run(scale).expect("write-scaling sweep failed");
    let path = out_path();
    write_scaling::write_json(&path, scale, &points, &acceptance, &shard_scaling)
        .expect("writing BENCH_write_scaling.json failed");
    println!("\nwrote {}", path.display());
    if !acceptance.holds() {
        // The gate is recorded in the JSON either way; a quick-scale run on a
        // noisy machine should not hard-fail CI smoke.
        eprintln!(
            "warning: acceptance gate not met in this run ({:.2}x vs legacy, {:.2}x vs grouped, \
             {:.3} fsyncs/batch, {} overlapped)",
            acceptance.speedup,
            acceptance.pipelined_vs_grouped,
            acceptance.fsyncs_per_batch,
            acceptance.overlapped_syncs
        );
    }
    if !shard_scaling.holds() {
        eprintln!(
            "warning: shard-scaling gate not met ({} shards at {} writers: {:.2}x vs 1 shard)",
            shard_scaling.shards, shard_scaling.threads, shard_scaling.speedup
        );
    }
}
