//! Cross-crate integration tests: the workload generators driving the full engine
//! through the public `triad` façade.

use std::collections::BTreeMap;

use triad::workload::{KeyDistribution, Operation, OperationMix, WorkloadGenerator, WorkloadSpec};
use triad::{Db, Options, TriadConfig};

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("triad-fullstack-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn small_options(triad: TriadConfig) -> Options {
    let mut options = Options {
        memtable_size: 64 * 1024,
        max_log_size: 128 * 1024,
        l1_target_size: 256 * 1024,
        target_file_size: 64 * 1024,
        block_size: 1024,
        l0_compaction_trigger: 2,
        triad,
        ..Options::default()
    };
    options.triad.flush_skip_threshold_bytes = options.memtable_size / 2;
    options
}

/// Drives `db` with a generated workload, mirroring every write into a model map.
fn drive(db: &Db, spec: WorkloadSpec, ops: u64, seed: u64, model: &mut BTreeMap<Vec<u8>, Vec<u8>>) {
    let mut generator = WorkloadGenerator::new(spec, seed);
    for _ in 0..ops {
        match generator.next_op() {
            Operation::Put { key, value } => {
                db.put(&key, &value).unwrap();
                model.insert(key, value);
            }
            Operation::Delete { key } => {
                db.delete(&key).unwrap();
                model.remove(&key);
            }
            Operation::Get { key } => {
                let got = db.get(&key).unwrap();
                assert_eq!(
                    got.as_ref(),
                    model.get(&key),
                    "read diverged from model during the run"
                );
            }
        }
    }
}

fn check_model(db: &Db, model: &BTreeMap<Vec<u8>, Vec<u8>>) {
    // Every model key reads back exactly; the scan matches the model verbatim.
    for (key, value) in model {
        assert_eq!(
            db.get(key).unwrap().as_ref(),
            Some(value),
            "key {:?}",
            String::from_utf8_lossy(key)
        );
    }
    let scanned: Vec<(Vec<u8>, Vec<u8>)> = db.scan().unwrap().map(|r| r.unwrap()).collect();
    assert_eq!(scanned.len(), model.len());
    for ((got_key, got_value), (want_key, want_value)) in scanned.iter().zip(model.iter()) {
        assert_eq!(got_key, want_key);
        assert_eq!(got_value, want_value);
    }
}

#[test]
fn skewed_workload_through_the_facade_matches_a_model() {
    let dir = temp_dir("facade-skew");
    let db = Db::open(&dir, small_options(TriadConfig::all_enabled())).unwrap();
    let spec = WorkloadSpec::synthetic(
        KeyDistribution::ws1_high_skew(2_000),
        OperationMix::with_deletes(),
    );
    let mut model = BTreeMap::new();
    drive(&db, spec, 20_000, 1, &mut model);
    db.flush().unwrap();
    db.wait_for_compactions().unwrap();
    check_model(&db, &model);
    db.close().unwrap();
}

#[test]
fn uniform_workload_with_baseline_matches_a_model() {
    let dir = temp_dir("facade-uniform");
    let db = Db::open(&dir, small_options(TriadConfig::baseline())).unwrap();
    let spec =
        WorkloadSpec::synthetic(KeyDistribution::ws3_uniform(3_000), OperationMix::balanced());
    let mut model = BTreeMap::new();
    drive(&db, spec, 15_000, 2, &mut model);
    check_model(&db, &model);
    db.close().unwrap();
}

#[test]
fn model_equivalence_survives_restart_for_every_configuration() {
    for (name, triad) in [
        ("baseline", TriadConfig::baseline()),
        ("mem", TriadConfig::mem_only()),
        ("disk", TriadConfig::disk_only()),
        ("log", TriadConfig::log_only()),
        ("all", TriadConfig::all_enabled()),
    ] {
        let dir = temp_dir(&format!("restart-{name}"));
        let options = small_options(triad);
        let mut model = BTreeMap::new();
        {
            let db = Db::open(&dir, options.clone()).unwrap();
            let spec = WorkloadSpec::synthetic(
                KeyDistribution::ws2_medium_skew(1_500),
                OperationMix::with_deletes(),
            );
            drive(&db, spec, 12_000, 3, &mut model);
            db.close().unwrap();
        }
        let db = Db::open(&dir, options).unwrap();
        check_model(&db, &model);
        db.close().unwrap();
    }
}

#[test]
fn production_profile_runs_end_to_end() {
    use triad::workload::{ProductionProfile, ProductionWorkload};
    let dir = temp_dir("production");
    let db = Db::open(&dir, small_options(TriadConfig::all_enabled())).unwrap();
    let profile = ProductionProfile::new(ProductionWorkload::W2, 10_000);
    let spec = profile.to_spec(OperationMix::new(0.1, 0.9, 0.0));
    let mut model = BTreeMap::new();
    drive(&db, spec, 20_000, 4, &mut model);
    db.flush().unwrap();
    db.wait_for_compactions().unwrap();
    check_model(&db, &model);
    let stats = db.stats();
    assert!(stats.user_writes > 0);
    assert!(stats.bytes_flushed > 0 || stats.small_flush_skips > 0);
    db.close().unwrap();
}

#[test]
fn triad_writes_less_background_io_than_baseline_under_skew() {
    let run = |triad: TriadConfig, name: &str| -> (u64, BTreeMap<Vec<u8>, Vec<u8>>) {
        let dir = temp_dir(name);
        let db = Db::open(&dir, small_options(triad)).unwrap();
        let spec = WorkloadSpec::synthetic(
            KeyDistribution::ws1_high_skew(2_000),
            OperationMix::write_intensive(),
        );
        let mut model = BTreeMap::new();
        drive(&db, spec, 30_000, 5, &mut model);
        db.flush().unwrap();
        db.wait_for_compactions().unwrap();
        let stats = db.stats();
        check_model(&db, &model);
        db.close().unwrap();
        (stats.bytes_flushed + stats.bytes_compacted_written, model)
    };
    let (baseline_bytes, baseline_model) = run(TriadConfig::baseline(), "io-baseline");
    let (triad_bytes, triad_model) = run(TriadConfig::all_enabled(), "io-triad");
    assert_eq!(
        baseline_model, triad_model,
        "identical op streams must give identical logical state"
    );
    assert!(
        triad_bytes < baseline_bytes,
        "TRIAD background I/O ({triad_bytes}) should be below the baseline ({baseline_bytes})"
    );
}
