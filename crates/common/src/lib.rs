//! Shared building blocks for the TRIAD log-structured key-value store.
//!
//! This crate holds the pieces that every other crate in the workspace needs:
//!
//! * [`error`] — the common [`error::Error`] / [`error::Result`] types.
//! * [`types`] — user keys, sequence numbers, value kinds and the internal key
//!   encoding used by SSTables and the commit log.
//! * [`varint`] — LEB128-style variable-length integer encoding.
//! * [`checksum`] — a software CRC32C implementation used to frame on-disk records.
//! * [`stats`] — the atomic statistics registry from which write amplification,
//!   read amplification and background-I/O time are derived.
//! * [`hist`] — a fixed-bucket HDR-style latency histogram for the benches.
//! * [`retention`] — the snapshot registry telling the memtable which
//!   superseded versions MVCC snapshots can still see.
//! * [`failpoint`] — a tiny failure-injection facility used by recovery tests.
//! * [`lockrank`] — rank-checked lock wrappers that turn lock-order
//!   violations into debug-build panics (the dynamic half of `triad-lint`'s
//!   `lock-order` rule).
//!
//! Nothing in this crate performs I/O or spawns threads; it is deliberately the
//! leaf of the dependency graph.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checksum;
pub mod error;
pub mod failpoint;
pub mod hist;
pub mod lockrank;
pub mod retention;
pub mod stats;
pub mod types;
pub mod varint;

pub use error::{Error, Result};
pub use hist::LatencyHistogram;
pub use lockrank::{allow_equal_rank, EqualRankScope, RankedMutex, RankedRwLock};
pub use retention::SnapshotRetention;
pub use stats::{StatSnapshot, Stats};
pub use types::{InternalKey, SeqNo, ValueKind};
