//! The shared block cache: a sharded CLOCK cache of checksummed, decoded
//! data blocks.
//!
//! One cache serves the whole database — every keyspace shard's tables read
//! through it — and shards *internally* (by key hash, independently of the
//! keyspace sharding) so concurrent probes rarely contend on one lock. Each
//! cache shard is a [`RankedMutex`] at rank `lock_rank::BLOCK_CACHE` (65)
//! guarding a `HashMap` of slots plus a CLOCK ring:
//!
//! * **Keying** — `(table_id, block_offset)`. Engine file ids are a
//!   per-keyspace-shard namespace (two shards both have a file 7), so the
//!   cache allocates its own globally unique table ids
//!   ([`BlockCache::allocate_table_id`]); the table cache records the mapping
//!   and purges a table's blocks when GC evicts it.
//! * **Eviction** — second-chance FIFO (CLOCK): a hit sets the slot's
//!   reference bit; when an insert pushes a shard over its byte budget the
//!   clock hand pops the ring front, re-queues referenced slots with the bit
//!   cleared and evicts the first unreferenced one. Scans streaming cold
//!   blocks therefore cannot flush the hot set in one pass.
//! * **Single-flight** — a miss installs a `Loading` slot before dropping the
//!   shard lock; concurrent probes for the same block park on the flight's
//!   Condvar instead of issuing duplicate reads. A failed or purged load
//!   publishes `None` and waiters fall back to a direct uncached read.
//! * **Budget** — the total byte budget ([`Options::block_cache`](crate::Options::block_cache)) divides
//!   evenly across the shards and is enforced per shard at insert time;
//!   blocks larger than a whole shard budget are returned uncached.
//!
//! Only checksum-verified blocks may enter the cache: the single insertion
//! path is the `load` closure [`Table`](triad_sstable::Table) passes through
//! [`BlockFetch::get_or_load`], which decodes from the CRC32C-verified
//! `read_block`. triad-lint's `block-cache-checksum` rule pins that call site
//! inside a marked region of `reader.rs`.

// lint:allow-file(no-std-sync-lock) the single-flight Flight pairs a Mutex
// with a Condvar (waiters park until the loader publishes), which the
// vendored parking_lot stand-in does not provide; these locks are private to
// one flight and never nest with the ranked shard locks.
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use triad_common::lockrank::RankedMutex;
use triad_common::{Result, Stats};
use triad_sstable::block::Block;
use triad_sstable::BlockFetch;

use crate::db::lock_rank;

/// Number of internal cache shards. Fixed and independent of the keyspace
/// shard count: the cache is shared database-wide, and 8 ways is plenty for
/// the handful of reader threads a single host drives.
const CACHE_SHARDS: usize = 8;

/// A block's identity in the cache: (cache table id, block offset).
type BlockKey = (u64, u64);

/// The result a flight publishes: `Some(block)` on a successful load,
/// `None` when the load failed or the table was purged mid-flight.
type FlightResult = Option<Arc<Block>>;

/// A single-flight rendezvous: the loader publishes exactly once, waiters
/// park until then.
struct Flight {
    done: Mutex<Option<FlightResult>>,
    ready: Condvar,
}

impl Flight {
    fn new() -> Flight {
        Flight { done: Mutex::new(None), ready: Condvar::new() }
    }

    fn publish(&self, result: FlightResult) {
        *self.done.lock().expect("flight lock poisoned") = Some(result);
        self.ready.notify_all();
    }

    fn wait(&self) -> FlightResult {
        let mut done = self.done.lock().expect("flight lock poisoned");
        while done.is_none() {
            done = self.ready.wait(done).expect("flight lock poisoned");
        }
        done.clone().expect("checked above")
    }
}

/// One cache slot: a resident block, or a load in flight.
enum Slot {
    Ready { block: Arc<Block>, charge: usize, referenced: bool },
    Loading(Arc<Flight>),
}

/// One shard's state: the slot map, the CLOCK ring and the resident byte
/// count. The ring may contain stale keys (purged or replaced); the hand
/// skips them.
struct CacheShard {
    slots: HashMap<BlockKey, Slot>,
    ring: VecDeque<BlockKey>,
    bytes: usize,
}

impl CacheShard {
    /// Advances the clock hand until the shard fits its budget. Returns the
    /// number of blocks evicted.
    fn evict_to_budget(&mut self, budget: usize) -> u64 {
        let mut evicted = 0;
        while self.bytes > budget {
            let Some(key) = self.ring.pop_front() else { break };
            // A ring entry whose slot is gone or still loading is stale
            // (purged table, or a load never ringed): just drop it.
            if let Some(Slot::Ready { referenced, charge, .. }) = self.slots.get_mut(&key) {
                if *referenced {
                    // Second chance: clear the bit and re-queue.
                    *referenced = false;
                    self.ring.push_back(key);
                } else {
                    self.bytes -= *charge;
                    self.slots.remove(&key);
                    evicted += 1;
                }
            }
        }
        evicted
    }
}

/// The shared, sharded CLOCK cache of decoded data blocks. See the module
/// docs for the design; constructed once per [`crate::Db`] and handed to
/// every keyspace shard's table cache.
pub struct BlockCache {
    shards: Vec<RankedMutex<CacheShard>>,
    /// Per-shard byte budget (total budget / CACHE_SHARDS, at least 1).
    shard_budget: usize,
    /// Allocator of cache-wide unique table ids.
    next_table_id: AtomicU64,
}

impl std::fmt::Debug for BlockCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockCache")
            .field("budget", &(self.shard_budget * CACHE_SHARDS))
            .field("bytes", &self.bytes_used())
            .finish()
    }
}

impl BlockCache {
    /// Creates a cache with the given total byte budget (> 0; a zero budget
    /// means "no cache" and is handled by not constructing one).
    pub fn new(budget_bytes: usize) -> BlockCache {
        debug_assert!(budget_bytes > 0, "a zero budget disables the cache entirely");
        let shard_budget = budget_bytes.div_ceil(CACHE_SHARDS).max(1);
        let shards = (0..CACHE_SHARDS)
            .map(|_| {
                RankedMutex::new(
                    lock_rank::BLOCK_CACHE,
                    "block_cache.blocks",
                    CacheShard { slots: HashMap::new(), ring: VecDeque::new(), bytes: 0 },
                )
            })
            .collect();
        BlockCache { shards, shard_budget, next_table_id: AtomicU64::new(1) }
    }

    /// Hands out a cache-wide unique table id. The table cache calls this
    /// once per opened table and keys every one of that table's blocks on it.
    pub fn allocate_table_id(&self) -> u64 {
        self.next_table_id.fetch_add(1, Ordering::Relaxed)
    }

    /// The shard owning `key` — FNV-1a over both halves, so tables larger
    /// than the shard count still spread their blocks.
    fn shard_index(key: &BlockKey) -> usize {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in key.0.to_le_bytes().into_iter().chain(key.1.to_le_bytes()) {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (hash % CACHE_SHARDS as u64) as usize
    }

    /// Total decoded bytes currently resident.
    pub fn bytes_used(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| {
                let blocks = shard;
                blocks.lock().bytes
            })
            .sum()
    }

    /// Number of resident (`Ready`) blocks.
    pub fn block_count(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| {
                let blocks = shard;
                blocks
                    .lock()
                    .slots
                    .values()
                    .filter(|slot| matches!(slot, Slot::Ready { .. }))
                    .count()
            })
            .sum()
    }

    /// The cache-wide byte budget (the per-shard budget summed back up).
    pub fn budget(&self) -> usize {
        self.shard_budget * CACHE_SHARDS
    }

    /// Drops every block belonging to `table_id` — called when GC evicts the
    /// table so a recycled file id can never resurrect stale blocks. Loads
    /// still in flight are told to publish `None`; their waiters re-read
    /// directly and their loaders skip the insert.
    pub fn purge_table(&self, table_id: u64) {
        for shard in &self.shards {
            let flights: Vec<Arc<Flight>> = {
                let blocks = shard;
                let mut state = blocks.lock();
                let keys: Vec<BlockKey> =
                    state.slots.keys().filter(|key| key.0 == table_id).copied().collect();
                let mut flights = Vec::new();
                for key in keys {
                    match state.slots.remove(&key) {
                        Some(Slot::Ready { charge, .. }) => state.bytes -= charge,
                        Some(Slot::Loading(flight)) => flights.push(flight),
                        None => {}
                    }
                }
                state.ring.retain(|key| key.0 != table_id);
                flights
            };
            // Wake waiters outside the shard lock.
            for flight in flights {
                flight.publish(None);
            }
        }
    }
}

impl BlockFetch for BlockCache {
    fn get_or_load(
        &self,
        table_id: u64,
        offset: u64,
        stats: Option<&Stats>,
        load: &dyn Fn() -> Result<Block>,
    ) -> Result<Arc<Block>> {
        let key = (table_id, offset);
        let index = Self::shard_index(&key);

        // Fast path / flight registration, under the shard lock.
        let (flight, is_loader) = {
            let blocks = &self.shards[index];
            let mut state = blocks.lock();
            match state.slots.get_mut(&key) {
                Some(Slot::Ready { block, referenced, .. }) => {
                    *referenced = true;
                    let block = Arc::clone(block);
                    drop(state);
                    if let Some(stats) = stats {
                        stats.add_block_cache_hits(1);
                    }
                    return Ok(block);
                }
                Some(Slot::Loading(flight)) => (Arc::clone(flight), false),
                None => {
                    let flight = Arc::new(Flight::new());
                    state.slots.insert(key, Slot::Loading(Arc::clone(&flight)));
                    (flight, true)
                }
            }
        };

        if !is_loader {
            // Someone else is reading this block right now; park until they
            // publish. A successful flight counts as a hit — one disk read
            // served every parked probe, which is the whole point.
            if let Some(block) = flight.wait() {
                if let Some(stats) = stats {
                    stats.add_block_cache_hits(1);
                }
                return Ok(block);
            }
            // The load failed (or the table was purged mid-flight): fall back
            // to a direct, uncached read so one loser cannot fail everyone.
            if let Some(stats) = stats {
                stats.add_block_cache_misses(1);
            }
            return load().map(Arc::new);
        }

        // Loader path: read outside any lock.
        if let Some(stats) = stats {
            stats.add_block_cache_misses(1);
        }
        let block = match load() {
            Ok(block) => Arc::new(block),
            Err(err) => {
                let blocks = &self.shards[index];
                let mut state = blocks.lock();
                // Only remove our own flight; a purge may have raced us.
                if matches!(state.slots.get(&key), Some(Slot::Loading(f)) if Arc::ptr_eq(f, &flight))
                {
                    state.slots.remove(&key);
                }
                drop(state);
                flight.publish(None);
                return Err(err);
            }
        };

        let charge = block.size_bytes();
        let mut evicted = 0;
        let mut inserted = false;
        {
            let blocks = &self.shards[index];
            let mut state = blocks.lock();
            let ours = matches!(
                state.slots.get(&key),
                Some(Slot::Loading(f)) if Arc::ptr_eq(f, &flight)
            );
            if ours {
                if charge <= self.shard_budget {
                    state.slots.insert(
                        key,
                        Slot::Ready { block: Arc::clone(&block), charge, referenced: false },
                    );
                    state.ring.push_back(key);
                    state.bytes += charge;
                    evicted = state.evict_to_budget(self.shard_budget);
                    inserted = true;
                } else {
                    // Oversized: serve it, but never let one block own the
                    // whole shard.
                    state.slots.remove(&key);
                }
            }
            // Not ours: a purge removed the flight — the table is gone from
            // the version chain, so do not re-insert its blocks.
        }
        if let Some(stats) = stats {
            if inserted {
                stats.add_block_cache_inserted_bytes(charge as u64);
            }
            if evicted > 0 {
                stats.add_block_cache_evictions(evicted);
            }
        }
        flight.publish(Some(Arc::clone(&block)));
        Ok(block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triad_common::types::{InternalKey, ValueKind};
    use triad_sstable::block::BlockBuilder;

    /// Builds a decoded block holding `n` entries of roughly `value_len`
    /// bytes each.
    fn sample_block(n: usize, value_len: usize) -> Block {
        let mut builder = BlockBuilder::new();
        for i in 0..n {
            let key = InternalKey::new(format!("key-{i:06}").into_bytes(), 1, ValueKind::Put);
            builder.add(&key.encode(), &vec![b'v'; value_len]);
        }
        Block::new(builder.finish()).expect("valid block")
    }

    #[test]
    fn hits_and_misses_are_counted_per_probe() {
        let cache = BlockCache::new(1 << 20);
        let stats = Stats::new();
        let table = cache.allocate_table_id();
        for _ in 0..5 {
            cache.get_or_load(table, 0, Some(&stats), &|| Ok(sample_block(4, 16))).unwrap();
        }
        assert_eq!(stats.block_cache_misses(), 1, "one load for five probes");
        assert_eq!(stats.block_cache_hits(), 4);
        assert!(stats.block_cache_inserted_bytes() > 0);
        assert_eq!(cache.block_count(), 1);
    }

    #[test]
    fn distinct_tables_never_share_blocks() {
        let cache = BlockCache::new(1 << 20);
        let a = cache.allocate_table_id();
        let b = cache.allocate_table_id();
        assert_ne!(a, b);
        let block_a = cache.get_or_load(a, 0, None, &|| Ok(sample_block(1, 8))).unwrap();
        let block_b = cache.get_or_load(b, 0, None, &|| Ok(sample_block(2, 8))).unwrap();
        assert_ne!(block_a.num_entries(), block_b.num_entries());
        assert_eq!(cache.block_count(), 2);
    }

    #[test]
    fn single_flight_under_eight_thread_same_block_hammering() {
        use std::sync::atomic::AtomicUsize;
        let cache = Arc::new(BlockCache::new(1 << 20));
        let loads = Arc::new(AtomicUsize::new(0));
        let table = cache.allocate_table_id();
        let barrier = Arc::new(std::sync::Barrier::new(8));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let loads = Arc::clone(&loads);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    for _ in 0..50 {
                        let block = cache
                            .get_or_load(table, 42, None, &|| {
                                loads.fetch_add(1, Ordering::Relaxed);
                                // A slow load widens the race window.
                                std::thread::sleep(std::time::Duration::from_millis(1));
                                Ok(sample_block(4, 16))
                            })
                            .unwrap();
                        assert_eq!(block.num_entries(), 4);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(
            loads.load(Ordering::Relaxed),
            1,
            "400 concurrent probes of one block must do exactly one load"
        );
    }

    #[test]
    fn failed_loads_do_not_poison_the_slot() {
        let cache = BlockCache::new(1 << 20);
        let table = cache.allocate_table_id();
        let err = cache
            .get_or_load(table, 0, None, &|| Err(triad_common::Error::corruption("bad block")));
        assert!(err.is_err());
        // The next probe retries and succeeds.
        let block = cache.get_or_load(table, 0, None, &|| Ok(sample_block(3, 8))).unwrap();
        assert_eq!(block.num_entries(), 3);
        assert_eq!(cache.block_count(), 1);
    }

    #[test]
    fn budget_is_never_exceeded_under_churn() {
        // Property-style sweep without the proptest harness: many (seeded)
        // interleavings of inserts across tables and offsets, with the
        // invariant checked after every single probe.
        let budget = 64 * 1024;
        let cache = BlockCache::new(budget);
        let stats = Stats::new();
        let mut seed = 0x5eed_5eed_u64;
        let tables: Vec<u64> = (0..4).map(|_| cache.allocate_table_id()).collect();
        for round in 0..2_000u64 {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let table = tables[(seed >> 33) as usize % tables.len()];
            let offset = (seed >> 17) % 256;
            let value_len = 64 + (seed % 512) as usize;
            cache
                .get_or_load(table, offset, Some(&stats), &|| Ok(sample_block(8, value_len)))
                .unwrap();
            // Per-shard budgets sum to at least the requested total; the
            // resident bytes must never exceed the enforced total.
            assert!(
                cache.bytes_used() <= cache.budget(),
                "round {round}: {} resident bytes exceed the {} budget",
                cache.bytes_used(),
                cache.budget()
            );
        }
        assert!(stats.block_cache_evictions() > 0, "churn at 16x the budget must evict");
        assert!(stats.block_cache_hits() > 0, "re-probes of resident offsets must hit");
    }

    #[test]
    fn oversized_blocks_are_served_but_not_cached() {
        let cache = BlockCache::new(CACHE_SHARDS); // 1 byte per shard.
        let table = cache.allocate_table_id();
        let block = cache.get_or_load(table, 0, None, &|| Ok(sample_block(16, 128))).unwrap();
        assert!(block.num_entries() == 16);
        assert_eq!(cache.block_count(), 0, "a block larger than a shard budget is not retained");
        assert_eq!(cache.bytes_used(), 0);
    }

    #[test]
    fn purge_table_drops_only_that_tables_blocks() {
        let cache = BlockCache::new(1 << 20);
        let stats = Stats::new();
        let victim = cache.allocate_table_id();
        let survivor = cache.allocate_table_id();
        for offset in 0..10 {
            cache.get_or_load(victim, offset, Some(&stats), &|| Ok(sample_block(4, 32))).unwrap();
            cache.get_or_load(survivor, offset, Some(&stats), &|| Ok(sample_block(4, 32))).unwrap();
        }
        assert_eq!(cache.block_count(), 20);
        cache.purge_table(victim);
        assert_eq!(cache.block_count(), 10);
        // The survivor's blocks still hit; the victim's blocks reload.
        let misses_before = stats.block_cache_misses();
        cache.get_or_load(survivor, 3, Some(&stats), &|| Ok(sample_block(4, 32))).unwrap();
        assert_eq!(stats.block_cache_misses(), misses_before);
        cache.get_or_load(victim, 3, Some(&stats), &|| Ok(sample_block(4, 32))).unwrap();
        assert_eq!(stats.block_cache_misses(), misses_before + 1);
    }

    #[test]
    fn clock_eviction_gives_referenced_blocks_a_second_chance() {
        // One shard's worth of keys that all hash to... well, we cannot pick
        // the shard, so use a budget small enough that each shard holds ~2
        // blocks and verify the *aggregate* behavior: a block probed twice
        // (referenced) survives churn longer than cold fill-ins.
        let cache = BlockCache::new(8 * 1024);
        let stats = Stats::new();
        let table = cache.allocate_table_id();
        // Make offset 0 hot.
        cache.get_or_load(table, 0, Some(&stats), &|| Ok(sample_block(4, 64))).unwrap();
        for _ in 0..3 {
            cache.get_or_load(table, 0, Some(&stats), &|| Ok(sample_block(4, 64))).unwrap();
        }
        // Stream cold blocks through.
        for offset in 1..40 {
            cache.get_or_load(table, offset, Some(&stats), &|| Ok(sample_block(4, 64))).unwrap();
        }
        let misses_before = stats.block_cache_misses();
        cache.get_or_load(table, 0, Some(&stats), &|| Ok(sample_block(4, 64))).unwrap();
        // Not a hard guarantee (the hot block's shard may have churned it
        // out after its second chance), but with 40 cold blocks spread over
        // 8 shards the referenced bit must have bought at least survival
        // through the first pass — assert the cache still works either way
        // and the counters stayed coherent.
        assert!(stats.block_cache_misses() <= misses_before + 1);
        assert!(cache.bytes_used() <= cache.budget());
    }
}
