// lint-fixture: crates/core/tests/engine_fixture.rs

fn exercise() {
    failpoints.arm("flush.fixture_point", FailpointAction::ReturnError);
    assert!(failpoints.hits("flush.fixture_point") > 0);
}
