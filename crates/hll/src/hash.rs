//! A fast, dependency-free 64-bit hash for HyperLogLog and bloom filters.
//!
//! The construction is the public-domain FNV-1a mix followed by a SplitMix64-style
//! finalizer. HyperLogLog only needs a hash whose bits are individually well mixed;
//! the finalizer ensures high bits (used for register selection) are as well
//! distributed as low bits.

/// Hashes `data` to 64 bits.
pub fn hash64(data: &[u8]) -> u64 {
    hash64_seeded(data, 0x9e37_79b9_7f4a_7c15)
}

/// Hashes `data` with an explicit seed; different seeds yield independent hash
/// functions, which the bloom filter uses for double hashing.
pub fn hash64_seeded(data: &[u8], seed: u64) -> u64 {
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut state = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    // FNV-1a over 8-byte chunks for throughput, then the tail byte-by-byte.
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        state ^= word;
        state = state.wrapping_mul(FNV_PRIME);
    }
    for &byte in chunks.remainder() {
        state ^= u64::from(byte);
        state = state.wrapping_mul(FNV_PRIME);
    }
    state ^= data.len() as u64;
    finalize(state)
}

/// SplitMix64 finalizer: guarantees avalanche of every input bit.
fn finalize(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic() {
        assert_eq!(hash64(b"triad"), hash64(b"triad"));
        assert_eq!(hash64_seeded(b"triad", 7), hash64_seeded(b"triad", 7));
    }

    #[test]
    fn different_inputs_differ() {
        assert_ne!(hash64(b"triad"), hash64(b"triad!"));
        assert_ne!(hash64(b""), hash64(b"\x00"));
        assert_ne!(hash64(b"\x00"), hash64(b"\x00\x00"));
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(hash64_seeded(b"key", 1), hash64_seeded(b"key", 2));
    }

    #[test]
    fn no_collisions_over_small_dense_keyspace() {
        let mut seen = HashSet::new();
        for i in 0..200_000u64 {
            seen.insert(hash64(&i.to_le_bytes()));
        }
        // A handful of collisions would be astronomically unlikely for a good hash.
        assert_eq!(seen.len(), 200_000);
    }

    #[test]
    fn high_bits_are_well_distributed() {
        // HyperLogLog uses the top `p` bits to select a register; make sure sequential
        // keys spread across registers rather than clumping.
        let mut buckets = [0u32; 64];
        for i in 0..64_000u64 {
            let h = hash64(&i.to_le_bytes());
            buckets[(h >> 58) as usize] += 1;
        }
        let expected = 1000.0;
        for (bucket, &count) in buckets.iter().enumerate() {
            let deviation = (f64::from(count) - expected).abs() / expected;
            assert!(deviation < 0.25, "bucket {bucket} has {count} items, deviates {deviation}");
        }
    }
}
