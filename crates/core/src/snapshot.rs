//! MVCC snapshots: frozen, consistent views of the database.
//!
//! A [`Snapshot`] is, per shard, a *pin* on three things at once:
//!
//! 1. **A published sequence number** sitting on a commit-group boundary. The
//!    capture happens under the shard's WAL lock plus an exclusive
//!    acquisition of its commit gate, which drains the commit pipeline:
//!    every appended group has published (or been abandoned) by the time the
//!    seqno is read, and no new group can append while the locks are held. A
//!    boundary seqno can never split a write batch, and — because
//!    publication happens only after a group is as durable as the engine's
//!    sync policy promises — it can never cover unacknowledged, non-durable
//!    data either.
//! 2. **The memory components**: the active memtable and the sealed list, by
//!    `Arc`. The active memtable keeps absorbing writes afterwards, but the
//!    snapshot registered itself in the shared
//!    [`SnapshotRetention`](triad_common::SnapshotRetention) registry *before*
//!    releasing the gate, so any later overwrite of a version the snapshot can
//!    see preserves that version on the slot's prior list, where the
//!    seqno-bounded probes ([`Memtable::get_at`],
//!    [`Memtable::snapshot_entries_at`]) find it.
//! 3. **The current [`Version`](crate::Version)** via an internal pin: every
//!    table file, CL index and backing commit log the version references survives any
//!    concurrent flush or compaction until the snapshot drops — garbage
//!    collection consults the live-version registry, and a pinned version is
//!    live. Compaction may dedup older versions out of *new* files, but the
//!    snapshot never reads those; it reads the files of the version it pinned.
//!
//! # The shard-spanning snapshot gate
//!
//! On a sharded database the snapshot must be consistent across shards: a
//! cross-shard batch (committed per shard, see
//! [`Db::write`](crate::Db::write)) must be visible either on every shard it
//! touched or on none. `Snapshot::open_multi` achieves this by taking the
//! router gate exclusively — in-flight cross-shard batches hold it shared —
//! and then, inside the marked `SNAPSHOT-GATE` region, acquiring **every**
//! shard's WAL lock and commit gate before capturing any shard's seqno.
//! This is the only place in the engine where two shards' WAL locks may be
//! held at once (enforced by `triad-lint`'s `multi-shard-wal-gate` rule and,
//! dynamically, by the lock-rank checker's scoped equal-rank allowance).
//! Lock order is global rank order: router gate (8), then the WAL locks
//! (10, shard-index order), then the commit gates (20, shard-index order).
//!
//! Dropping the snapshot deregisters it per shard and, whenever that moves
//! the registry's visibility bounds, sweeps the shard's memory components so
//! retained versions nobody can read are released promptly — even on idle
//! keys that are never overwritten again. It also releases the version pins,
//! nudging each shard's collector to reclaim whatever only the snapshot was
//! keeping.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use triad_common::lockrank::RankedRwLock;
use triad_common::types::SeqNo;
use triad_common::Result;
use triad_memtable::Memtable;

use crate::db::{lock_rank, DbInner, ImmutableMemtable, PinnedVersion, WalState};
use crate::iterator::DbIterator;
use crate::shard::{Shard, ShardRouter};

/// One shard's frozen view: the capture-time seqno, memory components and
/// pinned version of a single engine shard.
pub(crate) struct SnapshotShard {
    pub(crate) db: Arc<DbInner>,
    pub(crate) seqno: SeqNo,
    /// The memory component that was active at the snapshot point. Later
    /// writes land in it (or a successor) with larger seqnos; the bounded
    /// probes below never see them.
    pub(crate) mem: Arc<Memtable>,
    /// The sealed memtables pending flush at the snapshot point, oldest first.
    pub(crate) imm: Vec<Arc<ImmutableMemtable>>,
    /// Keeps every file of the captured version safe from garbage collection.
    pub(crate) pin: PinnedVersion,
}

impl SnapshotShard {
    /// Captures one shard's view. The caller must hold the shard's WAL lock
    /// and an exclusive acquisition of its commit gate (pipeline drained).
    fn capture_locked(db: &Arc<DbInner>) -> SnapshotShard {
        let seqno = db.last_seqno.load(Ordering::Acquire);
        // Register *before* the gate opens: the first write group that could
        // overwrite something this snapshot sees must already find it
        // registered, or the shadowed version would be discarded.
        db.retention.register(seqno);
        let mem = db.mem.read().clone();
        let imm: Vec<Arc<ImmutableMemtable>> = db.imm.read().clone();
        let pin = db.pin_current_version();
        SnapshotShard { db: Arc::clone(db), seqno, mem, imm, pin }
    }

    /// Seqno-bounded point lookup within this shard's captured view.
    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let db = &self.db;
        db.stats.add_user_reads(1);

        // 1. The memtable that was active at the snapshot point.
        db.stats.add_memtable_probes(1);
        if let Some(entry) = self.mem.get_at(key, self.seqno) {
            return Ok(db.resolve_entry(entry));
        }
        // 2. The sealed memtables of the snapshot point, newest first.
        for sealed in self.imm.iter().rev() {
            db.stats.add_memtable_probes(1);
            if let Some(entry) = sealed.memtable.get_at(key, self.seqno) {
                return Ok(db.resolve_entry(entry));
            }
        }
        // 3. The pinned version, level by level. Within L0 files are probed
        // newest first, and no older file can hold a newer visible version
        // than a younger file (flush order), so the first bounded hit is the
        // newest version the snapshot can see.
        for level in 0..self.pin.num_levels() {
            for file in self.pin.files_for_key(level, key) {
                let table = db.table_cache.get_or_open(&file)?;
                db.stats.add_table_probes(1);
                if let Some(entry) = table.get(key, self.seqno)? {
                    return Ok(db.resolve_entry(entry));
                }
            }
        }
        Ok(None)
    }
}

/// A frozen, consistent view of the database at a commit-group boundary
/// (one boundary per shard on a sharded database).
///
/// Obtained from [`Db::snapshot`](crate::Db::snapshot); reads through the
/// handle are repeatable and unaffected by concurrent writes, flushes and
/// compactions. The handle is `Send + Sync`; it may outlive arbitrary amounts
/// of write traffic, at the cost of pinning the files and superseded in-memory
/// versions it can still see.
pub struct Snapshot {
    /// One frozen view per engine shard, shard-index order.
    shards: Vec<SnapshotShard>,
    /// Key → shard routing, mirroring the database's own router.
    routes: ShardRouter,
    /// The largest per-shard snapshot seqno (equals the single shard's seqno
    /// on an unsharded database).
    seqno: SeqNo,
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("seqno", &self.seqno)
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl Snapshot {
    /// Captures a snapshot of a single-shard database. See the module docs
    /// for the protocol.
    pub(crate) fn open(db: &Arc<DbInner>) -> Snapshot {
        let captured = {
            // WAL lock then exclusive commit gate — the engine's global lock
            // order. With both held the pipeline is drained: `last_seqno` is a
            // group boundary and every write at or below it is fully applied.
            let _wal = db.wal.lock();
            let _gate = db.commit_gate.write();
            SnapshotShard::capture_locked(db)
        };
        db.stats.add_snapshots_created(1);
        let seqno = captured.seqno;
        Snapshot { shards: vec![captured], routes: ShardRouter::new(1), seqno }
    }

    /// Captures a shard-spanning snapshot: every shard's pipeline is drained
    /// and its commit-group-boundary seqno captured under one exclusive
    /// router-gate hold, so cross-shard batches (which commit under a shared
    /// hold) are observed all-or-nothing. See the module docs.
    pub(crate) fn open_multi(shards: &[Shard], router: &RankedRwLock<()>) -> Snapshot {
        let (snapshot, _) = capture_all_shards(shards, router, |_, _, _| Ok(()))
            .expect("snapshot capture with a no-op callback cannot fail");
        snapshot
    }

    /// The snapshot's sequence number: the largest seqno whose effects are
    /// visible through this handle. Always a commit-group boundary; on a
    /// sharded database, the largest of the per-shard boundary seqnos
    /// (advisory — bounded reads use each shard's own seqno).
    pub fn seqno(&self) -> SeqNo {
        self.seqno
    }

    /// Returns the value `key` had at the snapshot point, or `None` if it did
    /// not exist (or was deleted) then.
    ///
    /// The probe order mirrors the live read path — active memtable, sealed
    /// memtables newest first, then the pinned version level by level — but
    /// every probe is bounded by the owning shard's snapshot seqno and
    /// consults retained prior versions. The capture-time components are
    /// used, not the current ones: a memtable sealed, flushed and even
    /// garbage-collected since the snapshot was taken is still read here, in
    /// memory, through its `Arc`.
    pub fn get(&self, key: impl AsRef<[u8]>) -> Result<Option<Vec<u8>>> {
        let key = key.as_ref();
        let shard = &self.shards[self.routes.route(key)];
        let started = std::time::Instant::now();
        let result = shard.get(key);
        shard.db.stats.record_get_latency_ns(started.elapsed().as_nanos() as u64);
        result
    }

    /// Returns an iterator over every key/value pair that was live at the
    /// snapshot point, in key order.
    pub fn scan(&self) -> Result<DbIterator> {
        self.scan_range(None, None)
    }

    /// Returns an iterator over the snapshot's live key/value pairs with user
    /// keys in `[start, end)`; either bound may be omitted.
    ///
    /// Unlike the live [`Db::scan_range`](crate::Db::scan_range), no lock is
    /// taken: each shard's snapshot seqno already sits on a commit-group
    /// boundary, so the bounded view is batch-atomic by construction — a
    /// concurrent group's writes all carry seqnos above the bound, and
    /// anything it overwrites that the snapshot can see is preserved by the
    /// retention registry. On a sharded database the per-shard sources are
    /// k-way merged; routing makes the shards' key sets disjoint.
    pub fn scan_range(&self, start: Option<&[u8]>, end: Option<&[u8]>) -> Result<DbIterator> {
        DbIterator::with_snapshot_parts(
            &self.shards,
            start.map(|s| s.to_vec()),
            end.map(|e| e.to_vec()),
        )
    }
}

/// The shard-spanning capture protocol, generalized: drains every shard's
/// pipeline under one exclusive router-gate hold (exactly as a shard-spanning
/// snapshot does), captures a [`Snapshot`], and then — while **every** shard's
/// WAL lock and commit gate are still held — runs `capture` once per shard
/// with that shard's locked [`WalState`]. Checkpoint capture copies per-shard
/// commit-log state here, and WAL shipping reads its segments here; both get
/// a cut that can never split a write batch or a cross-shard batch, plus a
/// [`Snapshot`] pinned at exactly the same cut.
///
/// On a callback error the already-captured snapshot drops (deregistering its
/// retention and version pins) and the error propagates; the locks release
/// either way when the function returns. Works unchanged on a single-shard
/// database, where the router gate is simply uncontended.
pub(crate) fn capture_all_shards<T>(
    shards: &[Shard],
    router: &RankedRwLock<()>,
    mut capture: impl FnMut(usize, &Shard, &mut WalState) -> Result<T>,
) -> Result<(Snapshot, Vec<T>)> {
    let coord = router.write();
    // SNAPSHOT-GATE-BEGIN: the one region allowed to hold several
    // shards' WAL locks (and commit gates) at once. Acquisition is in
    // shard-index order under a scoped equal-rank allowance; the
    // locks are released together when the guards drop below.
    let mut wals = Vec::with_capacity(shards.len());
    {
        let _same_rank = triad_common::allow_equal_rank(lock_rank::WAL);
        for shard in shards {
            wals.push(shard.inner.wal.lock());
        }
    }
    let mut gates = Vec::with_capacity(shards.len());
    {
        let _same_rank = triad_common::allow_equal_rank(lock_rank::COMMIT_GATE);
        for shard in shards {
            gates.push(shard.inner.commit_gate.write());
        }
    }
    let mut captured = Vec::with_capacity(shards.len());
    for shard in shards {
        captured.push(SnapshotShard::capture_locked(&shard.inner));
    }
    let seqno = captured.iter().map(|shard| shard.seqno).max().unwrap_or(0);
    // Assemble the snapshot *before* the fallible callbacks: an early return
    // below drops it, and `Snapshot::drop` runs the full release protocol
    // (deregistration, retention sweep, pin release) for the captured shards.
    let snapshot = Snapshot { shards: captured, routes: ShardRouter::new(shards.len()), seqno };
    let mut extras = Vec::with_capacity(shards.len());
    for (index, (shard, wal)) in shards.iter().zip(wals.iter_mut()).enumerate() {
        extras.push(capture(index, shard, wal)?);
    }
    drop(gates);
    drop(wals);
    // SNAPSHOT-GATE-END
    drop(coord);
    // One snapshot, one count: attribute it to shard 0 so the merged
    // stats see a single shard-spanning snapshot, not one per shard.
    shards[0].inner.stats.add_snapshots_created(1);
    Ok((snapshot, extras))
}

impl Drop for Snapshot {
    fn drop(&mut self) {
        // Deregistration first: subsequent overwrites stop retaining for this
        // seqno and prune what only it could read. The field drops that follow
        // release the memtables and the version pins; each pin's drop nudges
        // its shard's garbage collector if files are waiting.
        for shard in &self.shards {
            if shard.db.retention.deregister(shard.seqno) {
                // The visibility bounds moved: some retained priors may have
                // just become unreachable, including on idle keys no future
                // overwrite would ever prune. Sweep the shard's *current*
                // memory components (lock order MEM < IMM < the memtable's
                // internal shard locks); the components this snapshot captured
                // are either among them or dropped with this handle.
                let mem = shard.db.mem.read().clone();
                let imm: Vec<Arc<ImmutableMemtable>> = shard.db.imm.read().clone();
                mem.prune_retained();
                for sealed in &imm {
                    sealed.memtable.prune_retained();
                }
            }
        }
    }
}
