//! Iterators over sorted entry streams.
//!
//! Compaction and full scans consume multiple sorted sources (memtables, regular
//! SSTables, CL-SSTables) and need a single stream in internal-key order. The
//! [`MergingIterator`] performs the k-way merge; the [`DedupIterator`] collapses the
//! stream down to the newest visible version of each user key and optionally drops
//! tombstones when compacting into the bottom level.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use triad_common::types::Entry;
use triad_common::Result;

/// A boxed stream of entries in internal-key order.
pub type EntryIter = Box<dyn Iterator<Item = Result<Entry>> + Send>;

/// An entry held in the merge heap, tagged with the index of its source.
struct HeapItem {
    entry: Entry,
    source: usize,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapItem {}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the smallest internal key is popped
        // first. Ties between sources are broken by source index so that the source
        // listed first (the newer one, by convention) wins deterministically.
        other.entry.key.cmp(&self.entry.key).then_with(|| other.source.cmp(&self.source))
    }
}

/// K-way merge of sorted entry streams.
///
/// Sources must individually be sorted by internal key. By convention callers list
/// newer sources first (memtable before L0, L0 before L1, newest L0 file first); the
/// merge is stable with respect to that order for identical internal keys.
pub struct MergingIterator {
    sources: Vec<EntryIter>,
    heap: BinaryHeap<HeapItem>,
    errored: bool,
}

impl MergingIterator {
    /// Creates a merging iterator over `sources`.
    pub fn new(sources: Vec<EntryIter>) -> Result<Self> {
        let mut iter = MergingIterator { sources, heap: BinaryHeap::new(), errored: false };
        for idx in 0..iter.sources.len() {
            iter.advance_source(idx)?;
        }
        Ok(iter)
    }

    fn advance_source(&mut self, idx: usize) -> Result<()> {
        if let Some(item) = self.sources[idx].next() {
            let entry = item?;
            self.heap.push(HeapItem { entry, source: idx });
        }
        Ok(())
    }
}

impl Iterator for MergingIterator {
    type Item = Result<Entry>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.errored {
            return None;
        }
        let HeapItem { entry, source } = self.heap.pop()?;
        if let Err(e) = self.advance_source(source) {
            self.errored = true;
            return Some(Err(e));
        }
        Some(Ok(entry))
    }
}

/// Collapses a stream sorted by internal key down to one entry per user key.
///
/// The input convention (newest version of a user key first) means the first entry
/// seen for each user key is the survivor; older versions are counted as dropped.
/// When `drop_tombstones` is set, surviving delete markers are removed as well —
/// only safe when compacting into the lowest populated level.
pub struct DedupIterator {
    inner: EntryIter,
    current_user_key: Option<Vec<u8>>,
    drop_tombstones: bool,
    dropped: u64,
    errored: bool,
}

impl DedupIterator {
    /// Wraps `inner`, which must be sorted by internal key.
    pub fn new(inner: EntryIter, drop_tombstones: bool) -> Self {
        DedupIterator { inner, current_user_key: None, drop_tombstones, dropped: 0, errored: false }
    }

    /// Number of entries dropped so far (older versions and, if enabled, tombstones).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl Iterator for DedupIterator {
    type Item = Result<Entry>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.errored {
            return None;
        }
        loop {
            let entry = match self.inner.next()? {
                Ok(entry) => entry,
                Err(e) => {
                    self.errored = true;
                    return Some(Err(e));
                }
            };
            let is_new_user_key = self
                .current_user_key
                .as_deref()
                .map(|k| k != entry.key.user_key.as_slice())
                .unwrap_or(true);
            if !is_new_user_key {
                // An older version of a key we already emitted (or suppressed).
                self.dropped += 1;
                continue;
            }
            self.current_user_key = Some(entry.key.user_key.clone());
            if self.drop_tombstones && entry.key.kind == triad_common::types::ValueKind::Delete {
                self.dropped += 1;
                continue;
            }
            return Some(Ok(entry));
        }
    }
}

/// Convenience helper that turns a vector of entries into an [`EntryIter`].
pub fn entries_to_iter(entries: Vec<Entry>) -> EntryIter {
    Box::new(entries.into_iter().map(Ok))
}

/// Restricts `inner` to entries whose sequence number is `<= max_seqno`.
///
/// This is the table-side half of the snapshot read path: sources are bounded
/// *before* the [`DedupIterator`] picks survivors, so the survivor for each
/// user key is the newest version visible at the snapshot, not the newest
/// version outright. The hot (non-snapshot) read path never uses this — it
/// reads newest, unbounded.
pub fn bounded_to_seqno(inner: EntryIter, max_seqno: u64) -> EntryIter {
    Box::new(inner.filter(move |item| match item {
        Ok(entry) => entry.key.seqno <= max_seqno,
        Err(_) => true,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use triad_common::types::{InternalKey, ValueKind};
    use triad_common::Error;

    fn put(key: &str, seqno: u64, value: &str) -> Entry {
        Entry::put(key.as_bytes().to_vec(), value.as_bytes().to_vec(), seqno)
    }

    fn del(key: &str, seqno: u64) -> Entry {
        Entry::delete(key.as_bytes().to_vec(), seqno)
    }

    fn sorted(mut entries: Vec<Entry>) -> Vec<Entry> {
        entries.sort_by(|a, b| a.key.cmp(&b.key));
        entries
    }

    #[test]
    fn merge_of_disjoint_sources() {
        let a = sorted(vec![put("a", 1, "1"), put("c", 2, "3")]);
        let b = sorted(vec![put("b", 3, "2"), put("d", 4, "4")]);
        let merged: Vec<Entry> = MergingIterator::new(vec![entries_to_iter(a), entries_to_iter(b)])
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        let keys: Vec<&[u8]> = merged.iter().map(|e| e.key.user_key.as_slice()).collect();
        assert_eq!(keys, vec![b"a".as_slice(), b"b", b"c", b"d"]);
    }

    #[test]
    fn merge_orders_versions_of_same_key_newest_first() {
        let newer = sorted(vec![put("k", 10, "new"), put("z", 11, "zz")]);
        let older = sorted(vec![put("k", 5, "old"), put("a", 6, "aa")]);
        let merged: Vec<Entry> =
            MergingIterator::new(vec![entries_to_iter(newer), entries_to_iter(older)])
                .unwrap()
                .map(|r| r.unwrap())
                .collect();
        assert_eq!(merged.len(), 4);
        assert_eq!(merged[0].key.user_key, b"a");
        assert_eq!(merged[1].value, b"new", "seqno 10 sorts before seqno 5");
        assert_eq!(merged[2].value, b"old");
        assert_eq!(merged[3].key.user_key, b"z");
    }

    #[test]
    fn merge_of_empty_sources() {
        let merged: Vec<Entry> =
            MergingIterator::new(vec![entries_to_iter(vec![]), entries_to_iter(vec![])])
                .unwrap()
                .map(|r| r.unwrap())
                .collect();
        assert!(merged.is_empty());
        let no_sources: Vec<Entry> =
            MergingIterator::new(vec![]).unwrap().map(|r| r.unwrap()).collect();
        assert!(no_sources.is_empty());
    }

    #[test]
    fn merge_propagates_errors() {
        let erroring: EntryIter = Box::new(
            vec![Ok(put("a", 1, "1")), Err(Error::corruption("broken source"))].into_iter(),
        );
        let good = entries_to_iter(sorted(vec![put("b", 2, "2")]));
        let mut iter = MergingIterator::new(vec![erroring, good]).unwrap();
        // First item pops "a"; advancing the erroring source surfaces the error.
        let results: Vec<Result<Entry>> = iter.by_ref().collect();
        assert!(results.iter().any(|r| r.is_err()));
        assert!(iter.next().is_none(), "iterator fuses after an error");
    }

    #[test]
    fn dedup_keeps_newest_version_only() {
        let stream = sorted(vec![
            put("k", 10, "new"),
            put("k", 5, "old"),
            put("k", 1, "ancient"),
            put("x", 2, "xx"),
        ]);
        let mut dedup = DedupIterator::new(entries_to_iter(stream), false);
        let kept: Vec<Entry> = dedup.by_ref().map(|r| r.unwrap()).collect();
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].value, b"new");
        assert_eq!(kept[1].key.user_key, b"x");
        assert_eq!(dedup.dropped(), 2);
    }

    #[test]
    fn dedup_keeps_tombstones_on_intermediate_levels() {
        let stream = sorted(vec![del("k", 10), put("k", 5, "old")]);
        let kept: Vec<Entry> =
            DedupIterator::new(entries_to_iter(stream), false).map(|r| r.unwrap()).collect();
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].key.kind, ValueKind::Delete);
    }

    #[test]
    fn dedup_drops_tombstones_on_bottom_level() {
        let stream = sorted(vec![del("gone", 10), put("gone", 5, "old"), put("kept", 3, "v")]);
        let mut dedup = DedupIterator::new(entries_to_iter(stream), true);
        let kept: Vec<Entry> = dedup.by_ref().map(|r| r.unwrap()).collect();
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].key.user_key, b"kept");
        assert_eq!(dedup.dropped(), 2);
    }

    #[test]
    fn dedup_of_empty_stream() {
        let kept: Vec<Entry> =
            DedupIterator::new(entries_to_iter(vec![]), true).map(|r| r.unwrap()).collect();
        assert!(kept.is_empty());
    }

    #[test]
    fn merge_then_dedup_models_compaction() {
        // Newer source (e.g. an L0 file) shadows the older one (an L1 file).
        let l0 = sorted(vec![put("a", 20, "a-new"), del("b", 21), put("c", 22, "c-new")]);
        let l1 = sorted(vec![put("a", 3, "a-old"), put("b", 4, "b-old"), put("d", 5, "d-old")]);
        let merged = MergingIterator::new(vec![entries_to_iter(l0), entries_to_iter(l1)]).unwrap();
        let compacted: Vec<Entry> =
            DedupIterator::new(Box::new(merged), true).map(|r| r.unwrap()).collect();
        let keys: Vec<&[u8]> = compacted.iter().map(|e| e.key.user_key.as_slice()).collect();
        assert_eq!(keys, vec![b"a".as_slice(), b"c", b"d"]);
        assert_eq!(compacted[0].value, b"a-new");
        assert_eq!(compacted[2].value, b"d-old");
    }

    #[test]
    fn heap_tie_break_prefers_earlier_source() {
        // Two sources containing the exact same internal key (can only happen if a
        // caller replays the same log twice); the earlier source must win the tie.
        let a = vec![put("k", 7, "from-source-0")];
        let b = vec![put("k", 7, "from-source-1")];
        let merged: Vec<Entry> = MergingIterator::new(vec![entries_to_iter(a), entries_to_iter(b)])
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(merged[0].value, b"from-source-0");
        assert_eq!(merged[1].value, b"from-source-1");
        let key = InternalKey::new(b"k".to_vec(), 7, ValueKind::Put);
        assert_eq!(merged[0].key, key);
    }
}
