//! A fixed-bucket, HDR-style latency histogram.
//!
//! Latency distributions span several orders of magnitude, so linear buckets
//! either waste memory or lose tail resolution. This histogram uses the
//! HdrHistogram bucketing scheme with a fixed layout: values are grouped by
//! their power-of-two magnitude, and each magnitude is split into 32 linear
//! sub-buckets, giving a constant ~3% relative error across the whole range
//! with a few hundred `u64` counters. Recording is one relaxed `fetch_add`,
//! so concurrent writer threads can share one histogram without coordination.
//!
//! Values are unitless; callers pick the unit and must read results in the
//! same unit (the write-scaling bench records nanoseconds and divides by
//! 1000 when reporting microsecond percentiles).

use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-buckets per power-of-two magnitude (a power of two). 32 gives a
/// worst-case relative error of 1/32 ≈ 3%, plenty for p50/p99/p999 reporting.
const SUB_BUCKETS: u64 = 32;
/// log2 of [`SUB_BUCKETS`].
const SUB_BUCKET_BITS: u32 = 5;
/// Number of power-of-two magnitudes tracked above the exact range. Together
/// with the sub-buckets this covers values up to `SUB_BUCKETS << MAGNITUDES`,
/// ~2.2 * 10^12 — over half an hour even at nanosecond resolution (larger
/// values clamp into the top bucket).
const MAGNITUDES: u32 = 36;
/// Total bucket count: the exact range `[0, SUB_BUCKETS)` plus
/// `SUB_BUCKETS / 2` buckets for each additional magnitude.
const BUCKETS: usize = (SUB_BUCKETS + (MAGNITUDES as u64) * (SUB_BUCKETS / 2)) as usize;

/// A thread-safe latency histogram with fixed HDR-style buckets.
///
/// ```
/// use triad_common::hist::LatencyHistogram;
/// let hist = LatencyHistogram::new();
/// for v in [10, 20, 30, 40, 1000] {
///     hist.record(v);
/// }
/// assert_eq!(hist.count(), 5);
/// assert!(hist.percentile(50.0) >= 20 && hist.percentile(50.0) <= 31);
/// assert!(hist.percentile(99.9) >= 960);
/// ```
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    max: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Index of the bucket holding `value`.
///
/// Values below [`SUB_BUCKETS`] are exact (bucket = value). Above, each
/// power-of-two magnitude contributes `SUB_BUCKETS / 2` buckets whose width
/// doubles with the magnitude — the classic HdrHistogram layout.
fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS {
        return value as usize;
    }
    // Magnitude 0 is the exact range; higher magnitudes shift the sub-bucket
    // window up. `leading_zeros` is defined here because value >= SUB_BUCKETS.
    let magnitude = 63 - value.leading_zeros() - (SUB_BUCKET_BITS - 1);
    let sub = (value >> magnitude) - SUB_BUCKETS / 2;
    let index = SUB_BUCKETS + (magnitude as u64 - 1) * (SUB_BUCKETS / 2) + sub;
    (index as usize).min(BUCKETS - 1)
}

/// Smallest value that lands in bucket `index` (used to report percentiles:
/// the reported quantile is a lower bound within ~3% of the true value).
fn bucket_floor(index: usize) -> u64 {
    let index = index as u64;
    if index < SUB_BUCKETS {
        return index;
    }
    let magnitude = (index - SUB_BUCKETS) / (SUB_BUCKETS / 2) + 1;
    let sub = (index - SUB_BUCKETS) % (SUB_BUCKETS / 2) + SUB_BUCKETS / 2;
    sub << magnitude
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation. Thread-safe and wait-free.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Largest recorded observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The value at percentile `p` (e.g. `50.0`, `99.0`, `99.9`): a lower
    /// bound within one bucket width (~3%) of the true quantile. Returns 0
    /// when the histogram is empty.
    pub fn percentile(&self, p: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        // The epsilon absorbs binary-float slop (0.999 * 1000 is a hair above
        // 999.0, and ceiling that to 1000 would skip a whole bucket).
        let rank = (((p / 100.0) * total as f64 - 1e-9).ceil().max(1.0) as u64).min(total);
        if rank == total {
            // The top rank is the recorded maximum, known exactly.
            return self.max();
        }
        let mut seen = 0u64;
        for (index, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                // The top bucket's floor can undershoot the recorded max.
                return bucket_floor(index).min(self.max());
            }
        }
        self.max()
    }

    /// Folds every observation recorded in `other` into `self`, bucket by
    /// bucket. Used to aggregate per-shard engine histograms into one
    /// database-wide distribution; both histograms share the fixed layout,
    /// so the merge is exact (no re-bucketing error). Thread-safe, though
    /// a merge racing concurrent `record`s on `other` may miss in-flight
    /// observations.
    pub fn merge_from(&self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max.fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Mean of the recorded observations, using each bucket's floor (0 when
    /// empty).
    pub fn mean(&self) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let mut sum = 0f64;
        for (index, bucket) in self.buckets.iter().enumerate() {
            let n = bucket.load(Ordering::Relaxed);
            if n > 0 {
                sum += bucket_floor(index) as f64 * n as f64;
            }
        }
        sum / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let hist = LatencyHistogram::new();
        for v in 0..SUB_BUCKETS {
            hist.record(v);
        }
        assert_eq!(hist.count(), SUB_BUCKETS);
        assert_eq!(hist.percentile(100.0), SUB_BUCKETS - 1);
        // Every value below SUB_BUCKETS occupies its own bucket.
        for v in 0..SUB_BUCKETS {
            assert_eq!(bucket_floor(bucket_index(v)), v);
        }
    }

    #[test]
    fn bucket_floor_is_a_tight_lower_bound() {
        for value in [0u64, 1, 31, 32, 33, 100, 1_000, 12_345, 1_000_000, 123_456_789] {
            let floor = bucket_floor(bucket_index(value));
            assert!(floor <= value, "floor {floor} must not exceed {value}");
            // Relative error bounded by one sub-bucket width.
            assert!(
                (value - floor) as f64 <= value as f64 / (SUB_BUCKETS as f64 / 2.0) + 1.0,
                "floor {floor} too far below {value}"
            );
        }
    }

    #[test]
    fn buckets_are_monotone_in_value() {
        let mut last = 0usize;
        for value in 0..100_000u64 {
            let index = bucket_index(value);
            assert!(index >= last, "bucket index regressed at {value}");
            last = index;
        }
    }

    #[test]
    fn percentiles_of_a_known_distribution() {
        let hist = LatencyHistogram::new();
        // 1000 observations: 990 at ~100, 9 at ~10_000, 1 at ~1_000_000.
        for _ in 0..990 {
            hist.record(100);
        }
        for _ in 0..9 {
            hist.record(10_000);
        }
        hist.record(1_000_000);
        assert_eq!(hist.count(), 1_000);
        let p50 = hist.percentile(50.0);
        assert!((96..=100).contains(&p50), "p50 {p50} should be ~100");
        let p99 = hist.percentile(99.0);
        assert!((96..=100).contains(&p99), "p99 {p99} should still be ~100");
        let p999 = hist.percentile(99.9);
        assert!((9_216..=10_000).contains(&p999), "p999 {p999} should be ~10_000");
        assert_eq!(hist.percentile(100.0), hist.max().min(1_000_000));
        assert!(hist.mean() > 100.0 && hist.mean() < 2_000.0);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let hist = LatencyHistogram::new();
        assert_eq!(hist.count(), 0);
        assert_eq!(hist.max(), 0);
        assert_eq!(hist.percentile(99.0), 0);
        assert_eq!(hist.mean(), 0.0);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let hist = LatencyHistogram::new();
        hist.record(1_234);
        assert_eq!(hist.count(), 1);
        assert_eq!(hist.max(), 1_234);
        // With one observation, every quantile is that observation — and the
        // top rank reports the recorded max exactly, not a bucket floor.
        for p in [0.0, 0.1, 50.0, 99.0, 99.9, 100.0] {
            assert_eq!(hist.percentile(p), 1_234, "p{p}");
        }
        assert!(hist.mean() > 0.0 && hist.mean() <= 1_234.0);
    }

    #[test]
    fn values_beyond_the_top_bucket_clamp_without_panicking() {
        let hist = LatencyHistogram::new();
        // The layout covers ~2.2e12 exactly; these all land in (or clamp to)
        // the top bucket. `record` must neither panic nor lose counts, `max`
        // stays exact, and percentile reporting caps at the recorded max.
        let top_exact = SUB_BUCKETS << MAGNITUDES;
        for v in [top_exact - 1, top_exact, top_exact * 2, u64::MAX / 2, u64::MAX] {
            hist.record(v);
        }
        assert_eq!(hist.count(), 5);
        assert_eq!(hist.max(), u64::MAX);
        assert_eq!(hist.percentile(100.0), u64::MAX);
        // Lower quantiles come from the clamped top buckets: they must be
        // positive and at least the layout's exact range.
        let p50 = hist.percentile(50.0);
        assert!(p50 >= top_exact / 2, "p50 {p50} should sit in the top magnitudes");
        // bucket_index itself clamps rather than indexing out of bounds.
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn quantiles_are_monotone_in_p() {
        let hist = LatencyHistogram::new();
        // A spread that crosses several magnitudes, including duplicates.
        let mut v = 3u64;
        for _ in 0..5_000 {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            hist.record(v % 5_000_000);
        }
        let ps = [0.0, 1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9, 99.99, 100.0];
        let mut last = 0u64;
        for p in ps {
            let q = hist.percentile(p);
            assert!(q >= last, "percentile regressed at p{p}: {q} < {last}");
            last = q;
        }
        assert_eq!(hist.percentile(100.0), hist.max());
    }

    #[test]
    fn zero_sample_percentiles_are_zero_for_every_p() {
        let hist = LatencyHistogram::new();
        for p in [0.0, 50.0, 99.9, 100.0] {
            assert_eq!(hist.percentile(p), 0);
        }
    }

    #[test]
    fn merge_from_is_exact_across_magnitudes() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        let combined = LatencyHistogram::new();
        for v in [5u64, 100, 10_000, 1_000_000] {
            a.record(v);
            combined.record(v);
        }
        for v in [7u64, 300, 2_000_000, 9] {
            b.record(v);
            combined.record(v);
        }
        let merged = LatencyHistogram::new();
        merged.merge_from(&a);
        merged.merge_from(&b);
        assert_eq!(merged.count(), combined.count());
        assert_eq!(merged.max(), combined.max());
        for p in [0.0, 25.0, 50.0, 75.0, 99.0, 100.0] {
            assert_eq!(merged.percentile(p), combined.percentile(p), "p{p}");
        }
    }

    #[test]
    fn merging_an_empty_histogram_changes_nothing() {
        let hist = LatencyHistogram::new();
        hist.record(42);
        hist.merge_from(&LatencyHistogram::new());
        assert_eq!(hist.count(), 1);
        assert_eq!(hist.max(), 42);
        assert_eq!(hist.percentile(100.0), 42);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        use std::sync::Arc;
        let hist = Arc::new(LatencyHistogram::new());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let hist = Arc::clone(&hist);
            handles.push(std::thread::spawn(move || {
                for i in 0..10_000u64 {
                    hist.record(t * 1_000 + i % 500);
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(hist.count(), 40_000);
    }
}
