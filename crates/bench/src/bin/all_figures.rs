//! Runs every figure of the evaluation in sequence. Pass `--full` for paper-scale runs.

use triad_bench::experiments::{
    fig10_breakdown, fig11_wa_ra, fig2_background_io, fig7_profiles, fig9a_production,
    fig9d_io_time, grid, scenarios, summary, write_scaling,
};
use triad_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    println!("Running every TRIAD evaluation figure at {scale:?} scale...");
    fig7_profiles::run(scale).expect("figure 7/8");
    fig2_background_io::run(scale).expect("figure 2");
    fig9a_production::run(scale).expect("figure 9A");
    let points = grid::run_grid(scale).expect("figure 9B/9C grid");
    grid::print_throughput(&points);
    grid::print_write_amplification(&points);
    fig9d_io_time::run(scale).expect("figure 9D");
    fig10_breakdown::run(scale).expect("figure 10");
    fig11_wa_ra::run_write_amplification(scale).expect("figure 11 WA");
    fig11_wa_ra::run_read_amplification(scale).expect("figure 11 RA");
    summary::run(scale).expect("summary");
    write_scaling::run(scale).expect("write scaling");
    scenarios::run(scale).expect("scenario suite");
    println!("\nAll figures regenerated.");
}
