// lint-fixture: crates/sstable/src/reader.rs
// An ad-hoc deletion outside GC: a live version may still reference this
// file. The copy inside the test module is exempt.

fn evict(&self, path: &Path) {
    std::fs::remove_file(path);
}

#[cfg(test)]
mod tests {
    fn cleanup(path: &Path) {
        std::fs::remove_file(path);
    }
}
