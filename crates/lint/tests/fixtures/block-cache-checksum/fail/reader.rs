// lint-fixture: crates/sstable/src/reader.rs
// The marked region is intact, but a second `.get_or_load(` call below it
// feeds the cache with bytes that never went through checksum verification.

fn read_data_block(&self, handle: BlockHandle) -> Result<Arc<Block>> {
    // BLOCK-CACHE-CHECKSUM-BEGIN: blocks entering the shared cache are decoded
    // from `read_block`, the checksum-verified read path.
    if let Some(ctx) = &self.fetch {
        return ctx.fetch.get_or_load(ctx.table_id, handle.offset, self.stats.as_deref(), &|| {
            Block::new(self.reader.read_block(handle)?)
        });
    }
    // BLOCK-CACHE-CHECKSUM-END
    Block::new(self.reader.read_block(handle)?).map(Arc::new)
}

fn read_data_block_raw(&self, handle: BlockHandle) -> Result<Arc<Block>> {
    let ctx = self.fetch.as_ref().unwrap();
    ctx.fetch.get_or_load(ctx.table_id, handle.offset, None, &|| {
        Block::from_unverified_bytes(self.reader.read_raw(handle)?)
    })
}
