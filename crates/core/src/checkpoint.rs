//! Crash-consistent checkpoints: [`Db::checkpoint`] materializes a frozen,
//! openable copy of the database into a fresh directory.
//!
//! # Protocol
//!
//! A checkpoint is taken in two phases per shard:
//!
//! 1. **Under the shard-spanning capture gate** (the same protocol as a
//!    shard-spanning [`Snapshot`](crate::Snapshot) —
//!    `snapshot::capture_all_shards`): the commit pipeline is drained, the
//!    watermark seqno sits on a commit-group boundary, and the shard's
//!    *mutable* log state is captured — the active commit log's current
//!    prefix is **copied** byte-for-byte (it keeps growing the moment the
//!    gate opens, so a hard link would capture future bytes), and each sealed
//!    but unflushed memtable's log is hard-linked (these are immutable, but
//!    they are *not* version-pinned, so they must be captured while the WAL
//!    lock blocks the collector). The shard's version is pinned and its
//!    manifest counters recorded.
//! 2. **After the gate releases**: every file the pinned version references —
//!    tables, CL indexes, backing commit logs — is hard-linked into the
//!    checkpoint (the pin keeps them alive; links survive any later primary
//!    deletion), and a fresh single-snapshot manifest plus `CURRENT` pointer
//!    are written describing exactly the captured state.
//!
//! Every hard link falls back to a byte copy per file when linking fails —
//! a checkpoint directory on a different filesystem (`EXDEV`) degrades to a
//! copy, it does not fail midway. The split is observable as
//! `checkpoint_files_linked` / `checkpoint_files_copied` in [`Stats`].
//!
//! # Partial checkpoints are detectable
//!
//! The first file created in the target directory is a `CHECKPOINT-PENDING`
//! marker; it is removed only after every shard's manifest (and, on a sharded
//! database, the root `SHARDS` marker — written last) is in place. A crash or
//! injected failure mid-checkpoint (`checkpoint.after_link`,
//! `checkpoint.before_manifest`, `checkpoint.link` failpoints) therefore
//! leaves the marker behind: [`Db::open`] refuses such a directory with
//! [`Error::Corruption`], and the caller can delete the directory wholesale.
//! The primary is never mutated by a checkpoint, failed or not.
//!
//! All filesystem mutation in this module is confined to the marked
//! `CHECKPOINT-FS` region below, enforced by `triad-lint`'s
//! `checkpoint-fs-region` rule.
//!
//! [`Stats`]: triad_common::Stats

use std::fs::File;
use std::io::Read;
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;

use triad_common::failpoint::FailpointRegistry;
use triad_common::types::SeqNo;
use triad_common::{Error, Result, Stats};
use triad_wal::log_file_name;

use crate::db::{Db, DbInner, PinnedVersion, WalState};
use crate::manifest::VersionSet;
use crate::snapshot::{capture_all_shards, Snapshot};

/// Name of the in-progress marker file. Present in a checkpoint directory
/// only while the checkpoint is being built; a directory that still has it
/// is a partial checkpoint and is refused by [`Db::open`].
pub(crate) const PENDING_MARKER: &str = "CHECKPOINT-PENDING";

/// What phase 1 captured for one shard, consumed by phase 2.
struct ShardCapture {
    /// The shard's commit-group-boundary watermark seqno.
    seqno: SeqNo,
    /// Keeps every file of the captured version on disk until phase 2 is done.
    pin: PinnedVersion,
    /// The primary's file-number counter at capture; every captured file id
    /// is below it, so the checkpoint's manifest takes this id conflict-free.
    next_file_number: u64,
    /// The primary's replay horizon at capture: the copied active-log prefix
    /// and the linked sealed logs sit at or past it, so opening the
    /// checkpoint replays exactly them.
    log_number: u64,
    /// The checkpoint directory of this shard.
    shard_dir: PathBuf,
    /// The shard's own (primary) directory, the link/copy source.
    shard_root: PathBuf,
}

impl Db {
    /// Writes a crash-consistent checkpoint of the entire database into
    /// `dir`, which must be empty or absent, and returns a [`Snapshot`]
    /// pinned at exactly the checkpoint's cut.
    ///
    /// The checkpoint directory is a self-contained database: opening it with
    /// [`Db::open`] recovers precisely the state the returned snapshot reads
    /// — the same commit-group (and cross-shard batch) boundaries, taken
    /// under the shard-spanning capture gate while concurrent writers keep
    /// committing. Files shared with the primary are hard-linked where the
    /// filesystem allows and copied otherwise, so a checkpoint onto a
    /// different filesystem works per file rather than failing midway.
    ///
    /// A checkpoint that fails partway (crash, injected failpoint, I/O
    /// error) leaves a `CHECKPOINT-PENDING` marker in `dir`; [`Db::open`]
    /// refuses the directory and the caller may simply remove it. The
    /// primary is never mutated.
    ///
    /// To seed a [`Replica`](crate::Replica) from the checkpoint, call
    /// [`Db::hold_wal_for_replication`] first so the primary retains the
    /// logs the follower will need to catch up.
    pub fn checkpoint(&self, dir: impl AsRef<Path>) -> Result<Snapshot> {
        let dir = dir.as_ref();
        prepare_target(dir)?;

        let sharded = self.shards.len() > 1;
        let (snapshot, captures) =
            capture_all_shards(&self.shards, &self.router, |index, shard, wal| {
                let shard_dir = if sharded {
                    dir.join(crate::shard::dir_name(index))
                } else {
                    dir.to_path_buf()
                };
                capture_shard_locked(&shard.inner, wal, shard_dir, &self.failpoints)
            })?;

        // Phase 2, off the gate: writers are running again; the version pins
        // keep every referenced file alive until its link lands.
        for capture in &captures {
            finish_shard(capture, &self.shards[0].inner.stats, &self.failpoints)?;
        }
        if sharded {
            crate::shard::write_marker(dir, self.shards.len())?;
        }
        finalize_target(dir)?;
        self.shards[0].inner.stats.add_checkpoints_created(1);
        Ok(snapshot)
    }
}

/// Phase 1 for one shard. Runs with the shard's WAL lock held and its commit
/// pipeline drained (inside the snapshot gate), so the active log cannot
/// rotate, the sealed list cannot change, and the collector — which takes the
/// WAL lock — cannot delete a sealed log out from under the link.
fn capture_shard_locked(
    inner: &DbInner,
    wal: &mut WalState,
    shard_dir: PathBuf,
    failpoints: &FailpointRegistry,
) -> Result<ShardCapture> {
    create_dir(&shard_dir)?;

    // Push buffered appends to the OS so the prefix copy below reads every
    // appended byte. Drained pipeline ⇒ every appended record is published,
    // so the whole prefix sits at or below the watermark seqno.
    wal.writer.flush()?;
    let active_len = wal.writer.size();
    let active = log_file_name(wal.id);
    copy_prefix(&inner.path.join(&active), &shard_dir.join(&active), active_len, &inner.stats)?;

    // Sealed-but-unflushed logs: immutable, but only the imm list (not any
    // version) protects them, hence captured under the lock. A hard link
    // keeps the inode alive even after the primary flushes and deletes them.
    for imm in inner.imm.read().iter() {
        let name = log_file_name(imm.wal_id);
        link_or_copy(&inner.path.join(&name), &shard_dir.join(&name), &inner.stats, failpoints)?;
    }

    // Retained batch-stamp evidence logs: sub-horizon logs the retention
    // registry keeps on disk because they hold the last proof that an
    // in-flight cross-shard batch committed everywhere (`stamps.rs`). A
    // reopen of this checkpoint re-reads them as evidence, exactly like
    // crash recovery on the primary would. Captured under the WAL lock (the
    // collector takes it too, so nothing is deleted mid-link); the `exists`
    // guard keeps a log that doubles as the active or a sealed log from
    // clobbering the prefix copy above.
    for log_id in inner.stamps.retained_logs(inner.shard_index) {
        let name = log_file_name(log_id);
        let dst = shard_dir.join(&name);
        if dst.exists() {
            continue;
        }
        link_or_copy(&inner.path.join(&name), &dst, &inner.stats, failpoints)?;
    }

    let (next_file_number, log_number) = {
        let versions = inner.versions.lock();
        (versions.next_file_number(), versions.log_number())
    };
    Ok(ShardCapture {
        seqno: inner.last_seqno.load(Ordering::Acquire),
        pin: inner.pin_current_version(),
        next_file_number,
        log_number,
        shard_dir,
        shard_root: inner.path.clone(),
    })
}

/// Phase 2 for one shard: link (or copy) every version-referenced file, then
/// write the checkpoint's manifest and `CURRENT` pointer.
fn finish_shard(
    capture: &ShardCapture,
    stats: &Stats,
    failpoints: &FailpointRegistry,
) -> Result<()> {
    for name in capture.pin.referenced_file_names() {
        let dst = capture.shard_dir.join(&name);
        // Belt and braces: never clobber a file phase 1 already materialized.
        if dst.exists() {
            continue;
        }
        link_or_copy(&capture.shard_root.join(&name), &dst, stats, failpoints)?;
    }
    failpoints.check("checkpoint.after_link")?;
    failpoints.check("checkpoint.before_manifest")?;
    VersionSet::write_snapshot_manifest(
        &capture.shard_dir,
        capture.pin.version(),
        capture.next_file_number,
        capture.seqno,
        capture.log_number,
    )
}

// CHECKPOINT-FS-BEGIN: every filesystem mutation a checkpoint performs lives
// between these markers (enforced by triad-lint's `checkpoint-fs-region`
// rule), so the whole on-disk footprint of the feature is auditable in one
// place. Nothing here ever touches a primary-owned path destructively: the
// only targets are the fresh checkpoint directory and the pending marker.

/// Validates the target directory (must be empty or absent) and drops the
/// `CHECKPOINT-PENDING` marker into it before anything else.
fn prepare_target(dir: &Path) -> Result<()> {
    std::fs::create_dir_all(dir)
        .map_err(|e| Error::io(format!("creating checkpoint directory {}", dir.display()), e))?;
    let mut entries = std::fs::read_dir(dir)
        .map_err(|e| Error::io(format!("listing checkpoint directory {}", dir.display()), e))?;
    if entries.next().is_some() {
        return Err(Error::InvalidArgument(format!(
            "checkpoint target {} is not empty",
            dir.display()
        )));
    }
    let marker = dir.join(PENDING_MARKER);
    let file = File::create(&marker)
        .map_err(|e| Error::io(format!("creating {}", marker.display()), e))?;
    file.sync_all().map_err(|e| Error::io(format!("syncing {}", marker.display()), e))
}

/// Removes the pending marker — the checkpoint's commit point: from here on
/// the directory is a complete, openable database.
fn finalize_target(dir: &Path) -> Result<()> {
    let marker = dir.join(PENDING_MARKER);
    std::fs::remove_file(&marker)
        .map_err(|e| Error::io(format!("removing {}", marker.display()), e))
}

/// Creates one shard's checkpoint directory.
fn create_dir(dir: &Path) -> Result<()> {
    std::fs::create_dir_all(dir)
        .map_err(|e| Error::io(format!("creating checkpoint shard directory {}", dir.display()), e))
}

/// Hard-links `src` to `dst`, falling back to a full byte copy when the link
/// fails (different filesystem, or a filesystem without hard links). The
/// `checkpoint.link` failpoint forces the fallback, simulating `EXDEV`.
fn link_or_copy(
    src: &Path,
    dst: &Path,
    stats: &Stats,
    failpoints: &FailpointRegistry,
) -> Result<()> {
    if failpoints.check("checkpoint.link").is_ok() && std::fs::hard_link(src, dst).is_ok() {
        stats.add_checkpoint_files_linked(1);
        return Ok(());
    }
    std::fs::copy(src, dst)
        .map_err(|e| Error::io(format!("copying {} to {}", src.display(), dst.display()), e))?;
    sync_file(dst)?;
    stats.add_checkpoint_files_copied(1);
    Ok(())
}

/// Copies exactly the first `len` bytes of `src` to `dst` and syncs the copy.
/// Used for the active commit log, whose tail keeps growing on the primary:
/// the captured prefix must end at the drained-pipeline boundary.
fn copy_prefix(src: &Path, dst: &Path, len: u64, stats: &Stats) -> Result<()> {
    let file = File::open(src)
        .map_err(|e| Error::io(format!("opening {} for checkpoint", src.display()), e))?;
    let mut bytes = Vec::with_capacity(len as usize);
    file.take(len)
        .read_to_end(&mut bytes)
        .map_err(|e| Error::io(format!("reading {} for checkpoint", src.display()), e))?;
    if (bytes.len() as u64) < len {
        return Err(Error::corruption_at(
            format!("active commit log shorter than its flushed size ({} < {len})", bytes.len()),
            src,
        ));
    }
    std::fs::write(dst, &bytes)
        .map_err(|e| Error::io(format!("writing checkpoint log {}", dst.display()), e))?;
    sync_file(dst)?;
    stats.add_checkpoint_files_copied(1);
    Ok(())
}

/// Fsyncs a freshly copied checkpoint file.
fn sync_file(path: &Path) -> Result<()> {
    File::open(path)
        .and_then(|file| file.sync_all())
        .map_err(|e| Error::io(format!("syncing checkpoint file {}", path.display()), e))
}

// CHECKPOINT-FS-END
