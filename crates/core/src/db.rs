//! The database engine: write path, read path, recovery and background scheduling.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam_channel::{Receiver, Sender};
use parking_lot::{Mutex, RwLock};

use triad_common::failpoint::FailpointRegistry;
use triad_common::types::{Entry, SeqNo, ValueKind};
use triad_common::{Error, Result, StatSnapshot, Stats};
use triad_memtable::{LogPosition, Memtable};
use triad_sstable::{sst_file_path, TableBuilder, TableBuilderOptions};
use triad_wal::{log_file_path, parse_log_file_name, LogReader, LogRecord, LogWriter};

use crate::batch::{BatchOp, WriteBatch, WriteOptions};
use crate::iterator::DbIterator;
use crate::manifest::VersionSet;
use crate::options::{BackgroundIoMode, Options, SyncMode};
use crate::table_cache::TableCache;
use crate::version::{FileMetadata, Version, VersionEdit};

/// The state protected by the write mutex: the active commit log.
#[derive(Debug)]
pub(crate) struct WalState {
    pub(crate) writer: LogWriter,
    pub(crate) id: u64,
    pub(crate) writes_since_sync: u64,
}

/// A memory component that has been sealed and is waiting to be flushed.
#[derive(Debug)]
pub(crate) struct ImmutableMemtable {
    pub(crate) memtable: Arc<Memtable>,
    /// The commit log that was active while this memtable absorbed writes.
    pub(crate) wal_id: u64,
}

/// Messages sent to the background worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WorkItem {
    /// One or more immutable memtables are waiting to be flushed.
    Flush,
    /// Re-evaluate whether a compaction is needed.
    Compact,
    /// Stop the worker.
    Shutdown,
}

/// Shared engine state.
pub(crate) struct DbInner {
    pub(crate) path: PathBuf,
    pub(crate) options: Options,
    pub(crate) stats: Arc<Stats>,
    pub(crate) failpoints: FailpointRegistry,
    /// Serialises writers and guards the active commit log.
    pub(crate) wal: Mutex<WalState>,
    /// The active memory component.
    pub(crate) mem: RwLock<Arc<Memtable>>,
    /// Sealed memory components awaiting flush, oldest first.
    pub(crate) imm: RwLock<Vec<Arc<ImmutableMemtable>>>,
    /// The version set (manifest); also the allocator of file numbers.
    pub(crate) versions: Mutex<VersionSet>,
    /// Cached copy of the current version for the read path.
    pub(crate) current_version: RwLock<Arc<Version>>,
    pub(crate) table_cache: TableCache,
    /// Largest sequence number whose effects are visible to readers.
    pub(crate) last_seqno: AtomicU64,
    pub(crate) shutdown: AtomicBool,
    pub(crate) work_tx: Sender<WorkItem>,
}

impl std::fmt::Debug for DbInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DbInner").field("path", &self.path).finish()
    }
}

/// A TRIAD (or baseline) LSM key-value store.
///
/// `Db` is cheap to clone-by-reference via [`Arc`]; all methods take `&self` and are
/// safe to call from multiple threads.
#[derive(Debug)]
pub struct Db {
    inner: Arc<DbInner>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl Db {
    /// Opens (creating or recovering) the database at `path`.
    pub fn open(path: impl AsRef<Path>, options: Options) -> Result<Db> {
        Self::open_with_failpoints(path, options, FailpointRegistry::new())
    }

    /// Opens the database with an explicit failpoint registry (used by recovery tests).
    pub fn open_with_failpoints(
        path: impl AsRef<Path>,
        options: Options,
        failpoints: FailpointRegistry,
    ) -> Result<Db> {
        options.validate()?;
        let path = path.as_ref().to_path_buf();
        std::fs::create_dir_all(&path)
            .map_err(|e| Error::io(format!("creating database directory {}", path.display()), e))?;

        let stats = Arc::new(Stats::new());
        let mut versions = VersionSet::recover(&path, options.num_levels)?;
        let mut last_seqno = versions.last_seqno();

        // Replay commit logs that are not owned by a live CL-SSTable: each such log
        // holds updates that never reached an SSTable. Each log becomes one L0 table,
        // in log-id order, so newer logs shadow older ones.
        let live_backing_logs = versions.current().live_backing_logs();
        let mut stray_logs: Vec<u64> = Vec::new();
        for entry in
            std::fs::read_dir(&path).map_err(|e| Error::io("listing database directory", e))?
        {
            let entry = entry.map_err(|e| Error::io("listing database directory", e))?;
            if let Some(id) = parse_log_file_name(&entry.file_name().to_string_lossy()) {
                if !live_backing_logs.contains(&id) {
                    stray_logs.push(id);
                }
            }
        }
        stray_logs.sort_unstable();
        for log_id in &stray_logs {
            last_seqno = last_seqno.max(Self::replay_log(&path, *log_id, &mut versions, &options)?);
        }
        for log_id in &stray_logs {
            let _ = std::fs::remove_file(log_file_path(&path, *log_id));
        }
        versions.set_last_seqno(last_seqno);

        // Fresh commit log and memtable for new writes.
        let wal_id = versions.allocate_file_number();
        let wal_writer = LogWriter::create(log_file_path(&path, wal_id), wal_id)?;
        let current_version = versions.current();

        let (work_tx, work_rx) = crossbeam_channel::unbounded();
        let inner = Arc::new(DbInner {
            table_cache: TableCache::new(path.clone(), Arc::clone(&stats)),
            path,
            options,
            stats,
            failpoints,
            wal: Mutex::new(WalState { writer: wal_writer, id: wal_id, writes_since_sync: 0 }),
            mem: RwLock::new(Arc::new(Memtable::new())),
            imm: RwLock::new(Vec::new()),
            versions: Mutex::new(versions),
            current_version: RwLock::new(current_version),
            last_seqno: AtomicU64::new(last_seqno),
            shutdown: AtomicBool::new(false),
            work_tx,
        });

        let worker = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("triad-background".to_string())
                .spawn(move || background_worker(inner, work_rx))
                .map_err(|e| Error::io("spawning background worker", e))?
        };

        Ok(Db { inner, worker: Mutex::new(Some(worker)) })
    }

    /// Rebuilds one stray commit log into an L0 SSTable during recovery.
    ///
    /// Returns the largest sequence number seen in the log.
    fn replay_log(
        path: &Path,
        log_id: u64,
        versions: &mut VersionSet,
        options: &Options,
    ) -> Result<SeqNo> {
        let log_path = log_file_path(path, log_id);
        let reader = LogReader::open(&log_path)?;
        let (records, _tail) = reader.recover()?;
        if records.is_empty() {
            return Ok(0);
        }
        let mut latest: std::collections::BTreeMap<Vec<u8>, (SeqNo, ValueKind, Vec<u8>)> =
            std::collections::BTreeMap::new();
        let mut max_seqno = 0;
        for recovered in records {
            let record = recovered.record;
            max_seqno = max_seqno.max(record.seqno);
            match latest.get(&record.key) {
                Some((existing_seqno, _, _)) if *existing_seqno >= record.seqno => {}
                _ => {
                    latest.insert(record.key, (record.seqno, record.kind, record.value));
                }
            }
        }
        let file_id = versions.allocate_file_number();
        let sst_path = sst_file_path(path, file_id);
        let table_options = TableBuilderOptions {
            block_size: options.block_size,
            bloom_bits_per_key: options.bloom_bits_per_key,
        };
        let mut builder = TableBuilder::create(&sst_path, table_options)?;
        for (key, (seqno, kind, value)) in &latest {
            let ikey = triad_common::types::InternalKey::new(key.clone(), *seqno, *kind);
            builder.add(&ikey, value)?;
        }
        let (props, size) = builder.finish()?;
        let file = FileMetadata {
            id: file_id,
            level: 0,
            kind: triad_sstable::TableKind::Block,
            size,
            num_entries: props.num_entries,
            smallest: props.smallest.clone().expect("non-empty table"),
            largest: props.largest.clone().expect("non-empty table"),
            hll: props.hll.clone(),
            backing_log_id: None,
        };
        versions.log_and_apply(VersionEdit {
            added: vec![file],
            last_seqno: Some(max_seqno),
            ..Default::default()
        })?;
        Ok(max_seqno)
    }

    /// Inserts or updates `key`.
    pub fn put(&self, key: impl AsRef<[u8]>, value: impl AsRef<[u8]>) -> Result<()> {
        self.put_opt(key, value, WriteOptions::default())
    }

    /// Inserts or updates `key` with explicit write options.
    pub fn put_opt(
        &self,
        key: impl AsRef<[u8]>,
        value: impl AsRef<[u8]>,
        opts: WriteOptions,
    ) -> Result<()> {
        let mut batch = WriteBatch::new();
        batch.put(key.as_ref().to_vec(), value.as_ref().to_vec());
        self.write(batch, opts)
    }

    /// Deletes `key`.
    pub fn delete(&self, key: impl AsRef<[u8]>) -> Result<()> {
        let mut batch = WriteBatch::new();
        batch.delete(key.as_ref().to_vec());
        self.write(batch, WriteOptions::default())
    }

    /// Applies a [`WriteBatch`] atomically with respect to the commit log.
    pub fn write(&self, batch: WriteBatch, opts: WriteOptions) -> Result<()> {
        self.inner.write_batch(batch, opts)
    }

    /// Returns the current value of `key`, or `None` if it does not exist (or was
    /// deleted).
    pub fn get(&self, key: impl AsRef<[u8]>) -> Result<Option<Vec<u8>>> {
        self.inner.get(key.as_ref())
    }

    /// Returns an iterator over every live key/value pair in key order.
    pub fn scan(&self) -> Result<DbIterator> {
        self.scan_range(None, None)
    }

    /// Returns an iterator over the live key/value pairs with user keys in
    /// `[start, end)`; either bound may be omitted.
    pub fn scan_range(&self, start: Option<&[u8]>, end: Option<&[u8]>) -> Result<DbIterator> {
        // Building the iterator opens every table of the current version; retry if a
        // concurrent compaction removed a file out from under a stale version.
        DbInner::retry_stale_version(|| {
            DbIterator::with_bounds(&self.inner, start.map(|s| s.to_vec()), end.map(|e| e.to_vec()))
        })
    }

    /// Forces the active memtable to be sealed and flushed, then waits for every
    /// pending flush to complete. Primarily useful in tests and benchmarks.
    pub fn flush(&self) -> Result<()> {
        self.inner.force_rotate()?;
        self.inner.wait_for_pending_flushes()
    }

    /// Blocks until no compaction work is pending (used by benchmarks to measure
    /// steady-state sizes).
    pub fn wait_for_compactions(&self) -> Result<()> {
        self.inner.wait_for_pending_flushes()?;
        loop {
            if self.inner.shutdown.load(Ordering::SeqCst) {
                return Ok(());
            }
            if !self.inner.compaction_needed() {
                return Ok(());
            }
            let _ = self.inner.work_tx.send(WorkItem::Compact);
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
    }

    /// A snapshot of the engine statistics.
    pub fn stats(&self) -> StatSnapshot {
        self.inner.stats.snapshot()
    }

    /// The shared statistics registry (counters keep updating as the engine runs).
    pub fn stats_handle(&self) -> Arc<Stats> {
        Arc::clone(&self.inner.stats)
    }

    /// The engine options this database was opened with.
    pub fn options(&self) -> &Options {
        &self.inner.options
    }

    /// The database directory.
    pub fn path(&self) -> &Path {
        &self.inner.path
    }

    /// Number of files per level in the current version (index = level).
    pub fn files_per_level(&self) -> Vec<usize> {
        let version = self.inner.current_version.read().clone();
        (0..version.num_levels()).map(|l| version.num_files(l)).collect()
    }

    /// Total on-disk size of every level, in bytes.
    pub fn disk_usage(&self) -> u64 {
        let version = self.inner.current_version.read().clone();
        (0..version.num_levels()).map(|l| version.level_size(l)).sum()
    }

    /// The failpoint registry used by this instance (for tests).
    pub fn failpoints(&self) -> &FailpointRegistry {
        &self.inner.failpoints
    }

    /// Closes the database, stopping background work and syncing the commit log.
    ///
    /// Dropping the handle performs the same shutdown.
    pub fn close(&self) -> Result<()> {
        if self.inner.shutdown.swap(true, Ordering::SeqCst) {
            return Ok(());
        }
        let _ = self.inner.work_tx.send(WorkItem::Shutdown);
        if let Some(handle) = self.worker.lock().take() {
            let _ = handle.join();
        }
        // Make sure everything appended so far survives a process exit.
        let mut wal = self.inner.wal.lock();
        wal.writer.sync()?;
        Ok(())
    }
}

impl Drop for Db {
    fn drop(&mut self) {
        let _ = self.close();
    }
}

impl DbInner {
    /// Applies a batch: append every operation to the commit log, then insert into
    /// the active memtable, then decide whether a rotation is needed.
    pub(crate) fn write_batch(&self, batch: WriteBatch, opts: WriteOptions) -> Result<()> {
        if self.shutdown.load(Ordering::SeqCst) {
            return Err(Error::ShuttingDown);
        }
        if batch.is_empty() {
            return Ok(());
        }
        self.failpoints.check("write.before_wal_append")?;

        let mut wal = self.wal.lock();
        let mem = self.mem.read().clone();
        let mut seqno = self.last_seqno.load(Ordering::Acquire);
        for BatchOp { kind, key, value } in &batch.ops {
            seqno += 1;
            let record = LogRecord { seqno, kind: *kind, key: key.clone(), value: value.clone() };
            let offset = wal.writer.append(&record)?;
            let record_bytes = triad_wal::RECORD_HEADER_LEN as u64 + record.encoded_len() as u64;
            self.stats.add_wal_appends(1);
            self.stats.add_wal_bytes_written(record_bytes);
            self.stats.add_user_bytes_written((key.len() + value.len()) as u64);
            match kind {
                ValueKind::Put => self.stats.add_user_writes(1),
                ValueKind::Delete => self.stats.add_user_deletes(1),
            }
            mem.insert(key, value, seqno, *kind, LogPosition { log_id: wal.id, offset });
        }
        wal.writes_since_sync += batch.ops.len() as u64;
        let force_sync = opts.sync;
        match self.options.sync_mode {
            SyncMode::SyncEveryWrite => {
                wal.writer.sync()?;
                self.stats.add_wal_syncs(1);
                wal.writes_since_sync = 0;
            }
            SyncMode::SyncEvery(n) if wal.writes_since_sync >= n => {
                wal.writer.sync()?;
                self.stats.add_wal_syncs(1);
                wal.writes_since_sync = 0;
            }
            _ => {
                if force_sync {
                    wal.writer.sync()?;
                    self.stats.add_wal_syncs(1);
                    wal.writes_since_sync = 0;
                } else {
                    wal.writer.flush()?;
                }
            }
        }
        self.last_seqno.store(seqno, Ordering::Release);

        let mem_size = mem.approximate_size();
        let wal_size = wal.writer.size();
        if mem_size >= self.options.memtable_size || wal_size as usize >= self.options.max_log_size
        {
            self.rotate_locked(&mut wal, mem_size)?;
        }
        Ok(())
    }

    /// Rotates the commit log and (usually) seals the memtable. Must be called with
    /// the WAL lock held.
    fn rotate_locked(&self, wal: &mut WalState, mem_size: usize) -> Result<()> {
        let triad = &self.options.triad;
        let mem = self.mem.read().clone();

        // TRIAD-MEM's FLUSH_TH rule: the flush trigger fired (typically because the
        // log filled up with updates to hot keys) but the memtable itself is small.
        // Instead of flushing a tiny file, rewrite the fresh values into a new log
        // and keep everything in memory (paper Algorithm 1, lines 14-20).
        if triad.mem_enabled
            && mem_size < triad.flush_skip_threshold_bytes
            && self.options.background_io == BackgroundIoMode::Enabled
        {
            self.failpoints.check("rotate.small_flush_skip")?;
            let new_id = self.versions.lock().allocate_file_number();
            let mut new_writer = LogWriter::create(log_file_path(&self.path, new_id), new_id)?;
            for (key, entry) in mem.snapshot_entries() {
                let record = LogRecord {
                    seqno: entry.seqno,
                    kind: entry.kind,
                    key: key.clone(),
                    value: entry.value,
                };
                let offset = new_writer.append(&record)?;
                self.stats.add_wal_appends(1);
                self.stats.add_wal_bytes_written(
                    triad_wal::RECORD_HEADER_LEN as u64 + record.encoded_len() as u64,
                );
                mem.update_log_position(&key, entry.seqno, LogPosition { log_id: new_id, offset });
            }
            new_writer.flush()?;
            let old_id = wal.id;
            let old_writer = std::mem::replace(&mut wal.writer, new_writer);
            wal.id = new_id;
            wal.writes_since_sync = 0;
            drop(old_writer);
            let _ = std::fs::remove_file(log_file_path(&self.path, old_id));
            self.stats.add_small_flush_skips(1);
            self.stats.add_wal_rotations(1);
            return Ok(());
        }

        // Figure 2 mode: discard the full memtable instead of flushing it.
        if self.options.background_io == BackgroundIoMode::Disabled {
            let new_id = self.versions.lock().allocate_file_number();
            let new_writer = LogWriter::create(log_file_path(&self.path, new_id), new_id)?;
            let old_id = wal.id;
            let old_writer = std::mem::replace(&mut wal.writer, new_writer);
            wal.id = new_id;
            wal.writes_since_sync = 0;
            drop(old_writer);
            let _ = std::fs::remove_file(log_file_path(&self.path, old_id));
            *self.mem.write() = Arc::new(Memtable::new());
            self.stats.add_wal_rotations(1);
            return Ok(());
        }

        // Regular rotation: seal the log and the memtable, hand both to the flusher.
        self.failpoints.check("rotate.seal")?;
        let new_id = self.versions.lock().allocate_file_number();
        let new_writer = LogWriter::create(log_file_path(&self.path, new_id), new_id)?;
        let old_id = wal.id;
        let old_writer = std::mem::replace(&mut wal.writer, new_writer);
        wal.id = new_id;
        wal.writes_since_sync = 0;
        old_writer.seal()?;

        let sealed = Arc::new(ImmutableMemtable { memtable: Arc::clone(&mem), wal_id: old_id });
        self.imm.write().push(sealed);
        *self.mem.write() = Arc::new(Memtable::new());
        self.stats.add_wal_rotations(1);
        let _ = self.work_tx.send(WorkItem::Flush);
        Ok(())
    }

    /// Seals the current memtable even if it is not full (used by `Db::flush`).
    pub(crate) fn force_rotate(&self) -> Result<()> {
        let mut wal = self.wal.lock();
        let mem = self.mem.read().clone();
        if mem.is_empty() {
            return Ok(());
        }
        // Bypass the small-flush rule: an explicit flush should always persist.
        let new_id = self.versions.lock().allocate_file_number();
        let new_writer = LogWriter::create(log_file_path(&self.path, new_id), new_id)?;
        let old_id = wal.id;
        let old_writer = std::mem::replace(&mut wal.writer, new_writer);
        wal.id = new_id;
        wal.writes_since_sync = 0;
        old_writer.seal()?;
        if self.options.background_io == BackgroundIoMode::Disabled {
            let _ = std::fs::remove_file(log_file_path(&self.path, old_id));
            *self.mem.write() = Arc::new(Memtable::new());
            return Ok(());
        }
        let sealed = Arc::new(ImmutableMemtable { memtable: Arc::clone(&mem), wal_id: old_id });
        self.imm.write().push(sealed);
        *self.mem.write() = Arc::new(Memtable::new());
        let _ = self.work_tx.send(WorkItem::Flush);
        Ok(())
    }

    /// Blocks until the immutable-memtable queue is empty.
    pub(crate) fn wait_for_pending_flushes(&self) -> Result<()> {
        loop {
            if self.imm.read().is_empty() {
                return Ok(());
            }
            if self.shutdown.load(Ordering::SeqCst) {
                return Ok(());
            }
            let _ = self.work_tx.send(WorkItem::Flush);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
    }

    /// Returns `true` for errors caused by a table file disappearing underneath a
    /// reader — the benign race where a compaction deleted an input file after the
    /// reader grabbed its (now stale) version.
    pub(crate) fn is_missing_file_error(error: &Error) -> bool {
        matches!(error, Error::Io { source, .. } if source.kind() == std::io::ErrorKind::NotFound)
    }

    /// Runs `op`, retrying while it fails with a missing-file error.
    ///
    /// Readers grab the current version and then open its files; a compaction that
    /// completes in between may have deleted a file the stale version still
    /// references. Each retry of `op` re-reads the current version, and compactions
    /// converge, so the staleness window closes after finitely many rounds; the
    /// brief sleep lets the churn settle. The bound keeps a genuinely missing file
    /// (true corruption) from retrying forever.
    pub(crate) fn retry_stale_version<T>(mut op: impl FnMut() -> Result<T>) -> Result<T> {
        let mut attempts = 0;
        loop {
            match op() {
                Err(e) if Self::is_missing_file_error(&e) && attempts < 20 => {
                    attempts += 1;
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    continue;
                }
                other => return other,
            }
        }
    }

    /// Point lookup. Retries with a refreshed version if a stale version pointed at a
    /// file that a concurrent compaction has already removed.
    pub(crate) fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.stats.add_user_reads(1);
        Self::retry_stale_version(|| self.get_once(key))
    }

    fn get_once(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let snapshot = self.last_seqno.load(Ordering::Acquire);

        // 1. Active memtable.
        let mem = self.mem.read().clone();
        self.stats.add_memtable_probes(1);
        if let Some(entry) = mem.get(key, snapshot) {
            return Ok(self.resolve_entry(entry));
        }
        // 2. Immutable memtables, newest first.
        {
            let imm = self.imm.read();
            for sealed in imm.iter().rev() {
                self.stats.add_memtable_probes(1);
                if let Some(entry) = sealed.memtable.get(key, snapshot) {
                    return Ok(self.resolve_entry(entry));
                }
            }
        }
        // 3. The disk component, level by level.
        let version = self.current_version.read().clone();
        for level in 0..version.num_levels() {
            for file in version.files_for_key(level, key) {
                let table = self.table_cache.get_or_open(&file)?;
                self.stats.add_table_probes(1);
                if let Some(entry) = table.get(key, snapshot)? {
                    return Ok(self.resolve_entry(entry));
                }
            }
        }
        Ok(None)
    }

    fn resolve_entry(&self, entry: Entry) -> Option<Vec<u8>> {
        match entry.key.kind {
            ValueKind::Put => {
                self.stats.add_user_read_hits(1);
                Some(entry.value)
            }
            ValueKind::Delete => None,
        }
    }

    /// Removes table files and commit logs that are no longer referenced by the
    /// current version, the active WAL or a pending immutable memtable.
    pub(crate) fn delete_obsolete_files(&self, candidate_files: &[FileMetadata]) {
        let version = self.current_version.read().clone();
        let live_files = version.live_file_ids();
        let live_logs = version.live_backing_logs();
        let active_wal = self.wal.lock().id;
        let pending_logs: std::collections::HashSet<u64> =
            self.imm.read().iter().map(|imm| imm.wal_id).collect();
        for file in candidate_files {
            if live_files.contains(&file.id) {
                continue;
            }
            self.table_cache.evict(file.id);
            let path = match file.kind {
                triad_sstable::TableKind::Block => sst_file_path(&self.path, file.id),
                triad_sstable::TableKind::CommitLogIndex => {
                    triad_sstable::cl_index_file_path(&self.path, file.id)
                }
            };
            let _ = std::fs::remove_file(path);
            if let Some(log_id) = file.backing_log_id {
                if !live_logs.contains(&log_id)
                    && log_id != active_wal
                    && !pending_logs.contains(&log_id)
                {
                    let _ = std::fs::remove_file(log_file_path(&self.path, log_id));
                }
            }
        }
    }
}

/// The background thread: drains flush requests, then runs compactions until the
/// tree satisfies its shape invariants.
fn background_worker(inner: Arc<DbInner>, rx: Receiver<WorkItem>) {
    while let Ok(item) = rx.recv() {
        match item {
            WorkItem::Shutdown => break,
            WorkItem::Flush | WorkItem::Compact => {
                if let Err(e) = inner.flush_pending_memtables() {
                    // Background errors are recorded but do not crash the process;
                    // the next flush attempt will retry.
                    eprintln!("triad: background flush error: {e}");
                }
                loop {
                    if inner.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    match inner.maybe_compact() {
                        Ok(true) => continue,
                        Ok(false) => break,
                        Err(e) => {
                            eprintln!("triad: background compaction error: {e}");
                            break;
                        }
                    }
                }
            }
        }
        if inner.shutdown.load(Ordering::SeqCst) {
            // Drain any remaining flushes so close() does not lose sealed memtables.
            let _ = inner.flush_pending_memtables();
            break;
        }
    }
}
