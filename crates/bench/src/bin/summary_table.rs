//! Prints the headline TRIAD-vs-baseline summary (§5.2/§5.3 claims).

use triad_bench::experiments::summary;
use triad_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    summary::run(scale).expect("summary experiment failed");
}
