//! TRIAD-MEM hot/cold key separation (paper §4.1, Algorithm 2 `separateKeys`).
//!
//! When the memory component is flushed, entries that are updated frequently ("hot")
//! are kept in the new memtable while only the rarely-updated ("cold") entries go to
//! disk. This module implements the selection policies the paper discusses:
//!
//! * the default *top-K* selection, where K is derived from a fraction of the
//!   memtable (`PERC_HOT` in the paper's pseudocode, 1% by default in the evaluation);
//! * the *above-mean-frequency* policy the paper reports to be effective across all
//!   workloads;
//! * quantile-based selection, mentioned among the methods the authors experimented
//!   with.

use crate::MemEntry;

/// How hot keys are selected at flush time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HotColdPolicy {
    /// Keep the `fraction` of entries (by count) with the highest update counters.
    /// The paper's default configuration corresponds to `TopFraction(0.01)`.
    TopFraction(f64),
    /// Keep at most `count` entries with the highest update counters.
    TopCount(usize),
    /// Keep every entry whose update counter is strictly above the mean.
    AboveMeanFrequency,
    /// Keep entries whose update counter is at or above the `q`-quantile
    /// (`q` in `[0, 1]`; e.g. 0.99 keeps roughly the top 1%).
    Quantile(f64),
}

impl Default for HotColdPolicy {
    fn default() -> Self {
        // "We configure TRIAD-MEM such that its definition of hot keys corresponds to
        // the top 1 percent of keys in terms of access frequency." (paper §5.1)
        HotColdPolicy::TopFraction(0.01)
    }
}

/// The result of splitting a memtable snapshot into hot and cold entries.
#[derive(Debug, Default)]
pub struct HotColdSplit {
    /// Entries to keep in the new memory component (and replay into the new log).
    pub hot: Vec<(Vec<u8>, MemEntry)>,
    /// Entries to flush to disk.
    pub cold: Vec<(Vec<u8>, MemEntry)>,
}

impl HotColdSplit {
    /// Total number of entries across both partitions.
    pub fn total(&self) -> usize {
        self.hot.len() + self.cold.len()
    }
}

/// Splits a sorted memtable snapshot into hot and cold entries according to `policy`.
///
/// Both output partitions preserve the input's key order. Hot entries have their
/// update counters reset (the paper resets "hotness" after each separation so stale
/// popularity does not pin keys in memory forever).
pub fn separate_keys(entries: Vec<(Vec<u8>, MemEntry)>, policy: HotColdPolicy) -> HotColdSplit {
    if entries.is_empty() {
        return HotColdSplit::default();
    }
    let hot_count = match policy {
        HotColdPolicy::TopFraction(fraction) => {
            let fraction = fraction.clamp(0.0, 1.0);
            (entries.len() as f64 * fraction).round() as usize
        }
        HotColdPolicy::TopCount(count) => count.min(entries.len()),
        HotColdPolicy::AboveMeanFrequency => {
            let mean = entries.iter().map(|(_, e)| f64::from(e.updates)).sum::<f64>()
                / entries.len() as f64;
            entries.iter().filter(|(_, e)| f64::from(e.updates) > mean).count()
        }
        HotColdPolicy::Quantile(q) => {
            let q = q.clamp(0.0, 1.0);
            (entries.len() as f64 * (1.0 - q)).round() as usize
        }
    };
    split_top_k(entries, hot_count)
}

/// Splits off the `hot_count` entries with the highest update counters.
fn split_top_k(entries: Vec<(Vec<u8>, MemEntry)>, hot_count: usize) -> HotColdSplit {
    if hot_count == 0 {
        return HotColdSplit { hot: Vec::new(), cold: entries };
    }
    if hot_count >= entries.len() {
        let hot = entries
            .into_iter()
            .map(|(key, mut entry)| {
                entry.updates = 0;
                (key, entry)
            })
            .collect();
        return HotColdSplit { hot, cold: Vec::new() };
    }
    // Find the update-count threshold of the K-th hottest entry.
    let mut counters: Vec<u32> = entries.iter().map(|(_, e)| e.updates).collect();
    counters.sort_unstable_by(|a, b| b.cmp(a));
    let threshold = counters[hot_count - 1];
    // Entries strictly above the threshold are hot; entries equal to the threshold
    // fill the remaining budget in key order so the split is deterministic.
    let above = counters.iter().filter(|&&c| c > threshold).count();
    let mut at_threshold_budget = hot_count - above;

    let mut split = HotColdSplit::default();
    for (key, mut entry) in entries {
        let is_hot = if entry.updates > threshold {
            true
        } else if entry.updates == threshold && at_threshold_budget > 0 {
            at_threshold_budget -= 1;
            true
        } else {
            false
        };
        if is_hot {
            // Reset hotness, as in Algorithm 2.
            entry.updates = 0;
            split.hot.push((key, entry));
        } else {
            split.cold.push((key, entry));
        }
    }
    split
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LogPosition;
    use triad_common::types::ValueKind;

    fn entry(updates: u32) -> MemEntry {
        MemEntry {
            value: b"v".to_vec(),
            seqno: 1,
            kind: ValueKind::Put,
            updates,
            log_position: LogPosition::default(),
        }
    }

    /// 100 keys where keys 0..5 are updated far more often than the rest.
    fn skewed_entries() -> Vec<(Vec<u8>, MemEntry)> {
        (0..100u32)
            .map(|i| {
                let updates = if i < 5 { 1_000 + i } else { 1 + (i % 3) };
                (format!("key-{i:03}").into_bytes(), entry(updates))
            })
            .collect()
    }

    #[test]
    fn empty_input_produces_empty_split() {
        let split = separate_keys(Vec::new(), HotColdPolicy::default());
        assert!(split.hot.is_empty());
        assert!(split.cold.is_empty());
        assert_eq!(split.total(), 0);
    }

    #[test]
    fn top_fraction_keeps_the_hottest_keys() {
        let split = separate_keys(skewed_entries(), HotColdPolicy::TopFraction(0.05));
        assert_eq!(split.hot.len(), 5);
        assert_eq!(split.cold.len(), 95);
        for (key, _) in &split.hot {
            let idx: u32 = String::from_utf8_lossy(key).trim_start_matches("key-").parse().unwrap();
            assert!(idx < 5, "only the heavily-updated keys should be hot, got {idx}");
        }
    }

    #[test]
    fn top_count_caps_the_hot_set() {
        let split = separate_keys(skewed_entries(), HotColdPolicy::TopCount(3));
        assert_eq!(split.hot.len(), 3);
        assert_eq!(split.cold.len(), 97);
        let split_all = separate_keys(skewed_entries(), HotColdPolicy::TopCount(1_000));
        assert_eq!(split_all.hot.len(), 100);
        assert!(split_all.cold.is_empty());
    }

    #[test]
    fn above_mean_policy_matches_manual_computation() {
        let entries = skewed_entries();
        let mean =
            entries.iter().map(|(_, e)| f64::from(e.updates)).sum::<f64>() / entries.len() as f64;
        let expected = entries.iter().filter(|(_, e)| f64::from(e.updates) > mean).count();
        let split = separate_keys(entries, HotColdPolicy::AboveMeanFrequency);
        assert_eq!(split.hot.len(), expected);
        assert_eq!(split.hot.len(), 5, "only the 5 heavy hitters exceed the mean");
    }

    #[test]
    fn quantile_policy_selects_the_tail() {
        let split = separate_keys(skewed_entries(), HotColdPolicy::Quantile(0.95));
        assert_eq!(split.hot.len(), 5);
        let none = separate_keys(skewed_entries(), HotColdPolicy::Quantile(1.0));
        assert!(none.hot.is_empty());
        let all = separate_keys(skewed_entries(), HotColdPolicy::Quantile(0.0));
        assert_eq!(all.hot.len(), 100);
    }

    #[test]
    fn hot_entries_have_their_counters_reset() {
        let split = separate_keys(skewed_entries(), HotColdPolicy::TopFraction(0.05));
        assert!(split.hot.iter().all(|(_, e)| e.updates == 0), "Algorithm 2 resets hotness");
        assert!(split.cold.iter().all(|(_, e)| e.updates > 0), "cold counters are untouched");
    }

    #[test]
    fn key_order_is_preserved_in_both_partitions() {
        let split = separate_keys(skewed_entries(), HotColdPolicy::TopFraction(0.05));
        for window in split.hot.windows(2) {
            assert!(window[0].0 < window[1].0);
        }
        for window in split.cold.windows(2) {
            assert!(window[0].0 < window[1].0);
        }
    }

    #[test]
    fn ties_at_the_threshold_are_resolved_deterministically() {
        // Every entry has the same counter; a 50% split must still pick exactly half,
        // and repeated runs must pick the same half.
        let entries: Vec<(Vec<u8>, MemEntry)> =
            (0..10u32).map(|i| (format!("k{i}").into_bytes(), entry(7))).collect();
        let split_a = separate_keys(entries.clone(), HotColdPolicy::TopFraction(0.5));
        let split_b = separate_keys(entries, HotColdPolicy::TopFraction(0.5));
        assert_eq!(split_a.hot.len(), 5);
        let keys_a: Vec<_> = split_a.hot.iter().map(|(k, _)| k.clone()).collect();
        let keys_b: Vec<_> = split_b.hot.iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(keys_a, keys_b);
    }

    #[test]
    fn zero_fraction_flushes_everything() {
        let split = separate_keys(skewed_entries(), HotColdPolicy::TopFraction(0.0));
        assert!(split.hot.is_empty());
        assert_eq!(split.cold.len(), 100);
    }

    #[test]
    fn uniform_workload_keeps_little_in_memory_under_mean_policy() {
        // With perfectly uniform update counts nothing is strictly above the mean, so
        // everything is flushed — the desired behaviour for uniform workloads, where
        // TRIAD-MEM is expected to contribute little (paper §5.4).
        let entries: Vec<(Vec<u8>, MemEntry)> =
            (0..50u32).map(|i| (format!("k{i:02}").into_bytes(), entry(4))).collect();
        let split = separate_keys(entries, HotColdPolicy::AboveMeanFrequency);
        assert!(split.hot.is_empty());
        assert_eq!(split.cold.len(), 50);
    }
}
