//! Appending records to a commit log file.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use triad_common::checksum;
use triad_common::{Error, Result};

use crate::record::LogRecord;
use crate::RECORD_HEADER_LEN;

/// An append-only writer for a single commit log file.
///
/// The writer buffers records in user space; [`LogWriter::flush`] pushes them to the
/// OS and [`LogWriter::sync`] additionally issues an `fsync`. The engine decides how
/// often to call each based on its durability configuration.
#[derive(Debug)]
pub struct LogWriter {
    id: u64,
    path: PathBuf,
    file: BufWriter<File>,
    /// Offset at which the next record will start.
    offset: u64,
    /// Number of records appended.
    records: u64,
}

impl LogWriter {
    /// Creates a new, empty log file with the given id at `path`.
    ///
    /// Fails if the file already exists, to avoid silently clobbering a log that may
    /// still be needed for recovery.
    pub fn create(path: impl AsRef<Path>, id: u64) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
            .map_err(|e| Error::io(format!("creating commit log {}", path.display()), e))?;
        Ok(LogWriter { id, path, file: BufWriter::new(file), offset: 0, records: 0 })
    }

    /// The id of this log file.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The path of this log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Bytes written so far (i.e. the current size of the log).
    pub fn size(&self) -> u64 {
        self.offset
    }

    /// Number of records appended so far.
    pub fn record_count(&self) -> u64 {
        self.records
    }

    /// Appends a record and returns the offset at which it was written.
    ///
    /// The returned offset is the handle TRIAD-LOG stores in the memtable entry so
    /// the value can later be served straight from the log file.
    pub fn append(&mut self, record: &LogRecord) -> Result<u64> {
        let payload = record.encode();
        self.append_payload(&payload)
    }

    /// Appends a pre-encoded payload; used when replaying entries verbatim.
    pub fn append_payload(&mut self, payload: &[u8]) -> Result<u64> {
        let start = self.offset;
        let len = u32::try_from(payload.len())
            .map_err(|_| Error::InvalidArgument("commit log record exceeds 4 GiB".to_string()))?;
        let len_bytes = len.to_le_bytes();
        let mut crc = checksum::crc32c(&len_bytes);
        crc = checksum::extend(crc, payload);
        let masked = checksum::mask(crc);

        self.file
            .write_all(&masked.to_le_bytes())
            .and_then(|_| self.file.write_all(&len_bytes))
            .and_then(|_| self.file.write_all(payload))
            .map_err(|e| {
                Error::io(format!("appending to commit log {}", self.path.display()), e)
            })?;

        self.offset += (RECORD_HEADER_LEN + payload.len()) as u64;
        self.records += 1;
        Ok(start)
    }

    /// Flushes buffered records to the operating system.
    pub fn flush(&mut self) -> Result<()> {
        self.file
            .flush()
            .map_err(|e| Error::io(format!("flushing commit log {}", self.path.display()), e))
    }

    /// Flushes and fsyncs the log file, guaranteeing durability of all appended records.
    pub fn sync(&mut self) -> Result<()> {
        self.flush()?;
        self.file
            .get_ref()
            .sync_data()
            .map_err(|e| Error::io(format!("syncing commit log {}", self.path.display()), e))
    }

    /// Flushes buffers and returns the final size of the log file.
    ///
    /// The file remains on disk; TRIAD-LOG keeps sealed logs around as the backing
    /// store of CL-SSTables.
    pub fn seal(mut self) -> Result<u64> {
        self.flush()?;
        self.file
            .get_ref()
            .sync_data()
            .map_err(|e| Error::io(format!("sealing commit log {}", self.path.display()), e))?;
        Ok(self.offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::LogReader;
    use crate::{log_file_path, RECORD_HEADER_LEN};

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("triad-wal-writer-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn create_refuses_to_overwrite() {
        let dir = temp_dir("no-overwrite");
        let path = log_file_path(&dir, 1);
        let _writer = LogWriter::create(&path, 1).unwrap();
        assert!(LogWriter::create(&path, 1).is_err());
    }

    #[test]
    fn offsets_are_monotonic_and_addressable() {
        let dir = temp_dir("offsets");
        let path = log_file_path(&dir, 2);
        let mut writer = LogWriter::create(&path, 2).unwrap();
        let mut offsets = Vec::new();
        for i in 0..100u64 {
            let record =
                LogRecord::put(i, format!("key-{i}").into_bytes(), vec![b'v'; i as usize % 32]);
            let offset = writer.append(&record).unwrap();
            if let Some(&last) = offsets.last() {
                assert!(offset > last);
            }
            offsets.push(offset);
        }
        assert_eq!(writer.record_count(), 100);
        writer.sync().unwrap();

        let reader = LogReader::open(&path).unwrap();
        for (i, &offset) in offsets.iter().enumerate() {
            let record = reader.read_at(offset).unwrap();
            assert_eq!(record.seqno, i as u64);
            assert_eq!(record.key, format!("key-{i}").into_bytes());
        }
    }

    #[test]
    fn size_accounts_for_headers() {
        let dir = temp_dir("size");
        let path = log_file_path(&dir, 3);
        let mut writer = LogWriter::create(&path, 3).unwrap();
        let record = LogRecord::put(1, b"k".to_vec(), b"v".to_vec());
        let payload_len = record.encode().len();
        writer.append(&record).unwrap();
        assert_eq!(writer.size(), (RECORD_HEADER_LEN + payload_len) as u64);
        let sealed_size = writer.seal().unwrap();
        assert_eq!(sealed_size, std::fs::metadata(&path).unwrap().len());
    }

    #[test]
    fn append_payload_matches_append() {
        let dir = temp_dir("payload");
        let path = log_file_path(&dir, 4);
        let mut writer = LogWriter::create(&path, 4).unwrap();
        let record = LogRecord::put(9, b"alpha".to_vec(), b"beta".to_vec());
        writer.append_payload(&record.encode()).unwrap();
        writer.sync().unwrap();
        let reader = LogReader::open(&path).unwrap();
        let recovered: Vec<_> = reader.iter().unwrap().collect::<Result<Vec<_>>>().unwrap();
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].record, record);
    }
}
