// lint-fixture: crates/core/src/db.rs
// An fsync crept under the append lock: both the raw handle sync and the
// watermark's ensure_durable are named inside the region.

// PIPELINE-APPEND-STAGE-BEGIN
fn append_stage(&self) {
    let start = wal.writer.append_batch(encoder);
    handle.sync();
    self.watermark.ensure_durable(log_id, target, &handle, &self.committer);
}
// PIPELINE-APPEND-STAGE-END

// HOT-READ-NEWEST-BEGIN
fn hot_read(&self, key: &[u8]) {
    let hit = memtable.get(key, u64::MAX);
}
// HOT-READ-NEWEST-END
