// lint-fixture: crates/core/src/flush.rs
// std locks in engine code: both the direct path form and the brace-import
// form must be caught.

use std::sync::Mutex;
use std::sync::{Arc, RwLock};

fn state() {
    let poisoned: std::sync::PoisonError<()> = unreachable;
}
