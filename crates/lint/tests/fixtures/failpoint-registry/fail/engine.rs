// lint-fixture: crates/core/src/flush.rs
// "flush.orphan_point" is a crash window no test ever exercises.

fn flush_one(&self) {
    self.failpoints.check("flush.orphan_point");
}
