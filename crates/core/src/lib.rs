//! The TRIAD LSM key-value store engine.
//!
//! This crate is the primary contribution of the reproduction: a complete
//! leveled-compaction LSM key-value store (memtable, commit log, SSTables, manifest,
//! background flush and compaction) extended with the three TRIAD techniques of
//! Balmau et al. (USENIX ATC '17):
//!
//! * **TRIAD-MEM** — skew-aware flushing: hot keys stay in memory, only cold keys go
//!   to disk (implemented in the private `flush` module using
//!   [`triad_memtable::separate_keys`]).
//! * **TRIAD-DISK** — deferred L0→L1 compaction gated on a HyperLogLog-estimated
//!   key-overlap ratio (implemented in the private `compaction` module).
//! * **TRIAD-LOG** — commit logs double as L0 "CL-SSTables", so flushes write only a
//!   small index instead of re-writing every value (implemented in the private
//!   `flush` module using [`triad_sstable::ClTableBuilder`]).
//!
//! Each technique is individually switchable through [`TriadConfig`], which is how
//! the benchmark harness reproduces the paper's baseline comparison (RocksDB ≈ all
//! three disabled) and the per-technique breakdown of Figures 10 and 11.
//!
//! # Example
//!
//! ```
//! use triad_core::{Db, Options};
//!
//! let dir = std::env::temp_dir().join(format!("triad-doc-{}", std::process::id()));
//! let mut options = Options::small_for_tests();
//! options.triad.enable_all();
//! let db = Db::open(&dir, options).unwrap();
//! db.put(b"hello", b"world").unwrap();
//! assert_eq!(db.get(b"hello").unwrap().as_deref(), Some(&b"world"[..]));
//! db.close().unwrap();
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod block_cache;
mod checkpoint;
mod committer;
mod compaction;
mod db;
mod durability;
mod flush;
pub mod iterator;
pub mod manifest;
pub mod options;
mod replica;
mod shard;
pub mod snapshot;
mod stamps;
pub mod table_cache;
pub mod version;

pub use batch::{WriteBatch, WriteOptions};
pub use block_cache::BlockCache;
pub use db::Db;
pub use iterator::DbIterator;
pub use options::{
    BackgroundIoMode, GroupCommitConfig, Options, ShardConfig, SyncMode, TriadConfig,
};
pub use replica::Replica;
pub use snapshot::Snapshot;
pub use version::{FileMetadata, Version, VersionEdit};

pub use triad_common::{Error, Result, StatSnapshot, Stats};
pub use triad_memtable::HotColdPolicy;
