//! Low-level file format pieces: block handles, checksummed block I/O and the footer.
//!
//! Every block (data, index, bloom, properties) is written as `payload ++ masked
//! CRC32C(payload)`. The footer is a fixed-size trailer at the end of the file that
//! locates the index, bloom and properties blocks and carries a magic number.

use std::fs::File;
use std::io::Write;
use std::os::unix::fs::FileExt;
use std::path::Path;

use triad_common::checksum;
use triad_common::{Error, Result};

/// Magic number identifying TRIAD table files ("TRIADSST" interpreted as bytes).
pub const TABLE_MAGIC: u64 = 0x5452_4941_4453_5354;

/// Number of bytes appended to every block for its checksum.
pub const BLOCK_TRAILER_LEN: usize = 4;

/// Serialized size of the [`Footer`].
pub const FOOTER_LEN: usize = 7 * 8;

/// The location of a block within a table file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BlockHandle {
    /// Byte offset of the block payload.
    pub offset: u64,
    /// Length of the block payload, excluding the checksum trailer.
    pub size: u64,
}

impl BlockHandle {
    /// Creates a handle.
    pub fn new(offset: u64, size: u64) -> Self {
        BlockHandle { offset, size }
    }

    /// Serializes the handle as two little-endian `u64`s.
    pub fn encode(&self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.offset.to_le_bytes());
        out[8..].copy_from_slice(&self.size.to_le_bytes());
        out
    }

    /// Parses a handle from its 16-byte encoding.
    pub fn decode(bytes: &[u8]) -> Result<BlockHandle> {
        if bytes.len() < 16 {
            return Err(Error::corruption("block handle shorter than 16 bytes"));
        }
        Ok(BlockHandle {
            offset: u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes")),
            size: u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")),
        })
    }
}

/// The fixed-size footer stored at the end of every table file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Footer {
    /// Handle of the index block.
    pub index: BlockHandle,
    /// Handle of the bloom filter block.
    pub bloom: BlockHandle,
    /// Handle of the properties block.
    pub properties: BlockHandle,
}

impl Footer {
    /// Serializes the footer to its fixed-length representation.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(FOOTER_LEN);
        out.extend_from_slice(&self.index.encode());
        out.extend_from_slice(&self.bloom.encode());
        out.extend_from_slice(&self.properties.encode());
        out.extend_from_slice(&TABLE_MAGIC.to_le_bytes());
        out
    }

    /// Parses a footer from the last [`FOOTER_LEN`] bytes of a table file.
    pub fn decode(bytes: &[u8]) -> Result<Footer> {
        if bytes.len() != FOOTER_LEN {
            return Err(Error::corruption(format!(
                "footer must be {FOOTER_LEN} bytes, got {}",
                bytes.len()
            )));
        }
        let magic = u64::from_le_bytes(bytes[48..56].try_into().expect("8 bytes"));
        if magic != TABLE_MAGIC {
            return Err(Error::corruption(format!("bad table magic {magic:#x}")));
        }
        Ok(Footer {
            index: BlockHandle::decode(&bytes[0..16])?,
            bloom: BlockHandle::decode(&bytes[16..32])?,
            properties: BlockHandle::decode(&bytes[32..48])?,
        })
    }
}

/// A file being written block by block.
#[derive(Debug)]
pub struct BlockFileWriter {
    file: File,
    offset: u64,
    path: std::path::PathBuf,
}

impl BlockFileWriter {
    /// Creates the file at `path`, failing if it already exists.
    pub fn create(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
            .map_err(|e| Error::io(format!("creating table file {}", path.display()), e))?;
        Ok(BlockFileWriter { file, offset: 0, path })
    }

    /// Total bytes written so far.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Writes `payload` as a checksummed block and returns its handle.
    pub fn write_block(&mut self, payload: &[u8]) -> Result<BlockHandle> {
        let handle = BlockHandle::new(self.offset, payload.len() as u64);
        let crc = checksum::mask(checksum::crc32c(payload));
        self.file
            .write_all(payload)
            .and_then(|_| self.file.write_all(&crc.to_le_bytes()))
            .map_err(|e| Error::io(format!("writing block to {}", self.path.display()), e))?;
        self.offset += payload.len() as u64 + BLOCK_TRAILER_LEN as u64;
        Ok(handle)
    }

    /// Writes the footer, syncs the file and returns its final size.
    pub fn finish(mut self, footer: &Footer) -> Result<u64> {
        let encoded = footer.encode();
        self.file
            .write_all(&encoded)
            .map_err(|e| Error::io(format!("writing footer to {}", self.path.display()), e))?;
        self.offset += encoded.len() as u64;
        self.file
            .sync_all()
            .map_err(|e| Error::io(format!("syncing table file {}", self.path.display()), e))?;
        Ok(self.offset)
    }
}

/// A random-access reader over a block file.
#[derive(Debug)]
pub struct BlockFileReader {
    file: File,
    len: u64,
    path: std::path::PathBuf,
}

impl BlockFileReader {
    /// Opens `path` for reading.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = File::open(&path)
            .map_err(|e| Error::io(format!("opening table file {}", path.display()), e))?;
        let len = file
            .metadata()
            .map_err(|e| Error::io(format!("reading metadata of {}", path.display()), e))?
            .len();
        Ok(BlockFileReader { file, len, path })
    }

    /// The total length of the file in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Returns `true` if the file is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The path of the file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Reads and checksum-verifies the block at `handle`.
    pub fn read_block(&self, handle: BlockHandle) -> Result<Vec<u8>> {
        let total = handle.size as usize + BLOCK_TRAILER_LEN;
        if handle.offset + total as u64 > self.len {
            return Err(Error::corruption_at(
                format!("block handle {handle:?} extends past end of file"),
                &self.path,
            ));
        }
        let mut buf = vec![0u8; total];
        self.file.read_exact_at(&mut buf, handle.offset).map_err(|e| {
            Error::io(format!("reading block at {} in {}", handle.offset, self.path.display()), e)
        })?;
        let (payload, trailer) = buf.split_at(handle.size as usize);
        let stored = checksum::unmask(u32::from_le_bytes(trailer.try_into().expect("4 bytes")));
        if checksum::crc32c(payload) != stored {
            return Err(Error::corruption_at(
                format!("checksum mismatch for block at offset {}", handle.offset),
                &self.path,
            ));
        }
        Ok(payload.to_vec())
    }

    /// Reads and validates the footer.
    pub fn read_footer(&self) -> Result<Footer> {
        if self.len < FOOTER_LEN as u64 {
            return Err(Error::corruption_at("file too small to contain a footer", &self.path));
        }
        let mut buf = vec![0u8; FOOTER_LEN];
        self.file
            .read_exact_at(&mut buf, self.len - FOOTER_LEN as u64)
            .map_err(|e| Error::io(format!("reading footer of {}", self.path.display()), e))?;
        Footer::decode(&buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_file(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("triad-sstable-format-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn block_handle_round_trip() {
        let handle = BlockHandle::new(12345, 678);
        assert_eq!(BlockHandle::decode(&handle.encode()).unwrap(), handle);
        assert!(BlockHandle::decode(&[0u8; 8]).is_err());
    }

    #[test]
    fn footer_round_trip_and_magic_check() {
        let footer = Footer {
            index: BlockHandle::new(1, 2),
            bloom: BlockHandle::new(3, 4),
            properties: BlockHandle::new(5, 6),
        };
        let encoded = footer.encode();
        assert_eq!(encoded.len(), FOOTER_LEN);
        assert_eq!(Footer::decode(&encoded).unwrap(), footer);

        let mut bad_magic = encoded.clone();
        bad_magic[50] ^= 0xff;
        assert!(Footer::decode(&bad_magic).is_err());
        assert!(Footer::decode(&encoded[..40]).is_err());
    }

    #[test]
    fn write_and_read_blocks() {
        let path = temp_file("blocks.sst");
        let mut writer = BlockFileWriter::create(&path).unwrap();
        let h1 = writer.write_block(b"first block payload").unwrap();
        let h2 = writer.write_block(b"second").unwrap();
        let footer = Footer { index: h1, bloom: h2, properties: h2 };
        let size = writer.finish(&footer).unwrap();
        assert_eq!(size, std::fs::metadata(&path).unwrap().len());

        let reader = BlockFileReader::open(&path).unwrap();
        assert!(!reader.is_empty());
        assert_eq!(reader.read_block(h1).unwrap(), b"first block payload");
        assert_eq!(reader.read_block(h2).unwrap(), b"second");
        let recovered_footer = reader.read_footer().unwrap();
        assert_eq!(recovered_footer, footer);
    }

    #[test]
    fn create_refuses_to_overwrite() {
        let path = temp_file("no-overwrite.sst");
        let _writer = BlockFileWriter::create(&path).unwrap();
        assert!(BlockFileWriter::create(&path).is_err());
    }

    #[test]
    fn corrupt_block_is_detected() {
        let path = temp_file("corrupt.sst");
        let mut writer = BlockFileWriter::create(&path).unwrap();
        let handle = writer.write_block(b"sensitive payload").unwrap();
        let footer = Footer { index: handle, bloom: handle, properties: handle };
        writer.finish(&footer).unwrap();

        let mut bytes = std::fs::read(&path).unwrap();
        bytes[3] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let reader = BlockFileReader::open(&path).unwrap();
        assert!(reader.read_block(handle).unwrap_err().is_corruption());
    }

    #[test]
    fn out_of_bounds_handle_is_rejected() {
        let path = temp_file("oob.sst");
        let mut writer = BlockFileWriter::create(&path).unwrap();
        let handle = writer.write_block(b"x").unwrap();
        writer.finish(&Footer { index: handle, bloom: handle, properties: handle }).unwrap();
        let reader = BlockFileReader::open(&path).unwrap();
        assert!(reader.read_block(BlockHandle::new(10_000, 100)).is_err());
    }

    #[test]
    fn footer_of_tiny_file_is_rejected() {
        let path = temp_file("tiny.sst");
        std::fs::write(&path, b"tiny").unwrap();
        let reader = BlockFileReader::open(&path).unwrap();
        assert!(reader.read_footer().is_err());
    }
}
