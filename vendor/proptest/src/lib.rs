//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The workspace builds without registry access, so this crate reimplements the
//! slice of the proptest 1.x API that TRIAD's property suites use: the
//! [`strategy::Strategy`] trait with `prop_map`, [`strategy::Just`], integer-range
//! and tuple strategies, [`strategy::any`], the [`collection`] builders (`vec`, `btree_map`,
//! `hash_set`), weighted unions via [`prop_oneof!`], and the [`proptest!`] test
//! macro driven by [`ProptestConfig`].
//!
//! Two deliberate simplifications versus real proptest:
//!
//! 1. **No shrinking.** A failing case panics with the generated inputs
//!    reported via the case's deterministic seed; `max_shrink_iters` is
//!    accepted and ignored.
//! 2. **Deterministic seeding.** Each test case derives its RNG seed from the
//!    test name and case index, so failures reproduce exactly across runs.

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a property-test module needs in scope, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

pub use test_runner::ProptestConfig;

/// Asserts a condition inside a `proptest!` body (no shrinking: panics directly).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a `proptest!` body (no shrinking: panics directly).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

/// Asserts inequality inside a `proptest!` body (no shrinking: panics directly).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_ne!($left, $right, $($fmt)*) };
}

/// Builds a strategy choosing among several alternatives, optionally weighted:
/// `prop_oneof![3 => a, 1 => b]` or `prop_oneof![a, b, c]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }` runs
/// `ProptestConfig::cases` times with freshly generated inputs.
///
/// An optional leading `#![proptest_config(expr)]` overrides the default
/// configuration for every test in the block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands each test function.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($config:expr); ) => {};
    (($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        // `#[test]` is emitted here, matching real proptest: test functions
        // inside a `proptest!` block must not carry their own `#[test]`.
        $(#[$meta])*
        #[test]
        fn $name() {
            let config = $config;
            for case in 0..config.cases {
                let seed = $crate::test_runner::case_seed(stringify!($name), case);
                let mut runner_rng = $crate::test_runner::TestRng::from_seed(seed);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut runner_rng);)+
                $body
            }
        }
        $crate::__proptest_tests! { ($config); $($rest)* }
    };
}
