//! Error and result types shared across the TRIAD workspace.

use std::fmt;
use std::io;
use std::path::PathBuf;

/// The unified error type for all TRIAD crates.
#[derive(Debug)]
pub enum Error {
    /// An underlying I/O operation failed.
    Io {
        /// Human-readable context describing what was being attempted.
        context: String,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// A stored record, block or file failed validation (bad checksum, bad magic,
    /// truncated payload, ...).
    Corruption {
        /// Description of the corruption that was detected.
        message: String,
        /// The file in which the corruption was found, when known.
        path: Option<PathBuf>,
    },
    /// The caller supplied an invalid argument (empty key, zero-sized memtable, ...).
    InvalidArgument(String),
    /// The requested key was not found.
    ///
    /// Most read APIs return `Ok(None)` instead; this variant exists for the few
    /// internal call sites where absence is exceptional.
    NotFound(String),
    /// The database is shutting down and can no longer accept work.
    ShuttingDown,
    /// A background task panicked or was lost.
    Background(String),
    /// An injected failure from the [`failpoint`](crate::failpoint) facility.
    Injected(String),
}

impl Error {
    /// Wraps an [`io::Error`] with a short description of the operation.
    pub fn io(context: impl Into<String>, source: io::Error) -> Self {
        Error::Io { context: context.into(), source }
    }

    /// Creates a [`Error::Corruption`] without an associated path.
    pub fn corruption(message: impl Into<String>) -> Self {
        Error::Corruption { message: message.into(), path: None }
    }

    /// Creates a [`Error::Corruption`] tied to a specific file.
    pub fn corruption_at(message: impl Into<String>, path: impl Into<PathBuf>) -> Self {
        Error::Corruption { message: message.into(), path: Some(path.into()) }
    }

    /// Returns `true` if this error denotes on-disk corruption.
    pub fn is_corruption(&self) -> bool {
        matches!(self, Error::Corruption { .. })
    }

    /// Returns `true` if this error denotes a missing key.
    pub fn is_not_found(&self) -> bool {
        matches!(self, Error::NotFound(_))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io { context, source } => write!(f, "I/O error while {context}: {source}"),
            Error::Corruption { message, path } => match path {
                Some(p) => write!(f, "corruption in {}: {message}", p.display()),
                None => write!(f, "corruption: {message}"),
            },
            Error::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            Error::NotFound(what) => write!(f, "not found: {what}"),
            Error::ShuttingDown => write!(f, "database is shutting down"),
            Error::Background(msg) => write!(f, "background task failure: {msg}"),
            Error::Injected(msg) => write!(f, "injected failure: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for Error {
    fn from(source: io::Error) -> Self {
        Error::Io { context: "performing file I/O".to_string(), source }
    }
}

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_io_error_includes_context() {
        let err = Error::io("appending to commit log", io::Error::other("disk full"));
        let text = err.to_string();
        assert!(text.contains("appending to commit log"));
        assert!(text.contains("disk full"));
    }

    #[test]
    fn display_corruption_with_path() {
        let err = Error::corruption_at("bad magic", "/tmp/000001.sst");
        let text = err.to_string();
        assert!(text.contains("000001.sst"));
        assert!(text.contains("bad magic"));
        assert!(err.is_corruption());
    }

    #[test]
    fn not_found_predicate() {
        assert!(Error::NotFound("key".into()).is_not_found());
        assert!(!Error::ShuttingDown.is_not_found());
    }

    #[test]
    fn io_error_source_is_preserved() {
        let err = Error::io("reading", io::Error::new(io::ErrorKind::UnexpectedEof, "eof"));
        let source = std::error::Error::source(&err).expect("source");
        assert!(source.to_string().contains("eof"));
    }

    #[test]
    fn from_io_error_conversion() {
        fn fails() -> Result<()> {
            Err(io::Error::new(io::ErrorKind::PermissionDenied, "nope"))?;
            Ok(())
        }
        let err = fails().unwrap_err();
        assert!(matches!(err, Error::Io { .. }));
    }
}
