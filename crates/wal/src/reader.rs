//! Reading commit logs: sequential recovery scans and random access by offset.

use std::fs::File;
use std::io::Read;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};

use triad_common::checksum;
use triad_common::{Error, Result};

use crate::record::LogRecord;
use crate::RECORD_HEADER_LEN;

/// A record recovered from a sequential scan, together with its offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredRecord {
    /// Byte offset of the record within the log file.
    pub offset: u64,
    /// The decoded record.
    pub record: LogRecord,
}

/// Outcome of scanning to the end of a log file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailStatus {
    /// The file ended exactly at a record boundary.
    Clean,
    /// The file ended with a torn or corrupt record that was ignored.
    ///
    /// The payload is the offset at which valid data ends.
    Truncated(u64),
}

/// Decodes the record starting at `offset` inside an in-memory copy of a log file.
///
/// Used by bulk consumers (CL-SSTable iteration during compaction) that read the
/// whole sealed log once instead of issuing one positioned read per record.
pub fn decode_record_in_buffer(buffer: &[u8], offset: u64) -> Result<LogRecord> {
    let offset =
        usize::try_from(offset).map_err(|_| Error::corruption("record offset overflows usize"))?;
    if offset + RECORD_HEADER_LEN > buffer.len() {
        return Err(Error::corruption("record header extends past end of log buffer"));
    }
    let header = &buffer[offset..offset + RECORD_HEADER_LEN];
    let stored_crc =
        checksum::unmask(u32::from_le_bytes(header[0..4].try_into().expect("4 bytes")));
    let len = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes")) as usize;
    let payload_start = offset + RECORD_HEADER_LEN;
    let payload_end = payload_start + len;
    if payload_end > buffer.len() {
        return Err(Error::corruption("record payload extends past end of log buffer"));
    }
    let payload = &buffer[payload_start..payload_end];
    let mut crc = checksum::crc32c(&header[4..8]);
    crc = checksum::extend(crc, payload);
    if crc != stored_crc {
        return Err(Error::corruption(format!("checksum mismatch for record at offset {offset}")));
    }
    LogRecord::decode(payload)
}

/// A reader over a single commit log file.
#[derive(Debug)]
pub struct LogReader {
    path: PathBuf,
    file: File,
    len: u64,
}

impl LogReader {
    /// Opens a log file for reading.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = File::open(&path)
            .map_err(|e| Error::io(format!("opening commit log {}", path.display()), e))?;
        let len = file
            .metadata()
            .map_err(|e| Error::io(format!("reading metadata of {}", path.display()), e))?
            .len();
        Ok(LogReader { path, file, len })
    }

    /// The length of the log file in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Returns `true` when the log file contains no bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Reads the single record that starts at `offset`.
    ///
    /// This is the random-access path used by CL-SSTable lookups: the index maps a
    /// key to the offset of its most recent update and the value is read from the
    /// log directly.
    pub fn read_at(&self, offset: u64) -> Result<LogRecord> {
        let mut header = [0u8; RECORD_HEADER_LEN];
        self.file.read_exact_at(&mut header, offset).map_err(|e| {
            Error::io(format!("reading record header at {offset} in {}", self.path.display()), e)
        })?;
        let stored_crc =
            checksum::unmask(u32::from_le_bytes(header[0..4].try_into().expect("4 bytes")));
        let len = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes")) as usize;
        if offset + (RECORD_HEADER_LEN + len) as u64 > self.len {
            return Err(Error::corruption_at(
                format!("record at offset {offset} extends past end of log"),
                &self.path,
            ));
        }
        let mut payload = vec![0u8; len];
        self.file.read_exact_at(&mut payload, offset + RECORD_HEADER_LEN as u64).map_err(|e| {
            Error::io(format!("reading record payload at {offset} in {}", self.path.display()), e)
        })?;
        let mut crc = checksum::crc32c(&header[4..8]);
        crc = checksum::extend(crc, &payload);
        if crc != stored_crc {
            return Err(Error::corruption_at(
                format!("checksum mismatch for record at offset {offset}"),
                &self.path,
            ));
        }
        LogRecord::decode(&payload)
    }

    /// Reads the entire log file into memory; pair with [`decode_record_in_buffer`]
    /// for bulk offset-based access.
    pub fn read_to_buffer(&self) -> Result<Vec<u8>> {
        std::fs::read(&self.path)
            .map_err(|e| Error::io(format!("reading commit log {}", self.path.display()), e))
    }

    /// Iterates over every intact record in the log in write order.
    ///
    /// The iterator stops silently at the first torn/corrupt record, mirroring how
    /// LSM stores recover from a crash mid-append; use [`LogReader::recover`] to also
    /// learn whether the tail was clean.
    pub fn iter(&self) -> Result<LogIterator> {
        let file = File::open(&self.path)
            .map_err(|e| Error::io(format!("opening commit log {}", self.path.display()), e))?;
        Ok(LogIterator {
            reader: std::io::BufReader::new(file),
            path: self.path.clone(),
            offset: 0,
            len: self.len,
            done: false,
            tail: TailStatus::Clean,
        })
    }

    /// Scans the whole log, returning every intact record and the tail status.
    pub fn recover(&self) -> Result<(Vec<RecoveredRecord>, TailStatus)> {
        let mut iter = self.iter()?;
        let mut records = Vec::new();
        for item in &mut iter {
            records.push(item?);
        }
        Ok((records, iter.tail_status()))
    }
}

/// Sequential iterator over the records of a log file.
#[derive(Debug)]
pub struct LogIterator {
    reader: std::io::BufReader<File>,
    path: PathBuf,
    offset: u64,
    len: u64,
    done: bool,
    tail: TailStatus,
}

impl LogIterator {
    /// The tail status observed so far; meaningful once iteration has finished.
    pub fn tail_status(&self) -> TailStatus {
        self.tail
    }

    fn read_next(&mut self) -> Result<Option<RecoveredRecord>> {
        if self.done || self.offset >= self.len {
            self.done = true;
            return Ok(None);
        }
        let start = self.offset;
        if self.len - start < RECORD_HEADER_LEN as u64 {
            self.tail = TailStatus::Truncated(start);
            self.done = true;
            return Ok(None);
        }
        let mut header = [0u8; RECORD_HEADER_LEN];
        self.reader.read_exact(&mut header).map_err(|e| {
            Error::io(format!("reading header at {start} in {}", self.path.display()), e)
        })?;
        let stored_crc =
            checksum::unmask(u32::from_le_bytes(header[0..4].try_into().expect("4 bytes")));
        let payload_len = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes")) as u64;
        if start + RECORD_HEADER_LEN as u64 + payload_len > self.len {
            // Torn append: the process crashed while writing this record.
            self.tail = TailStatus::Truncated(start);
            self.done = true;
            return Ok(None);
        }
        let mut payload = vec![0u8; payload_len as usize];
        self.reader.read_exact(&mut payload).map_err(|e| {
            Error::io(format!("reading payload at {start} in {}", self.path.display()), e)
        })?;
        let mut crc = checksum::crc32c(&header[4..8]);
        crc = checksum::extend(crc, &payload);
        if crc != stored_crc {
            self.tail = TailStatus::Truncated(start);
            self.done = true;
            return Ok(None);
        }
        let record = match LogRecord::decode(&payload) {
            Ok(record) => record,
            Err(_) => {
                self.tail = TailStatus::Truncated(start);
                self.done = true;
                return Ok(None);
            }
        };
        self.offset = start + RECORD_HEADER_LEN as u64 + payload_len;
        Ok(Some(RecoveredRecord { offset: start, record }))
    }
}

impl Iterator for LogIterator {
    type Item = Result<RecoveredRecord>;

    fn next(&mut self) -> Option<Self::Item> {
        match self.read_next() {
            Ok(Some(item)) => Some(Ok(item)),
            Ok(None) => None,
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::LogWriter;
    use crate::{log_file_path, RECORD_HEADER_LEN};
    use std::io::Write;
    use std::path::PathBuf;

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("triad-wal-reader-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_records(path: &Path, count: u64) -> Vec<u64> {
        let mut writer = LogWriter::create(path, 0).unwrap();
        let mut offsets = Vec::new();
        for i in 0..count {
            let record = LogRecord::put(
                i,
                format!("key-{i:04}").into_bytes(),
                format!("value-{i}").into_bytes(),
            );
            offsets.push(writer.append(&record).unwrap());
        }
        writer.seal().unwrap();
        offsets
    }

    #[test]
    fn sequential_scan_recovers_everything_in_order() {
        let dir = temp_dir("scan");
        let path = log_file_path(&dir, 0);
        write_records(&path, 500);
        let reader = LogReader::open(&path).unwrap();
        let (records, tail) = reader.recover().unwrap();
        assert_eq!(records.len(), 500);
        assert_eq!(tail, TailStatus::Clean);
        for (i, recovered) in records.iter().enumerate() {
            assert_eq!(recovered.record.seqno, i as u64);
        }
        assert!(!reader.is_empty());
    }

    #[test]
    fn empty_log_is_clean() {
        let dir = temp_dir("empty");
        let path = log_file_path(&dir, 0);
        LogWriter::create(&path, 0).unwrap().seal().unwrap();
        let reader = LogReader::open(&path).unwrap();
        let (records, tail) = reader.recover().unwrap();
        assert!(records.is_empty());
        assert_eq!(tail, TailStatus::Clean);
        assert!(reader.is_empty());
    }

    #[test]
    fn torn_tail_is_detected_and_ignored() {
        let dir = temp_dir("torn");
        let path = log_file_path(&dir, 0);
        write_records(&path, 10);
        let full_len = std::fs::metadata(&path).unwrap().len();
        // Truncate in the middle of the last record.
        let truncated_len = full_len - 3;
        let file = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(truncated_len).unwrap();
        drop(file);

        let reader = LogReader::open(&path).unwrap();
        let (records, tail) = reader.recover().unwrap();
        assert_eq!(records.len(), 9, "the torn record must be dropped");
        assert!(matches!(tail, TailStatus::Truncated(_)));
    }

    #[test]
    fn corrupt_record_stops_recovery() {
        let dir = temp_dir("corrupt");
        let path = log_file_path(&dir, 0);
        let offsets = write_records(&path, 10);
        // Flip a byte inside the payload of the 6th record.
        let mut bytes = std::fs::read(&path).unwrap();
        let target = offsets[5] as usize + RECORD_HEADER_LEN + 2;
        bytes[target] ^= 0xff;
        std::fs::OpenOptions::new().write(true).open(&path).unwrap().write_all(&bytes).unwrap();

        let reader = LogReader::open(&path).unwrap();
        let (records, tail) = reader.recover().unwrap();
        assert_eq!(records.len(), 5);
        assert!(matches!(tail, TailStatus::Truncated(offset) if offset == offsets[5]));
    }

    #[test]
    fn read_at_detects_corruption() {
        let dir = temp_dir("read-at");
        let path = log_file_path(&dir, 0);
        let offsets = write_records(&path, 3);
        let reader = LogReader::open(&path).unwrap();
        assert_eq!(reader.read_at(offsets[2]).unwrap().seqno, 2);

        let mut bytes = std::fs::read(&path).unwrap();
        let target = offsets[1] as usize + RECORD_HEADER_LEN + 1;
        bytes[target] ^= 0x55;
        std::fs::write(&path, &bytes).unwrap();
        let reader = LogReader::open(&path).unwrap();
        let err = reader.read_at(offsets[1]).unwrap_err();
        assert!(err.is_corruption());
        // Other records remain readable.
        assert_eq!(reader.read_at(offsets[0]).unwrap().seqno, 0);
    }

    #[test]
    fn buffered_decode_matches_positioned_reads() {
        let dir = temp_dir("buffered");
        let path = log_file_path(&dir, 0);
        let offsets = write_records(&path, 20);
        let reader = LogReader::open(&path).unwrap();
        let buffer = reader.read_to_buffer().unwrap();
        assert_eq!(buffer.len() as u64, reader.len());
        for &offset in &offsets {
            let from_buffer = super::decode_record_in_buffer(&buffer, offset).unwrap();
            let from_file = reader.read_at(offset).unwrap();
            assert_eq!(from_buffer, from_file);
        }
        // Out-of-bounds and corrupt offsets are rejected.
        assert!(super::decode_record_in_buffer(&buffer, buffer.len() as u64).is_err());
        assert!(super::decode_record_in_buffer(&buffer, offsets[1] + 1).is_err());
    }

    #[test]
    fn read_at_rejects_out_of_bounds_record() {
        let dir = temp_dir("oob");
        let path = log_file_path(&dir, 0);
        let offsets = write_records(&path, 2);
        // Truncate so the second record extends past EOF.
        let file = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(offsets[1] + 9).unwrap();
        drop(file);
        let reader = LogReader::open(&path).unwrap();
        assert!(reader.read_at(offsets[1]).is_err());
    }
}
