//! Building regular block-based SSTables.

use std::path::{Path, PathBuf};

use triad_common::types::{Entry, InternalKey, ValueKind};
use triad_common::{Error, Result};
use triad_hll::hash64;

use crate::block::BlockBuilder;
use crate::bloom::BloomFilter;
use crate::format::{BlockFileWriter, Footer};
use crate::properties::{TableKind, TableProperties};

/// Tuning knobs for table construction.
#[derive(Debug, Clone, Copy)]
pub struct TableBuilderOptions {
    /// Target uncompressed size of a data block.
    pub block_size: usize,
    /// Bloom filter budget in bits per key.
    pub bloom_bits_per_key: usize,
}

impl Default for TableBuilderOptions {
    fn default() -> Self {
        TableBuilderOptions { block_size: 4 * 1024, bloom_bits_per_key: 10 }
    }
}

/// Writes a sorted stream of entries into an SSTable file.
///
/// Entries must be added in strictly increasing internal-key order; the builder
/// enforces this and fails fast otherwise, because an out-of-order table would
/// silently break binary search at read time.
#[derive(Debug)]
pub struct TableBuilder {
    writer: BlockFileWriter,
    options: TableBuilderOptions,
    path: PathBuf,
    block: BlockBuilder,
    index_entries: Vec<(Vec<u8>, crate::format::BlockHandle)>,
    key_hashes: Vec<u64>,
    props: TableProperties,
    last_key: Option<InternalKey>,
}

impl TableBuilder {
    /// Creates a builder writing to `path`.
    pub fn create(path: impl AsRef<Path>, options: TableBuilderOptions) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let writer = BlockFileWriter::create(&path)?;
        Ok(TableBuilder {
            writer,
            options,
            path,
            block: BlockBuilder::new(),
            index_entries: Vec::new(),
            key_hashes: Vec::new(),
            props: TableProperties::new(TableKind::Block),
            last_key: None,
        })
    }

    /// Number of entries added so far.
    pub fn num_entries(&self) -> u64 {
        self.props.num_entries
    }

    /// Approximate size of the table written so far, including the pending block.
    pub fn estimated_size(&self) -> u64 {
        self.writer.offset() + self.block.size_estimate() as u64
    }

    /// Adds an entry. Keys must arrive in strictly increasing internal-key order.
    pub fn add(&mut self, key: &InternalKey, value: &[u8]) -> Result<()> {
        if let Some(last) = &self.last_key {
            if last >= key {
                return Err(Error::InvalidArgument(format!(
                    "table entries must be added in increasing order: {last:?} then {key:?}"
                )));
            }
        }
        let encoded = key.encode();
        self.block.add(&encoded, value);
        self.key_hashes.push(hash64(&key.user_key));
        self.props.hll.add(&key.user_key);
        self.props.num_entries += 1;
        if key.kind == ValueKind::Delete {
            self.props.num_tombstones += 1;
        }
        self.props.raw_key_bytes += key.user_key.len() as u64;
        self.props.raw_value_bytes += value.len() as u64;
        if self.props.smallest.is_none() {
            self.props.smallest = Some(key.clone());
        }
        self.props.largest = Some(key.clone());
        self.last_key = Some(key.clone());

        if self.block.size_estimate() >= self.options.block_size {
            self.flush_data_block()?;
        }
        Ok(())
    }

    /// Adds a complete [`Entry`].
    pub fn add_entry(&mut self, entry: &Entry) -> Result<()> {
        self.add(&entry.key, &entry.value)
    }

    /// Overrides the table kind recorded in the properties block (used by CL-SSTables).
    pub fn set_kind(&mut self, kind: TableKind) {
        self.props.kind = kind;
    }

    /// Records the id of the commit log backing a CL-SSTable.
    pub fn set_backing_log_id(&mut self, id: u64) {
        self.props.backing_log_id = Some(id);
    }

    /// Overrides the raw value byte count (CL-SSTables report the referenced bytes in
    /// the backing log rather than the tiny offsets stored in the index blocks).
    pub fn set_raw_value_bytes(&mut self, bytes: u64) {
        self.props.raw_value_bytes = bytes;
    }

    fn flush_data_block(&mut self) -> Result<()> {
        if self.block.is_empty() {
            return Ok(());
        }
        let last_key = self.block.last_key().expect("non-empty block has a last key").to_vec();
        let payload = self.block.finish();
        let handle = self.writer.write_block(&payload)?;
        self.index_entries.push((last_key, handle));
        Ok(())
    }

    /// Finishes the table: writes the index, bloom and properties blocks plus the
    /// footer, syncs the file and returns the final properties and file size.
    pub fn finish(mut self) -> Result<(TableProperties, u64)> {
        self.flush_data_block()?;
        let mut index_builder = BlockBuilder::new();
        for (key, handle) in &self.index_entries {
            index_builder.add(key, &handle.encode());
        }
        let index_handle = self.writer.write_block(&index_builder.finish())?;
        let bloom =
            BloomFilter::build_from_hashes(&self.key_hashes, self.options.bloom_bits_per_key);
        let bloom_handle = self.writer.write_block(&bloom.to_bytes())?;
        let props_handle = self.writer.write_block(&self.props.encode())?;
        let footer = Footer { index: index_handle, bloom: bloom_handle, properties: props_handle };
        let size = self.writer.finish(&footer)?;
        Ok((self.props, size))
    }

    /// Abandons the table, removing the partially written file.
    pub fn abandon(self) -> Result<()> {
        // A partially written table was never installed in any version, so GC
        // cannot know about it; the builder owns the file until `finish`.
        // lint:allow(no-direct-remove-file) abandoned build, not a live file
        std::fs::remove_file(&self.path)
            .map_err(|e| Error::io(format!("removing abandoned table {}", self.path.display()), e))
    }

    /// The path of the table being built.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Builds a table at `path` from an already-sorted entry iterator.
///
/// Convenience wrapper used by flush and compaction; returns `None` if the iterator
/// yields no entries (in which case no file is created on disk).
pub fn build_table_from_iter<I>(
    path: impl AsRef<Path>,
    options: TableBuilderOptions,
    entries: I,
) -> Result<Option<(TableProperties, u64)>>
where
    I: IntoIterator<Item = Result<Entry>>,
{
    let mut builder: Option<TableBuilder> = None;
    for entry in entries {
        let entry = entry?;
        if builder.is_none() {
            builder = Some(TableBuilder::create(path.as_ref(), options)?);
        }
        builder.as_mut().expect("just created").add_entry(&entry)?;
    }
    match builder {
        Some(builder) => Ok(Some(builder.finish()?)),
        None => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::Table;
    use crate::SortedTable;

    fn temp_path(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("triad-sstable-builder-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path
    }

    fn put_key(i: u64, seqno: u64) -> InternalKey {
        InternalKey::new(format!("key-{i:06}").into_bytes(), seqno, ValueKind::Put)
    }

    #[test]
    fn build_and_reopen_small_table() {
        let path = temp_path("small.sst");
        let mut builder = TableBuilder::create(&path, TableBuilderOptions::default()).unwrap();
        for i in 0..100 {
            builder.add(&put_key(i, i + 1), format!("value-{i}").as_bytes()).unwrap();
        }
        assert_eq!(builder.num_entries(), 100);
        let (props, size) = builder.finish().unwrap();
        assert_eq!(props.num_entries, 100);
        assert_eq!(props.num_tombstones, 0);
        assert_eq!(size, std::fs::metadata(&path).unwrap().len());
        assert_eq!(props.smallest.as_ref().unwrap().user_key, b"key-000000");
        assert_eq!(props.largest.as_ref().unwrap().user_key, b"key-000099");

        let table = Table::open(&path, None).unwrap();
        for i in 0..100u64 {
            let entry = table.get(format!("key-{i:06}").as_bytes(), u64::MAX).unwrap().unwrap();
            assert_eq!(entry.value, format!("value-{i}").as_bytes());
        }
        assert!(table.get(b"key-000100", u64::MAX).unwrap().is_none());
    }

    #[test]
    fn multi_block_table_spans_blocks() {
        let path = temp_path("multiblock.sst");
        let options = TableBuilderOptions { block_size: 256, bloom_bits_per_key: 10 };
        let mut builder = TableBuilder::create(&path, options).unwrap();
        for i in 0..1_000 {
            builder.add(&put_key(i, i + 1), vec![b'v'; 64].as_slice()).unwrap();
        }
        let (props, _) = builder.finish().unwrap();
        assert_eq!(props.num_entries, 1_000);
        let table = Table::open(&path, None).unwrap();
        // Spot-check keys across the whole range, plus absent keys.
        for i in (0..1_000u64).step_by(37) {
            assert!(table.get(format!("key-{i:06}").as_bytes(), u64::MAX).unwrap().is_some());
        }
        assert!(table.get(b"absent", u64::MAX).unwrap().is_none());
    }

    #[test]
    fn out_of_order_insertion_is_rejected() {
        let path = temp_path("order.sst");
        let mut builder = TableBuilder::create(&path, TableBuilderOptions::default()).unwrap();
        builder.add(&put_key(5, 1), b"v").unwrap();
        assert!(builder.add(&put_key(4, 1), b"v").is_err());
        // Re-adding the same internal key is also rejected.
        assert!(builder.add(&put_key(5, 1), b"v").is_err());
        builder.abandon().unwrap();
        assert!(!path.exists());
    }

    #[test]
    fn tombstones_are_counted() {
        let path = temp_path("tombstones.sst");
        let mut builder = TableBuilder::create(&path, TableBuilderOptions::default()).unwrap();
        builder.add(&InternalKey::new(b"a".to_vec(), 1, ValueKind::Put), b"v").unwrap();
        builder.add(&InternalKey::new(b"b".to_vec(), 2, ValueKind::Delete), b"").unwrap();
        let (props, _) = builder.finish().unwrap();
        assert_eq!(props.num_entries, 2);
        assert_eq!(props.num_tombstones, 1);
    }

    #[test]
    fn build_from_iter_skips_empty_input() {
        let path = temp_path("empty-iter.sst");
        let result =
            build_table_from_iter(&path, TableBuilderOptions::default(), std::iter::empty())
                .unwrap();
        assert!(result.is_none());
        assert!(!path.exists());
    }

    #[test]
    fn build_from_iter_builds_table() {
        let path = temp_path("from-iter.sst");
        let entries: Vec<Result<Entry>> = (0..50)
            .map(|i| Ok(Entry::put(format!("k{i:04}").into_bytes(), b"v".to_vec(), i + 1)))
            .collect();
        let (props, _) = build_table_from_iter(&path, TableBuilderOptions::default(), entries)
            .unwrap()
            .expect("table built");
        assert_eq!(props.num_entries, 50);
        assert!(path.exists());
    }

    #[test]
    fn hll_sketch_tracks_distinct_user_keys() {
        let path = temp_path("hll.sst");
        let mut builder = TableBuilder::create(&path, TableBuilderOptions::default()).unwrap();
        for i in 0..2_000u64 {
            builder.add(&put_key(i, i + 1), b"v").unwrap();
        }
        let (props, _) = builder.finish().unwrap();
        let estimate = props.hll.estimate();
        assert!((estimate - 2_000.0).abs() / 2_000.0 < 0.05, "estimate {estimate}");
    }
}
