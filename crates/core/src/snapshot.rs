//! MVCC snapshots: frozen, consistent views of the database.
//!
//! A [`Snapshot`] is a *pin* on three things at once:
//!
//! 1. **A published sequence number** sitting on a commit-group boundary. The
//!    snapshot is opened under the WAL lock plus an exclusive acquisition of
//!    the commit gate, which drains the commit pipeline: every appended group
//!    has published (or been abandoned) by the time the seqno is read, and no
//!    new group can append while the locks are held. A boundary seqno can
//!    never split a write batch, and — because publication happens only after
//!    a group is as durable as the engine's sync policy promises — it can
//!    never cover unacknowledged, non-durable data either.
//! 2. **The memory components**: the active memtable and the sealed list, by
//!    `Arc`. The active memtable keeps absorbing writes afterwards, but the
//!    snapshot registered itself in the shared
//!    [`SnapshotRetention`](triad_common::SnapshotRetention) registry *before*
//!    releasing the gate, so any later overwrite of a version the snapshot can
//!    see preserves that version on the slot's prior list, where the
//!    seqno-bounded probes ([`Memtable::get_at`],
//!    [`Memtable::snapshot_entries_at`]) find it.
//! 3. **The current [`Version`](crate::Version)** via an internal pin: every
//!    table file, CL index and backing commit log the version references survives any
//!    concurrent flush or compaction until the snapshot drops — garbage
//!    collection consults the live-version registry, and a pinned version is
//!    live. Compaction may dedup older versions out of *new* files, but the
//!    snapshot never reads those; it reads the files of the version it pinned.
//!
//! Dropping the snapshot deregisters it (the next overwrite of each slot
//! prunes retained versions nobody can read) and releases the version pin,
//! nudging the collector to reclaim whatever only the snapshot was keeping.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use triad_common::types::SeqNo;
use triad_common::Result;
use triad_memtable::Memtable;

use crate::db::{DbInner, ImmutableMemtable, PinnedVersion};
use crate::iterator::DbIterator;

/// A frozen, consistent view of the database at a commit-group boundary.
///
/// Obtained from [`Db::snapshot`](crate::Db::snapshot); reads through the
/// handle are repeatable and unaffected by concurrent writes, flushes and
/// compactions. The handle is `Send + Sync`; it may outlive arbitrary amounts
/// of write traffic, at the cost of pinning the files and superseded in-memory
/// versions it can still see.
pub struct Snapshot {
    db: Arc<DbInner>,
    seqno: SeqNo,
    /// The memory component that was active at the snapshot point. Later
    /// writes land in it (or a successor) with larger seqnos; the bounded
    /// probes below never see them.
    mem: Arc<Memtable>,
    /// The sealed memtables pending flush at the snapshot point, oldest first.
    imm: Vec<Arc<ImmutableMemtable>>,
    /// Keeps every file of the captured version safe from garbage collection.
    pin: PinnedVersion,
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot").field("seqno", &self.seqno).finish()
    }
}

impl Snapshot {
    /// Captures a snapshot of `db`. See the module docs for the protocol.
    pub(crate) fn open(db: &Arc<DbInner>) -> Snapshot {
        let (seqno, mem, imm, pin) = {
            // WAL lock then exclusive commit gate — the engine's global lock
            // order. With both held the pipeline is drained: `last_seqno` is a
            // group boundary and every write at or below it is fully applied.
            let _wal = db.wal.lock();
            let _gate = db.commit_gate.write();
            let seqno = db.last_seqno.load(Ordering::Acquire);
            // Register *before* the gate opens: the first write group that could
            // overwrite something this snapshot sees must already find it
            // registered, or the shadowed version would be discarded.
            db.retention.register(seqno);
            let mem = db.mem.read().clone();
            let imm: Vec<Arc<ImmutableMemtable>> = db.imm.read().clone();
            let pin = db.pin_current_version();
            (seqno, mem, imm, pin)
        };
        db.stats.add_snapshots_created(1);
        Snapshot { db: Arc::clone(db), seqno, mem, imm, pin }
    }

    /// The snapshot's sequence number: the largest seqno whose effects are
    /// visible through this handle. Always a commit-group boundary.
    pub fn seqno(&self) -> SeqNo {
        self.seqno
    }

    /// Returns the value `key` had at the snapshot point, or `None` if it did
    /// not exist (or was deleted) then.
    ///
    /// The probe order mirrors the live read path — active memtable, sealed
    /// memtables newest first, then the pinned version level by level — but
    /// every probe is bounded by the snapshot seqno and consults retained
    /// prior versions. The capture-time components are used, not the current
    /// ones: a memtable sealed, flushed and even garbage-collected since the
    /// snapshot was taken is still read here, in memory, through its `Arc`.
    pub fn get(&self, key: impl AsRef<[u8]>) -> Result<Option<Vec<u8>>> {
        let started = std::time::Instant::now();
        let result = self.get_inner(key.as_ref());
        self.db.stats.record_get_latency_ns(started.elapsed().as_nanos() as u64);
        result
    }

    /// The untimed body of [`get`](Self::get); bounded-probe order documented
    /// there.
    fn get_inner(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let db = &self.db;
        db.stats.add_user_reads(1);

        // 1. The memtable that was active at the snapshot point.
        db.stats.add_memtable_probes(1);
        if let Some(entry) = self.mem.get_at(key, self.seqno) {
            return Ok(db.resolve_entry(entry));
        }
        // 2. The sealed memtables of the snapshot point, newest first.
        for sealed in self.imm.iter().rev() {
            db.stats.add_memtable_probes(1);
            if let Some(entry) = sealed.memtable.get_at(key, self.seqno) {
                return Ok(db.resolve_entry(entry));
            }
        }
        // 3. The pinned version, level by level. Within L0 files are probed
        // newest first, and no older file can hold a newer visible version
        // than a younger file (flush order), so the first bounded hit is the
        // newest version the snapshot can see.
        for level in 0..self.pin.num_levels() {
            for file in self.pin.files_for_key(level, key) {
                let table = db.table_cache.get_or_open(&file)?;
                db.stats.add_table_probes(1);
                if let Some(entry) = table.get(key, self.seqno)? {
                    return Ok(db.resolve_entry(entry));
                }
            }
        }
        Ok(None)
    }

    /// Returns an iterator over every key/value pair that was live at the
    /// snapshot point, in key order.
    pub fn scan(&self) -> Result<DbIterator> {
        self.scan_range(None, None)
    }

    /// Returns an iterator over the snapshot's live key/value pairs with user
    /// keys in `[start, end)`; either bound may be omitted.
    ///
    /// Unlike the live [`Db::scan_range`](crate::Db::scan_range), no lock is
    /// taken: the snapshot seqno already sits on a commit-group boundary, so
    /// the bounded view is batch-atomic by construction — a concurrent group's
    /// writes all carry seqnos above the bound, and anything it overwrites that
    /// the snapshot can see is preserved by the retention registry.
    pub fn scan_range(&self, start: Option<&[u8]>, end: Option<&[u8]>) -> Result<DbIterator> {
        DbIterator::with_snapshot(
            &self.db,
            &self.mem,
            &self.imm,
            Arc::clone(self.pin.version()),
            self.seqno,
            start.map(|s| s.to_vec()),
            end.map(|e| e.to_vec()),
        )
    }
}

impl Drop for Snapshot {
    fn drop(&mut self) {
        // Deregistration first: subsequent overwrites stop retaining for this
        // seqno and prune what only it could read. The field drops that follow
        // release the memtables and the version pin; the pin's drop nudges the
        // garbage collector if files are waiting.
        self.db.retention.deregister(self.seqno);
    }
}
