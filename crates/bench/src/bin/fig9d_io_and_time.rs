//! Regenerates Figure 9D (compacted GB and percentage of time spent in compaction).

use triad_bench::experiments::fig9d_io_time;
use triad_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    fig9d_io_time::run(scale).expect("figure 9D experiment failed");
}
