//! Full-database scans.

use std::sync::Arc;

use triad_common::types::{Entry, ValueKind};
use triad_common::Result;
use triad_sstable::{DedupIterator, EntryIter, MergingIterator};

use crate::db::DbInner;

/// An iterator over every live key/value pair in the database, in key order.
///
/// The iterator observes a consistent snapshot of the tree taken at creation time:
/// the active memtable, the sealed memtables and the current version. Later writes
/// are not reflected.
pub struct DbIterator {
    inner: DedupIterator,
    /// Inclusive lower bound on user keys, if any.
    start: Option<Vec<u8>>,
    /// Exclusive upper bound on user keys, if any.
    end: Option<Vec<u8>>,
}

impl DbIterator {
    /// Creates an iterator restricted to user keys in `[start, end)`.
    pub(crate) fn with_bounds(
        db: &Arc<DbInner>,
        start: Option<Vec<u8>>,
        end: Option<Vec<u8>>,
    ) -> Result<DbIterator> {
        let snapshot = db.last_seqno.load(std::sync::atomic::Ordering::Acquire);
        let mut sources: Vec<EntryIter> = Vec::new();

        // Newest sources first so the dedup iterator keeps the latest version.
        let mem = db.mem.read().clone();
        sources.push(Box::new(
            mem.snapshot_as_entries().into_iter().filter(move |e| e.key.seqno <= snapshot).map(Ok),
        ));
        {
            let imm = db.imm.read();
            for sealed in imm.iter().rev() {
                let entries = sealed.memtable.snapshot_as_entries();
                sources.push(Box::new(
                    entries.into_iter().filter(move |e| e.key.seqno <= snapshot).map(Ok),
                ));
            }
        }
        let version = db.current_version.read().clone();
        for level in 0..version.num_levels() {
            for file in &version.levels[level] {
                let table = db.table_cache.get_or_open(file)?;
                sources.push(table.entries()?);
            }
        }
        let merged = MergingIterator::new(sources)?;
        Ok(DbIterator { inner: DedupIterator::new(Box::new(merged), false), start, end })
    }
}

impl Iterator for DbIterator {
    type Item = Result<(Vec<u8>, Vec<u8>)>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let entry: Entry = match self.inner.next()? {
                Ok(entry) => entry,
                Err(e) => return Some(Err(e)),
            };
            if let Some(start) = &self.start {
                if entry.key.user_key.as_slice() < start.as_slice() {
                    continue;
                }
            }
            if let Some(end) = &self.end {
                if entry.key.user_key.as_slice() >= end.as_slice() {
                    // Sources are sorted, so nothing after this point can qualify.
                    return None;
                }
            }
            match entry.key.kind {
                ValueKind::Put => return Some(Ok((entry.key.user_key, entry.value))),
                ValueKind::Delete => continue,
            }
        }
    }
}
