// lint-fixture: crates/core/src/db.rs
// The append-stage markers vanished entirely, and the generic region below is
// opened but never closed.

// HOT-READ-NEWEST-BEGIN
fn hot_read(&self, key: &[u8]) {
    let hit = memtable.get(key, u64::MAX);
}
// HOT-READ-NEWEST-END

// LINT-REGION: dangling-invariant
fn custom(&self) {}
