//! Behaviour of the three TRIAD techniques, individually and combined.

mod common;

use common::{key_for, open_small, temp_dir, value_for};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use triad_core::{Db, Options, TriadConfig};

/// Applies a deterministic skewed update stream to `db`: 10% of the keys receive 90%
/// of the updates. Returns the logically expected final state.
fn apply_skewed_workload(
    db: &Db,
    keys: u64,
    ops: u64,
    seed: u64,
) -> std::collections::BTreeMap<Vec<u8>, Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut model = std::collections::BTreeMap::new();
    let hot_keys = (keys / 10).max(1);
    for version in 0..ops {
        let key_index = if rng.gen::<f64>() < 0.9 {
            rng.gen_range(0..hot_keys)
        } else {
            rng.gen_range(hot_keys..keys)
        };
        let key = key_for(key_index);
        if rng.gen::<f64>() < 0.05 {
            db.delete(&key).unwrap();
            model.remove(&key);
        } else {
            let value = value_for(key_index, version);
            db.put(&key, &value).unwrap();
            model.insert(key, value);
        }
    }
    model
}

fn verify_against_model(db: &Db, model: &std::collections::BTreeMap<Vec<u8>, Vec<u8>>, keys: u64) {
    for i in 0..keys {
        let key = key_for(i);
        assert_eq!(db.get(&key).unwrap(), model.get(&key).cloned(), "mismatch for key {i}");
    }
    let scanned: Vec<(Vec<u8>, Vec<u8>)> = db.scan().unwrap().map(|r| r.unwrap()).collect();
    assert_eq!(scanned.len(), model.len(), "scan length mismatch");
    for ((scan_key, scan_value), (model_key, model_value)) in scanned.iter().zip(model.iter()) {
        assert_eq!(scan_key, model_key);
        assert_eq!(scan_value, model_value);
    }
}

#[test]
fn every_triad_configuration_is_logically_equivalent_to_the_baseline() {
    let configs = [
        ("baseline", TriadConfig::baseline()),
        ("mem", TriadConfig::mem_only()),
        ("disk", TriadConfig::disk_only()),
        ("log", TriadConfig::log_only()),
        ("all", TriadConfig::all_enabled()),
    ];
    for (name, triad) in configs {
        let (db, _dir) = open_small(&format!("equiv-{name}"), |options| {
            options.triad = triad.clone();
            options.l0_compaction_trigger = 2;
        });
        let model = apply_skewed_workload(&db, 400, 4_000, 42);
        verify_against_model(&db, &model, 400);
        // Force all background work and re-verify: flushing and compaction must not
        // change the logical contents.
        db.flush().unwrap();
        db.wait_for_compactions().unwrap();
        verify_against_model(&db, &model, 400);
        db.close().unwrap();
    }
}

#[test]
fn triad_mem_retains_hot_entries_in_memory() {
    let (db, _dir) = open_small("triad-mem", |options| {
        options.triad = TriadConfig::mem_only();
        options.triad.flush_skip_threshold_bytes = 0; // isolate the hot/cold split
    });
    apply_skewed_workload(&db, 500, 8_000, 7);
    db.flush().unwrap();
    let stats = db.stats();
    assert!(stats.hot_entries_retained > 0, "TRIAD-MEM must keep some hot entries in memory");
    db.close().unwrap();
}

#[test]
fn triad_mem_skips_small_flushes_when_the_log_fills_up() {
    // A tiny log limit with a large memtable: only updates to a handful of keys, so
    // the memtable stays small while the log keeps growing. The paper's FLUSH_TH rule
    // should rotate the log without flushing.
    let (db, _dir) = open_small("flush-skip", |options| {
        options.memtable_size = 1024 * 1024;
        options.max_log_size = 32 * 1024;
        options.triad = TriadConfig::mem_only();
        options.triad.flush_skip_threshold_bytes = 512 * 1024;
    });
    for version in 0..2_000u64 {
        let key = key_for(version % 10);
        db.put(&key, value_for(version % 10, version)).unwrap();
    }
    let stats = db.stats();
    assert!(stats.small_flush_skips > 0, "expected small-flush skips, got {stats:?}");
    assert_eq!(stats.flush_count, 0, "no real flush should have happened");
    assert_eq!(db.files_per_level()[0], 0, "no L0 files should exist");
    // The data is still correct.
    for i in 0..10u64 {
        assert!(db.get(key_for(i)).unwrap().is_some());
    }
    db.close().unwrap();
}

#[test]
fn baseline_flushes_even_when_memtable_is_small() {
    let (db, _dir) = open_small("baseline-no-skip", |options| {
        options.memtable_size = 1024 * 1024;
        options.max_log_size = 32 * 1024;
        options.triad = TriadConfig::baseline();
    });
    for version in 0..2_000u64 {
        let key = key_for(version % 10);
        db.put(&key, value_for(version % 10, version)).unwrap();
    }
    db.flush().unwrap();
    let stats = db.stats();
    assert_eq!(stats.small_flush_skips, 0);
    assert!(stats.flush_count > 0, "the baseline flushes whenever the log fills up");
    db.close().unwrap();
}

#[test]
fn triad_log_writes_cl_sstables_and_flushes_fewer_bytes() {
    let run = |triad: TriadConfig, name: &str| -> (u64, u64, bool) {
        let (db, dir) = open_small(name, |options| {
            common::single_shard(options); // flush-byte accounting assumes one shard
            options.triad = triad;
            // Disable compaction so we only measure flush I/O.
            options.l0_compaction_trigger = 1_000;
            options.triad.max_l0_files = 1_000;
        });
        for i in 0..3_000u64 {
            db.put(key_for(i), value_for(i, 1)).unwrap();
        }
        db.flush().unwrap();
        let stats = db.stats();
        for i in (0..3_000u64).step_by(97) {
            assert_eq!(db.get(key_for(i)).unwrap(), Some(value_for(i, 1)));
        }
        let has_clidx = std::fs::read_dir(&dir)
            .unwrap()
            .any(|e| e.unwrap().file_name().to_string_lossy().ends_with(".clidx"));
        db.close().unwrap();
        (stats.bytes_flushed, stats.flush_count, has_clidx)
    };

    let (baseline_bytes, baseline_flushes, baseline_clidx) =
        run(TriadConfig::baseline(), "log-baseline");
    let (triad_bytes, triad_flushes, triad_clidx) = run(TriadConfig::log_only(), "log-triad");
    assert!(!baseline_clidx, "baseline must not produce CL-SSTables");
    assert!(triad_clidx, "TRIAD-LOG must produce CL-SSTable index files");
    assert!(baseline_flushes > 0 && triad_flushes > 0);
    assert!(
        triad_bytes * 3 < baseline_bytes,
        "TRIAD-LOG flush bytes ({triad_bytes}) should be far below the baseline ({baseline_bytes})"
    );
}

#[test]
fn triad_disk_defers_compactions_and_tolerates_more_l0_files() {
    let run = |triad: TriadConfig, name: &str| -> (u64, u64) {
        let (db, _dir) = open_small(name, |options| {
            options.l0_compaction_trigger = 2;
            options.triad = triad;
            options.triad.max_l0_files = 8;
            options.triad.overlap_ratio_threshold = 0.4;
        });
        // Disjoint key ranges per flush: very low overlap, so TRIAD-DISK should defer.
        for batch in 0..6u64 {
            for i in 0..400u64 {
                let key = key_for(batch * 10_000 + i);
                db.put(&key, value_for(i, batch)).unwrap();
            }
            db.flush().unwrap();
        }
        db.wait_for_compactions().unwrap();
        let stats = db.stats();
        db.close().unwrap();
        (stats.compaction_count, stats.compactions_deferred)
    };
    let (baseline_compactions, baseline_deferred) = run(TriadConfig::baseline(), "disk-baseline");
    let (triad_compactions, triad_deferred) = run(TriadConfig::disk_only(), "disk-triad");
    assert_eq!(baseline_deferred, 0);
    assert!(baseline_compactions >= 1);
    assert!(triad_deferred > 0, "TRIAD-DISK should defer low-overlap compactions");
    assert!(
        triad_compactions <= baseline_compactions,
        "deferral must not increase compaction count ({triad_compactions} vs {baseline_compactions})"
    );
}

#[test]
fn triad_disk_still_compacts_when_overlap_is_high() {
    let (db, _dir) = open_small("disk-overlap", |options| {
        options.l0_compaction_trigger = 2;
        options.triad = TriadConfig::disk_only();
        options.triad.max_l0_files = 20;
        options.triad.overlap_ratio_threshold = 0.4;
    });
    // Every flush rewrites the same keys: overlap close to 1, so compaction proceeds.
    for round in 0..4u64 {
        for i in 0..400u64 {
            db.put(key_for(i), value_for(i, round)).unwrap();
        }
        db.flush().unwrap();
    }
    db.wait_for_compactions().unwrap();
    let stats = db.stats();
    assert!(stats.compaction_count >= 1, "high-overlap L0 files must be compacted");
    // Data still correct, at its newest version.
    for i in (0..400u64).step_by(37) {
        assert_eq!(db.get(key_for(i)).unwrap(), Some(value_for(i, 3)));
    }
    db.close().unwrap();
}

#[test]
fn triad_disk_hard_cap_forces_compaction_regardless_of_overlap() {
    let (db, _dir) = open_small("disk-cap", |options| {
        common::single_shard(options); // L0 file-count arithmetic assumes one shard
        options.l0_compaction_trigger = 2;
        options.triad = TriadConfig::disk_only();
        options.triad.max_l0_files = 3;
        options.triad.overlap_ratio_threshold = 0.99; // effectively never by ratio
    });
    for batch in 0..5u64 {
        for i in 0..300u64 {
            db.put(key_for(batch * 10_000 + i), value_for(i, batch)).unwrap();
        }
        db.flush().unwrap();
        db.wait_for_compactions().unwrap();
    }
    let files = db.files_per_level();
    assert!(files[0] < 5, "the hard cap must bound L0 growth, got {files:?}");
    assert!(db.stats().compaction_count >= 1);
    db.close().unwrap();
}

#[test]
fn full_triad_reduces_flush_bytes_under_skew() {
    let run = |triad: TriadConfig, name: &str| -> triad_core::StatSnapshot {
        let (db, _dir) = open_small(name, |options| {
            options.triad = triad;
            options.l0_compaction_trigger = 2;
        });
        apply_skewed_workload(&db, 600, 12_000, 99);
        db.flush().unwrap();
        db.wait_for_compactions().unwrap();
        let stats = db.stats();
        db.close().unwrap();
        stats
    };
    let baseline = run(TriadConfig::baseline(), "full-baseline");
    let triad = run(TriadConfig::all_enabled(), "full-triad");
    let baseline_bg = baseline.bytes_flushed + baseline.bytes_compacted_written;
    let triad_bg = triad.bytes_flushed + triad.bytes_compacted_written;
    assert!(
        triad_bg < baseline_bg,
        "TRIAD should write fewer background bytes ({triad_bg}) than the baseline ({baseline_bg})"
    );
    assert!(triad.bytes_flushed < baseline.bytes_flushed);
}

#[test]
fn background_io_disabled_mode_never_flushes() {
    let dir = temp_dir("no-bg-io");
    let mut options = Options::small_for_tests();
    options.background_io = triad_core::BackgroundIoMode::Disabled;
    let db = Db::open(&dir, options).unwrap();
    for i in 0..3_000u64 {
        db.put(key_for(i), value_for(i, 1)).unwrap();
    }
    let stats = db.stats();
    assert_eq!(stats.flush_count, 0);
    assert_eq!(stats.bytes_flushed, 0);
    assert_eq!(stats.compaction_count, 0);
    assert_eq!(db.files_per_level().iter().sum::<usize>(), 0);
    // Recently written keys (still in the current memtable) remain readable.
    db.put(b"recent", b"value").unwrap();
    assert_eq!(db.get(b"recent").unwrap().as_deref(), Some(&b"value"[..]));
    db.close().unwrap();
}

#[test]
fn config_labels_cover_the_breakdown_matrix() {
    assert_eq!(TriadConfig::baseline().label(), "RocksDB");
    assert_eq!(TriadConfig::all_enabled().label(), "TRIAD");
    assert_eq!(TriadConfig::mem_only().label(), "TRIAD-MEM");
    assert_eq!(TriadConfig::disk_only().label(), "TRIAD-DISK");
    assert_eq!(TriadConfig::log_only().label(), "TRIAD-LOG");
}

#[test]
fn pinned_scans_keep_cl_backing_logs_alive_until_dropped() {
    let (db, dir) = open_small("cl-pinned-scan", |options| {
        common::single_shard(options); // counts .log/.clidx files of one shard
        options.triad = TriadConfig::log_only();
        options.l0_compaction_trigger = 2;
    });
    for i in 0..300u64 {
        db.put(key_for(i), value_for(i, 1)).unwrap();
    }
    db.flush().unwrap();
    assert!(
        common::disk_files(&dir).iter().any(|n| n.ends_with(".clidx")),
        "TRIAD-LOG flush must produce a CL-SSTable"
    );

    // The scan pins the version holding the CL-SSTable — and therefore its
    // backing commit log — before compaction retires both.
    let mut scan = db.scan().unwrap();
    let (first_key, first_value) = scan.next().unwrap().unwrap();
    assert_eq!(first_key, key_for(0));
    assert_eq!(first_value, value_for(0, 1));

    // A second round triggers the L0→L1 compaction that rewrites the CL-SSTables
    // into regular block tables, retiring the indexes and their backing logs.
    for i in 0..300u64 {
        db.put(key_for(i), value_for(i, 2)).unwrap();
    }
    db.flush().unwrap();
    db.wait_for_compactions().unwrap();
    assert!(db.stats().compaction_count >= 1);

    // GC must hold the pinned snapshot's files back: the CL index and at least
    // one retired commit log besides the active WAL are still on disk.
    db.collect_garbage();
    let files = common::disk_files(&dir);
    assert!(
        files.iter().any(|n| n.ends_with(".clidx")),
        "pinned CL-SSTable index deleted under a live scan: {files:?}"
    );
    assert!(
        files.iter().filter(|n| n.ends_with(".log")).count() >= 2,
        "pinned backing log deleted under a live scan: {files:?}"
    );

    // The scan still reads its round-1 snapshot through the backing log, without
    // a single missing-file error, even though the current version moved on.
    let mut seen = 1u64;
    for entry in scan.by_ref() {
        let (key, value) = entry.expect("pinned scan must never surface an error");
        assert_eq!(key, key_for(seen), "scan order");
        assert_eq!(value, value_for(seen, 1), "scan must observe its snapshot");
        seen += 1;
    }
    assert_eq!(seen, 300, "the snapshot holds every round-1 entry");

    // Dropping the scan releases the pin; now the retired files can go.
    drop(scan);
    common::assert_disk_matches_live_set(&db, &dir);
    let files = common::disk_files(&dir);
    assert!(files.iter().all(|n| !n.ends_with(".clidx")), "CL index leaked: {files:?}");
    assert_eq!(
        files.iter().filter(|n| n.ends_with(".log")).count(),
        1,
        "only the active WAL log may remain: {files:?}"
    );
    // And the data the current version serves is round 2.
    for i in (0..300u64).step_by(37) {
        assert_eq!(db.get(key_for(i)).unwrap(), Some(value_for(i, 2)));
    }
    db.close().unwrap();
}
