//! Baseline engine behaviour: CRUD, flushing, compaction and statistics.

mod common;

use common::{key_for, open_small, value_for};
use triad_core::{Db, Options, SyncMode, WriteBatch, WriteOptions};

#[test]
fn put_get_delete_round_trip() {
    let (db, _dir) = open_small("crud", |_| {});
    assert_eq!(db.get(b"missing").unwrap(), None);

    db.put(b"alpha", b"1").unwrap();
    db.put(b"beta", b"2").unwrap();
    assert_eq!(db.get(b"alpha").unwrap().as_deref(), Some(&b"1"[..]));
    assert_eq!(db.get(b"beta").unwrap().as_deref(), Some(&b"2"[..]));

    db.put(b"alpha", b"updated").unwrap();
    assert_eq!(db.get(b"alpha").unwrap().as_deref(), Some(&b"updated"[..]));

    db.delete(b"beta").unwrap();
    assert_eq!(db.get(b"beta").unwrap(), None);
    assert_eq!(db.get(b"alpha").unwrap().as_deref(), Some(&b"updated"[..]));
    db.close().unwrap();
}

#[test]
fn values_survive_explicit_flush() {
    let (db, _dir) = open_small("explicit-flush", |_| {});
    for i in 0..200u64 {
        db.put(key_for(i), value_for(i, 1)).unwrap();
    }
    db.flush().unwrap();
    let files = db.files_per_level();
    assert!(files[0] >= 1, "flush must create an L0 file, got {files:?}");
    for i in 0..200u64 {
        assert_eq!(db.get(key_for(i)).unwrap(), Some(value_for(i, 1)), "key {i} after flush");
    }
    // Updates after a flush shadow the on-disk values.
    db.put(key_for(3), value_for(3, 2)).unwrap();
    assert_eq!(db.get(key_for(3)).unwrap(), Some(value_for(3, 2)));
    db.close().unwrap();
}

#[test]
fn deletes_shadow_flushed_values() {
    let (db, _dir) = open_small("delete-shadow", |_| {});
    for i in 0..100u64 {
        db.put(key_for(i), value_for(i, 1)).unwrap();
    }
    db.flush().unwrap();
    for i in (0..100u64).step_by(2) {
        db.delete(key_for(i)).unwrap();
    }
    for i in 0..100u64 {
        let got = db.get(key_for(i)).unwrap();
        if i % 2 == 0 {
            assert_eq!(got, None, "even key {i} was deleted");
        } else {
            assert_eq!(got, Some(value_for(i, 1)), "odd key {i} still present");
        }
    }
    // Deletes also survive another flush.
    db.flush().unwrap();
    assert_eq!(db.get(key_for(0)).unwrap(), None);
    db.close().unwrap();
}

#[test]
fn automatic_flushes_and_compactions_keep_data_readable() {
    let (db, _dir) = open_small("auto-compact", |options| {
        options.l0_compaction_trigger = 2;
    });
    // Write enough data (several times the 64 KiB test memtable) to force multiple
    // flushes and at least one compaction, with several versions per key. Each
    // round is flushed explicitly: a sealed memtable fully shadowed by newer
    // writes flushes to nothing, so without the forced flushes the L0 file count
    // (and whether compaction triggers) would depend on scheduling.
    for version in 1..=3u64 {
        for i in 0..600u64 {
            db.put(key_for(i), value_for(i, version)).unwrap();
        }
        db.flush().unwrap();
    }
    db.wait_for_compactions().unwrap();

    for i in 0..600u64 {
        assert_eq!(
            db.get(key_for(i)).unwrap(),
            Some(value_for(i, 3)),
            "key {i} must have its latest version"
        );
    }
    let stats = db.stats();
    assert!(stats.flush_count >= 2, "expected several flushes, got {}", stats.flush_count);
    assert!(
        stats.compaction_count >= 1,
        "expected at least one compaction, got {}",
        stats.compaction_count
    );
    let files = db.files_per_level();
    assert!(
        files.iter().skip(1).any(|&n| n > 0),
        "compaction must populate a deeper level: {files:?}"
    );
    db.close().unwrap();
}

#[test]
fn scan_returns_sorted_live_entries() {
    let (db, _dir) = open_small("scan", |_| {});
    for i in (0..300u64).rev() {
        db.put(key_for(i), value_for(i, 1)).unwrap();
    }
    db.flush().unwrap();
    for i in 300..400u64 {
        db.put(key_for(i), value_for(i, 1)).unwrap();
    }
    for i in (0..400u64).step_by(10) {
        db.delete(key_for(i)).unwrap();
    }
    let entries: Vec<(Vec<u8>, Vec<u8>)> = db.scan().unwrap().map(|r| r.unwrap()).collect();
    let expected: Vec<u64> = (0..400u64).filter(|i| i % 10 != 0).collect();
    assert_eq!(entries.len(), expected.len());
    for (entry, expect) in entries.iter().zip(expected.iter()) {
        assert_eq!(entry.0, key_for(*expect));
        assert_eq!(entry.1, value_for(*expect, 1));
    }
    for window in entries.windows(2) {
        assert!(window[0].0 < window[1].0, "scan must be sorted");
    }
    db.close().unwrap();
}

#[test]
fn range_scans_respect_bounds_across_memory_and_disk() {
    let (db, _dir) = open_small("range-scan", |_| {});
    for i in 0..300u64 {
        db.put(key_for(i), value_for(i, 1)).unwrap();
    }
    db.flush().unwrap();
    for i in 300..350u64 {
        db.put(key_for(i), value_for(i, 1)).unwrap();
    }
    db.delete(key_for(120)).unwrap();

    // [100, 130): keys 100..129 except the deleted 120.
    let range: Vec<(Vec<u8>, Vec<u8>)> = db
        .scan_range(Some(&key_for(100)), Some(&key_for(130)))
        .unwrap()
        .map(|r| r.unwrap())
        .collect();
    let expected: Vec<u64> = (100..130).filter(|&i| i != 120).collect();
    assert_eq!(range.len(), expected.len());
    for (got, want) in range.iter().zip(expected.iter()) {
        assert_eq!(got.0, key_for(*want));
    }
    // Lower bound only: everything from 340 upward (spans memtable-only keys).
    let tail: Vec<_> =
        db.scan_range(Some(&key_for(340)), None).unwrap().map(|r| r.unwrap()).collect();
    assert_eq!(tail.len(), 10);
    assert_eq!(tail[0].0, key_for(340));
    // Upper bound only.
    let head: Vec<_> =
        db.scan_range(None, Some(&key_for(3))).unwrap().map(|r| r.unwrap()).collect();
    assert_eq!(head.len(), 3);
    // Empty range.
    assert_eq!(db.scan_range(Some(&key_for(10)), Some(&key_for(10))).unwrap().count(), 0);
    // Range entirely past the data.
    assert_eq!(db.scan_range(Some(&key_for(999)), None).unwrap().count(), 0);
    db.close().unwrap();
}

#[test]
fn write_batches_apply_atomically_in_order() {
    let (db, _dir) = open_small("batch", |_| {});
    let mut batch = WriteBatch::new();
    batch.put(b"a".to_vec(), b"1".to_vec());
    batch.put(b"b".to_vec(), b"2".to_vec());
    batch.delete(b"a".to_vec());
    batch.put(b"c".to_vec(), b"3".to_vec());
    db.write(batch, WriteOptions::default()).unwrap();
    assert_eq!(
        db.get(b"a").unwrap(),
        None,
        "the delete inside the batch wins over the earlier put"
    );
    assert_eq!(db.get(b"b").unwrap().as_deref(), Some(&b"2"[..]));
    assert_eq!(db.get(b"c").unwrap().as_deref(), Some(&b"3"[..]));
    // An empty batch is a no-op.
    db.write(WriteBatch::new(), WriteOptions::default()).unwrap();
    db.close().unwrap();
}

#[test]
fn stats_reflect_user_traffic_and_write_amplification() {
    let (db, _dir) = open_small("stats", |options| {
        options.l0_compaction_trigger = 2;
    });
    for version in 1..=2u64 {
        for i in 0..400u64 {
            db.put(key_for(i), value_for(i, version)).unwrap();
        }
    }
    db.delete(key_for(0)).unwrap();
    for i in 0..50u64 {
        db.get(key_for(i)).unwrap();
    }
    db.flush().unwrap();
    db.wait_for_compactions().unwrap();
    let stats = db.stats();
    assert_eq!(stats.user_writes, 800);
    assert_eq!(stats.user_deletes, 1);
    assert_eq!(stats.user_reads, 50);
    assert!(stats.user_read_hits >= 49, "almost every read hits, got {}", stats.user_read_hits);
    assert!(stats.wal_bytes_written > 0);
    assert!(stats.bytes_flushed > 0);
    assert!(stats.write_amplification() >= 1.0);
    assert!(stats.background_time().as_micros() > 0);
    assert!(stats.read_amplification() >= 0.0);
    db.close().unwrap();
}

#[test]
fn sync_modes_are_accepted() {
    for (name, mode) in [
        ("nosync", SyncMode::NoSync),
        ("sync-every", SyncMode::SyncEveryWrite),
        ("sync-n", SyncMode::SyncEvery(8)),
    ] {
        let (db, _dir) = open_small(&format!("sync-{name}"), |options| {
            options.sync_mode = mode;
        });
        for i in 0..32u64 {
            db.put(key_for(i), value_for(i, 1)).unwrap();
        }
        let stats = db.stats();
        match mode {
            SyncMode::NoSync => assert_eq!(stats.wal_syncs, 0),
            SyncMode::SyncEveryWrite => assert_eq!(stats.wal_syncs, 32),
            SyncMode::SyncEvery(_) => assert!(stats.wal_syncs >= 3, "got {}", stats.wal_syncs),
        }
        // Per-write sync override always syncs.
        db.put_opt(b"forced", b"sync", WriteOptions { sync: true }).unwrap();
        assert!(db.stats().wal_syncs >= stats.wal_syncs + u64::from(mode == SyncMode::NoSync));
        db.close().unwrap();
    }
}

#[test]
fn empty_keys_and_large_values_are_handled() {
    let (db, _dir) = open_small("edge-sizes", |_| {});
    db.put(b"", b"empty-key").unwrap();
    assert_eq!(db.get(b"").unwrap().as_deref(), Some(&b"empty-key"[..]));
    let large_value = vec![0xabu8; 300 * 1024];
    db.put(b"large", &large_value).unwrap();
    db.flush().unwrap();
    assert_eq!(db.get(b"large").unwrap(), Some(large_value));
    assert_eq!(db.get(b"").unwrap().as_deref(), Some(&b"empty-key"[..]));
    db.close().unwrap();
}

#[test]
fn writes_after_close_are_rejected() {
    let (db, _dir) = open_small("closed", |_| {});
    db.put(b"a", b"1").unwrap();
    db.close().unwrap();
    assert!(db.put(b"b", b"2").is_err());
    // Closing twice is fine.
    db.close().unwrap();
}

#[test]
fn invalid_options_are_rejected_at_open() {
    let dir = common::temp_dir("bad-options");
    let mut options = Options::small_for_tests();
    options.memtable_size = 0;
    assert!(Db::open(&dir, options).is_err());
}

#[test]
fn disk_usage_and_files_per_level_report_layout() {
    let (db, _dir) = open_small("layout", |_| {});
    assert_eq!(db.disk_usage(), 0);
    for i in 0..500u64 {
        db.put(key_for(i), value_for(i, 1)).unwrap();
    }
    db.flush().unwrap();
    assert!(db.disk_usage() > 0);
    let files = db.files_per_level();
    assert_eq!(files.len(), db.options().num_levels);
    assert!(files[0] >= 1);
    db.close().unwrap();
}

#[test]
fn a_single_read_counts_one_probe_per_consulted_component() {
    let (db, _dir) = open_small("probe-counters", common::single_shard);
    for i in 0..100u64 {
        db.put(key_for(i), value_for(i, 1)).unwrap();
    }
    db.flush().unwrap();
    assert_eq!(db.files_per_level()[0], 1, "one flushed memtable makes one L0 table");

    // A hit below the (now empty) memtable: one memtable probe, one table probe.
    let before = db.stats();
    assert_eq!(db.get(key_for(7)).unwrap(), Some(value_for(7, 1)));
    let delta = db.stats().delta_since(&before);
    assert_eq!(delta.user_reads, 1, "one read is one read — no hidden retries");
    assert_eq!(delta.memtable_probes, 1, "the active memtable is consulted exactly once");
    assert_eq!(delta.table_probes, 1, "the single L0 table is consulted exactly once");

    // A miss outside every table's key range never reaches the disk component.
    let before = db.stats();
    assert_eq!(db.get(b"zzz-way-out-of-range").unwrap(), None);
    let delta = db.stats().delta_since(&before);
    assert_eq!(delta.user_reads, 1);
    assert_eq!(delta.memtable_probes, 1);
    assert_eq!(delta.table_probes, 0, "no table overlaps the key, so no probe");

    // A hit in the active memtable stops there.
    db.put(key_for(7), value_for(7, 2)).unwrap();
    let before = db.stats();
    assert_eq!(db.get(key_for(7)).unwrap(), Some(value_for(7, 2)));
    let delta = db.stats().delta_since(&before);
    assert_eq!(delta.user_reads, 1);
    assert_eq!(delta.memtable_probes, 1);
    assert_eq!(delta.table_probes, 0);
    db.close().unwrap();
}
