//! Software CRC32C (Castagnoli) implementation.
//!
//! Every on-disk record in the commit log, SSTables and the manifest is framed with
//! a CRC32C over its payload so that torn writes and bit rot are detected during
//! recovery rather than silently served to readers. The implementation is a
//! straightforward table-driven byte-at-a-time CRC; it is not the fastest possible
//! variant but it is portable, dependency-free and far from being a bottleneck
//! relative to the I/O it protects.

/// The CRC32C (Castagnoli) polynomial, reversed representation.
const POLY: u32 = 0x82f6_3b78;

/// Lazily built 256-entry lookup table.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            }
            *slot = crc;
        }
        table
    })
}

/// Computes the CRC32C of `data`.
pub fn crc32c(data: &[u8]) -> u32 {
    extend(0, data)
}

/// Extends a previously computed CRC with more data.
pub fn extend(crc: u32, data: &[u8]) -> u32 {
    let table = table();
    let mut crc = !crc;
    for &byte in data {
        crc = table[((crc ^ u32::from(byte)) & 0xff) as usize] ^ (crc >> 8);
    }
    !crc
}

/// A value that masks the CRC the way LevelDB/RocksDB do before storing it.
///
/// Storing a CRC of data that itself embeds CRCs can produce pathological
/// collisions; rotating and adding a constant avoids that.
pub fn mask(crc: u32) -> u32 {
    crc.rotate_right(15).wrapping_add(0xa282_ead8)
}

/// Inverse of [`mask`].
pub fn unmask(masked: u32) -> u32 {
    masked.wrapping_sub(0xa282_ead8).rotate_left(15)
}

/// Incremental CRC32C hasher with a `std::hash`-like API.
#[derive(Debug, Default, Clone, Copy)]
pub struct Crc32c {
    state: u32,
}

impl Crc32c {
    /// Creates a hasher with an empty state.
    pub fn new() -> Self {
        Crc32c { state: 0 }
    }

    /// Feeds `data` into the hasher.
    pub fn update(&mut self, data: &[u8]) {
        self.state = extend(self.state, data);
    }

    /// Returns the CRC of everything fed so far.
    pub fn finish(&self) -> u32 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC32C test vectors.
        assert_eq!(crc32c(b""), 0x0000_0000);
        assert_eq!(crc32c(b"a"), 0xc1d0_4330);
        assert_eq!(crc32c(b"abc"), 0x364b_3fb7);
        assert_eq!(crc32c(b"123456789"), 0xe306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8a91_36aa);
        assert_eq!(crc32c(&[0xffu8; 32]), 0x62a8_ab43);
    }

    #[test]
    fn extend_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        for split in 0..data.len() {
            let (a, b) = data.split_at(split);
            let crc = extend(crc32c(a), b);
            assert_eq!(crc, crc32c(data), "split at {split}");
        }
    }

    #[test]
    fn incremental_hasher_matches_one_shot() {
        let mut hasher = Crc32c::new();
        hasher.update(b"hello ");
        hasher.update(b"world");
        assert_eq!(hasher.finish(), crc32c(b"hello world"));
    }

    #[test]
    fn mask_round_trip() {
        for value in [0u32, 1, 0xdead_beef, u32::MAX, crc32c(b"payload")] {
            assert_eq!(unmask(mask(value)), value);
            assert_ne!(mask(value), value, "masking must change the value");
        }
    }

    #[test]
    fn different_inputs_have_different_crcs() {
        // Not a cryptographic property, but a sanity check on table construction.
        assert_ne!(crc32c(b"table-a"), crc32c(b"table-b"));
        assert_ne!(crc32c(b"\x00"), crc32c(b"\x01"));
    }
}
