//! Durability and recovery: every acknowledged write must survive a reopen.

mod common;

use common::{key_for, temp_dir, value_for};
use triad_common::failpoint::{FailpointAction, FailpointRegistry};
use triad_core::{Db, Options, SyncMode, TriadConfig};

fn reopen(dir: &std::path::Path, options: &Options) -> Db {
    Db::open(dir, options.clone()).unwrap()
}

/// Recovery tests corrupt, truncate and inspect commit logs and manifests at
/// the database root, so they always run single-shard regardless of the
/// `TRIAD_SHARDS` override.
fn small_single_shard() -> Options {
    let mut options = Options::small_for_tests();
    common::single_shard(&mut options);
    options
}

#[test]
fn unflushed_writes_are_recovered_from_the_commit_log() {
    let dir = temp_dir("wal-recovery");
    let options = small_single_shard();
    {
        let db = Db::open(&dir, options.clone()).unwrap();
        for i in 0..50u64 {
            db.put(key_for(i), value_for(i, 1)).unwrap();
        }
        // No flush: everything lives in the memtable + commit log.
        assert_eq!(db.stats().flush_count, 0);
        db.close().unwrap();
    }
    let db = reopen(&dir, &options);
    for i in 0..50u64 {
        assert_eq!(
            db.get(key_for(i)).unwrap(),
            Some(value_for(i, 1)),
            "key {i} lost across restart"
        );
    }
    db.close().unwrap();
}

#[test]
fn flushed_and_compacted_state_is_recovered_from_the_manifest() {
    let dir = temp_dir("manifest-recovery");
    let mut options = small_single_shard();
    options.l0_compaction_trigger = 2;
    {
        let db = Db::open(&dir, options.clone()).unwrap();
        // Flush each version round explicitly: a sealed memtable whose entries are
        // all shadowed by newer writes flushes to nothing, so without these forced
        // flushes the number of L0 files — and whether any compaction triggers —
        // would depend on background-worker scheduling.
        for version in 1..=3u64 {
            for i in 0..500u64 {
                db.put(key_for(i), value_for(i, version)).unwrap();
            }
            db.flush().unwrap();
        }
        for i in (0..500u64).step_by(5) {
            db.delete(key_for(i)).unwrap();
        }
        db.flush().unwrap();
        db.wait_for_compactions().unwrap();
        assert!(db.stats().compaction_count >= 1);
        db.close().unwrap();
    }
    let db = reopen(&dir, &options);
    for i in 0..500u64 {
        let got = db.get(key_for(i)).unwrap();
        if i % 5 == 0 {
            assert_eq!(got, None, "deleted key {i} reappeared after restart");
        } else {
            assert_eq!(got, Some(value_for(i, 3)), "key {i} lost its latest version");
        }
    }
    db.close().unwrap();
}

#[test]
fn mixed_flushed_and_unflushed_state_is_recovered() {
    let dir = temp_dir("mixed-recovery");
    let options = small_single_shard();
    {
        let db = Db::open(&dir, options.clone()).unwrap();
        for i in 0..300u64 {
            db.put(key_for(i), value_for(i, 1)).unwrap();
        }
        db.flush().unwrap();
        // Updates after the flush stay in the memtable/commit log only.
        for i in 0..100u64 {
            db.put(key_for(i), value_for(i, 2)).unwrap();
        }
        db.delete(key_for(299)).unwrap();
        db.close().unwrap();
    }
    let db = reopen(&dir, &options);
    for i in 0..100u64 {
        assert_eq!(db.get(key_for(i)).unwrap(), Some(value_for(i, 2)));
    }
    for i in 100..299u64 {
        assert_eq!(db.get(key_for(i)).unwrap(), Some(value_for(i, 1)));
    }
    assert_eq!(db.get(key_for(299)).unwrap(), None);
    db.close().unwrap();
}

#[test]
fn triad_log_cl_sstables_survive_restart() {
    let dir = temp_dir("cl-recovery");
    let mut options = small_single_shard();
    options.triad = TriadConfig::log_only();
    // Keep compaction away so CL-SSTables stay on L0 across the restart.
    options.l0_compaction_trigger = 1_000;
    options.triad.max_l0_files = 1_000;
    {
        let db = Db::open(&dir, options.clone()).unwrap();
        for i in 0..2_000u64 {
            db.put(key_for(i), value_for(i, 1)).unwrap();
        }
        db.flush().unwrap();
        db.close().unwrap();
    }
    // The directory must contain CL index files and their backing logs.
    let names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    assert!(names.iter().any(|n| n.ends_with(".clidx")), "expected CL index files, got {names:?}");
    assert!(
        names.iter().any(|n| n.ends_with(".log")),
        "expected backing commit logs, got {names:?}"
    );

    let db = reopen(&dir, &options);
    for i in (0..2_000u64).step_by(41) {
        assert_eq!(
            db.get(key_for(i)).unwrap(),
            Some(value_for(i, 1)),
            "key {i} lost after CL restart"
        );
    }
    db.close().unwrap();
}

#[test]
fn full_triad_configuration_recovers_a_skewed_workload() {
    let dir = temp_dir("triad-recovery");
    let mut options = small_single_shard();
    options.triad = TriadConfig::all_enabled();
    options.l0_compaction_trigger = 2;
    let mut expected = std::collections::BTreeMap::new();
    {
        let db = Db::open(&dir, options.clone()).unwrap();
        for version in 0..6_000u64 {
            let key_index = if version % 10 < 9 { version % 20 } else { 20 + version % 400 };
            let key = key_for(key_index);
            let value = value_for(key_index, version);
            db.put(&key, &value).unwrap();
            expected.insert(key, value);
        }
        db.close().unwrap();
    }
    let db = reopen(&dir, &options);
    for (key, value) in &expected {
        assert_eq!(db.get(key).unwrap().as_ref(), Some(value));
    }
    let scanned: Vec<(Vec<u8>, Vec<u8>)> = db.scan().unwrap().map(|r| r.unwrap()).collect();
    assert_eq!(scanned.len(), expected.len());
    db.close().unwrap();
}

#[test]
fn repeated_restarts_preserve_state() {
    let dir = temp_dir("repeated-restarts");
    let mut options = small_single_shard();
    options.triad = TriadConfig::all_enabled();
    options.l0_compaction_trigger = 2;
    let mut expected = std::collections::BTreeMap::new();
    for round in 0..5u64 {
        let db = Db::open(&dir, options.clone()).unwrap();
        // Everything written in previous rounds must still be there.
        for (key, value) in &expected {
            assert_eq!(db.get(key).unwrap().as_ref(), Some(value), "round {round}");
        }
        for i in 0..300u64 {
            let key_index = round * 1_000 + i;
            let key = key_for(key_index);
            let value = value_for(key_index, round);
            db.put(&key, &value).unwrap();
            expected.insert(key, value);
        }
        // Overwrite some old keys too.
        for i in 0..50u64 {
            let key = key_for(i);
            let value = value_for(i, 100 + round);
            db.put(&key, &value).unwrap();
            expected.insert(key, value);
        }
        db.close().unwrap();
    }
    let db = Db::open(&dir, options).unwrap();
    for (key, value) in &expected {
        assert_eq!(db.get(key).unwrap().as_ref(), Some(value));
    }
    db.close().unwrap();
}

#[test]
fn injected_flush_failures_do_not_lose_acknowledged_writes() {
    let dir = temp_dir("flush-failpoint");
    let options = small_single_shard();
    let failpoints = FailpointRegistry::new();
    // Every flush attempt fails while the failpoint is armed; data must stay safe in
    // the memtable + commit log.
    failpoints.arm("flush.start", FailpointAction::ReturnError);
    {
        let db = Db::open_with_failpoints(&dir, options.clone(), failpoints.clone()).unwrap();
        for i in 0..2_000u64 {
            db.put(key_for(i), value_for(i, 1)).unwrap();
        }
        // Reads still served correctly from memory even though flushing is broken.
        for i in (0..2_000u64).step_by(191) {
            assert_eq!(db.get(key_for(i)).unwrap(), Some(value_for(i, 1)));
        }
        assert!(failpoints.hits("flush.start") > 0, "the failpoint should have been exercised");
        assert_eq!(db.stats().flush_count, 0);
        db.close().unwrap();
    }
    // After a restart without the failpoint, everything is recovered from the logs.
    let db = Db::open(&dir, options).unwrap();
    for i in 0..2_000u64 {
        assert_eq!(
            db.get(key_for(i)).unwrap(),
            Some(value_for(i, 1)),
            "key {i} lost after failed flushes"
        );
    }
    db.close().unwrap();
}

#[test]
fn injected_compaction_failures_do_not_corrupt_data() {
    let dir = temp_dir("compaction-failpoint");
    let mut options = small_single_shard();
    options.l0_compaction_trigger = 2;
    let failpoints = FailpointRegistry::new();
    failpoints.arm("compaction.start", FailpointAction::ErrorTimes(3));
    {
        let db = Db::open_with_failpoints(&dir, options.clone(), failpoints.clone()).unwrap();
        for version in 1..=3u64 {
            for i in 0..500u64 {
                db.put(key_for(i), value_for(i, version)).unwrap();
            }
        }
        db.flush().unwrap();
        db.wait_for_compactions().unwrap();
        for i in (0..500u64).step_by(17) {
            assert_eq!(db.get(key_for(i)).unwrap(), Some(value_for(i, 3)));
        }
        db.close().unwrap();
    }
    let db = Db::open(&dir, options).unwrap();
    for i in 0..500u64 {
        assert_eq!(db.get(key_for(i)).unwrap(), Some(value_for(i, 3)));
    }
    db.close().unwrap();
}

/// Injects a failure in the exact crash window of the group-commit pipeline —
/// after the group's WAL append (and fsync) but before any memtable insert — and
/// asserts the two invariants the pipeline promises: no acknowledged write is
/// ever lost, and no sequence number is ever issued twice (the failed group's
/// range is consumed, so later acknowledged writes cannot collide with the
/// orphaned records a recovery replay may resurrect).
#[test]
fn crash_between_group_wal_append_and_memtable_insert_loses_nothing_acknowledged() {
    let dir = temp_dir("group-commit-crash-window");
    let mut options = small_single_shard();
    // Acknowledged ⇒ fsynced, so the durability claim below is unconditional.
    options.sync_mode = SyncMode::SyncEveryWrite;
    let failpoints = FailpointRegistry::new();
    let failed_key = key_for(5);
    let acked_after_failure;
    {
        let db = Db::open_with_failpoints(&dir, options.clone(), failpoints.clone()).unwrap();
        for i in 0..5u64 {
            db.put(key_for(i), value_for(i, 1)).unwrap();
        }
        let seqno_before_failure = db.last_seqno();
        assert_eq!(seqno_before_failure, 5);

        // The next write dies between its WAL append and its memtable insert.
        failpoints.arm("commit.after_group_wal_append", FailpointAction::ErrorTimes(1));
        let err = db.put(&failed_key, b"never-acknowledged").unwrap_err();
        assert!(
            matches!(err, triad_core::Error::Injected(_)),
            "the injected failure must surface to the (un-acknowledged) writer: {err}"
        );
        assert_eq!(failpoints.hits("commit.after_group_wal_append"), 1);
        // Nothing was published: the failed write is invisible...
        assert_eq!(db.last_seqno(), seqno_before_failure);
        assert_eq!(db.get(&failed_key).unwrap(), None, "a failed write must not be readable");

        // ...and the engine keeps working. Crucially, the failed group consumed
        // its seqno range (its records sit in the durable WAL), so these later
        // acknowledged writes must commit *past* it — no phantom reuse that a
        // replay could resolve in favour of the dead group.
        let mut batch = triad_core::WriteBatch::new();
        for i in 10..20u64 {
            batch.put(key_for(i), value_for(i, 2));
        }
        let end = db.write_committed(batch, triad_core::WriteOptions::default()).unwrap();
        assert!(
            end > seqno_before_failure + 1,
            "acknowledged writes after the failure must skip the failed group's range \
             (got end seqno {end})"
        );
        acked_after_failure = end;
        db.close().unwrap();
    }

    let db = Db::open(&dir, options).unwrap();
    // Every acknowledged write survived.
    for i in 0..5u64 {
        assert_eq!(db.get(key_for(i)).unwrap(), Some(value_for(i, 1)), "acked key {i} lost");
    }
    for i in 10..20u64 {
        assert_eq!(db.get(key_for(i)).unwrap(), Some(value_for(i, 2)), "acked key {i} lost");
    }
    // The failed write was appended and fsynced before the injected crash, so
    // recovery replays it: the standard WAL contract that an *unacknowledged*
    // write may still commit. What it must never do is displace an acked one.
    assert_eq!(
        db.get(&failed_key).unwrap().as_deref(),
        Some(&b"never-acknowledged"[..]),
        "the durable-but-unacknowledged record is replayed from the WAL"
    );
    // No phantom seqnos: recovery's horizon covers everything in the logs, and
    // fresh writes allocate strictly above it.
    let recovered = db.last_seqno();
    assert!(recovered >= acked_after_failure);
    let next = db
        .write_committed(
            {
                let mut batch = triad_core::WriteBatch::new();
                batch.put(b"post-recovery".to_vec(), b"ok".to_vec());
                batch
            },
            triad_core::WriteOptions::default(),
        )
        .unwrap();
    assert_eq!(next, recovered + 1, "post-recovery seqnos continue densely");
    db.close().unwrap();
}

/// Injects a failure in the *new* crash window the pipelined commit opens —
/// after the group's WAL append (bytes in the OS, not yet fsynced) but before
/// the sync stage runs — and asserts the pipeline's promises: a sync-required
/// write is never acknowledged before the durability watermark passes it (so
/// nothing acked can be lost), the failed group's seqno range is consumed
/// exactly once (no collision after reopen), and later writes commit densely.
#[test]
fn crash_between_pipelined_append_and_fsync_loses_nothing_acknowledged() {
    let dir = temp_dir("pipelined-crash-window");
    let mut options = small_single_shard();
    options.sync_mode = SyncMode::SyncEveryWrite;
    assert!(options.group_commit.pipelined, "this probes the pipelined window");
    let failpoints = FailpointRegistry::new();
    let failed_key = key_for(5);
    let acked_after_failure;
    {
        let db = Db::open_with_failpoints(&dir, options.clone(), failpoints.clone()).unwrap();
        for i in 0..5u64 {
            db.put(key_for(i), value_for(i, 1)).unwrap();
        }
        let seqno_before_failure = db.last_seqno();
        assert_eq!(seqno_before_failure, 5);

        // The next write dies after its append but before its fsync: the exact
        // window the pipeline opened by taking the fsync off the append lock.
        failpoints.arm("commit.before_group_wal_sync", FailpointAction::ErrorTimes(1));
        let err = db.put(&failed_key, b"never-acknowledged").unwrap_err();
        assert!(
            matches!(err, triad_core::Error::Injected(_)),
            "the injected failure must surface to the unacknowledged writer: {err}"
        );
        assert_eq!(failpoints.hits("commit.before_group_wal_sync"), 1);
        // Nothing acked, nothing published, nothing readable: the failed write
        // never reached the memtable and never got its fsync.
        assert_eq!(db.last_seqno(), seqno_before_failure);
        assert_eq!(db.get(&failed_key).unwrap(), None, "a failed write must not be readable");

        // The failed group consumed its seqno range (its frames sit in the OS
        // and may become durable incidentally), so later acknowledged writes
        // must commit strictly past it.
        let mut batch = triad_core::WriteBatch::new();
        for i in 10..20u64 {
            batch.put(key_for(i), value_for(i, 2));
        }
        let end = db.write_committed(batch, triad_core::WriteOptions::default()).unwrap();
        assert!(
            end > seqno_before_failure + 1,
            "acknowledged writes after the failure must skip the failed group's range \
             (got end seqno {end})"
        );
        acked_after_failure = end;
        db.close().unwrap();
    }

    let db = Db::open(&dir, options).unwrap();
    // Every sync-acked write survived.
    for i in 0..5u64 {
        assert_eq!(db.get(key_for(i)).unwrap(), Some(value_for(i, 1)), "acked key {i} lost");
    }
    for i in 10..20u64 {
        assert_eq!(db.get(key_for(i)).unwrap(), Some(value_for(i, 2)), "acked key {i} lost");
    }
    // The failed record was flushed to the OS before the injected crash and the
    // close-time sync made the log durable, so recovery replays it: the standard
    // contract that an *unacknowledged* write may still commit. What it must
    // never do is displace an acked write or re-use a seqno.
    assert_eq!(
        db.get(&failed_key).unwrap().as_deref(),
        Some(&b"never-acknowledged"[..]),
        "the durable-but-unacknowledged record is replayed from the WAL"
    );
    // Seqnos stay dense and collision-free across the reopen.
    let recovered = db.last_seqno();
    assert!(recovered >= acked_after_failure);
    let next = db
        .write_committed(
            {
                let mut batch = triad_core::WriteBatch::new();
                batch.put(b"post-recovery".to_vec(), b"ok".to_vec());
                batch
            },
            triad_core::WriteOptions::default(),
        )
        .unwrap();
    assert_eq!(next, recovered + 1, "post-recovery seqnos continue densely");
    db.close().unwrap();
}

#[test]
fn recovery_tolerates_a_torn_commit_log_tail() {
    let dir = temp_dir("torn-log");
    let options = small_single_shard();
    {
        let db = Db::open(&dir, options.clone()).unwrap();
        for i in 0..100u64 {
            db.put(key_for(i), value_for(i, 1)).unwrap();
        }
        db.close().unwrap();
    }
    // Simulate a crash mid-append by chopping bytes off the newest commit log.
    let mut logs: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().map(|e| e == "log").unwrap_or(false))
        .collect();
    logs.sort();
    let newest = logs.last().expect("at least one commit log");
    let len = std::fs::metadata(newest).unwrap().len();
    assert!(len > 10);
    std::fs::OpenOptions::new().write(true).open(newest).unwrap().set_len(len - 7).unwrap();

    let db = Db::open(&dir, options).unwrap();
    // All but possibly the very last record must be intact.
    for i in 0..99u64 {
        assert_eq!(
            db.get(key_for(i)).unwrap(),
            Some(value_for(i, 1)),
            "key {i} lost after torn tail"
        );
    }
    db.close().unwrap();
}

#[test]
fn reopening_an_empty_directory_is_fine() {
    let dir = temp_dir("empty-reopen");
    let options = small_single_shard();
    for _ in 0..3 {
        let db = Db::open(&dir, options.clone()).unwrap();
        assert_eq!(db.get(b"anything").unwrap(), None);
        db.close().unwrap();
    }
}

#[test]
fn reopen_after_failed_compactions_sweeps_to_the_exact_live_set() {
    let dir = temp_dir("gc-failpoint-sweep");
    let mut options = small_single_shard();
    options.l0_compaction_trigger = 2;
    {
        // The first two compaction attempts die after writing their outputs but
        // before the manifest commit, orphaning table files on disk; the version
        // chain never references them.
        let failpoints = FailpointRegistry::new();
        failpoints.arm("compaction.before_manifest", FailpointAction::ErrorTimes(2));
        let db = Db::open_with_failpoints(&dir, options.clone(), failpoints.clone()).unwrap();
        for version in 1..=3u64 {
            for i in 0..400u64 {
                db.put(key_for(i), value_for(i, version)).unwrap();
            }
            db.flush().unwrap();
        }
        db.wait_for_compactions().unwrap();
        assert!(failpoints.hits("compaction.before_manifest") >= 2);
        for i in (0..400u64).step_by(23) {
            assert_eq!(db.get(key_for(i)).unwrap(), Some(value_for(i, 3)));
        }
        db.close().unwrap();
    }
    // The startup sweep deletes the orphans of the failed attempts (and any file
    // whose deferred deletion the shutdown cut short).
    let db = reopen(&dir, &options);
    common::assert_disk_matches_live_set(&db, &dir);
    for i in 0..400u64 {
        assert_eq!(db.get(key_for(i)).unwrap(), Some(value_for(i, 3)), "key {i} after sweep");
    }
    db.close().unwrap();
}

#[test]
fn stale_commit_logs_resurrected_by_a_crash_are_not_replayed() {
    let dir = temp_dir("stale-log-crash");
    let mut options = small_single_shard();
    options.triad = TriadConfig::log_only();
    options.l0_compaction_trigger = 2;
    let stale_logs: Vec<(std::path::PathBuf, Vec<u8>)>;
    {
        let db = Db::open(&dir, options.clone()).unwrap();
        for i in 0..300u64 {
            db.put(key_for(i), value_for(i, 1)).unwrap();
        }
        db.flush().unwrap();
        // Snapshot every commit log of the round-1 state (CL backing logs and the
        // then-active WAL) so the test can later "un-delete" them.
        stale_logs = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().map(|e| e == "log").unwrap_or(false))
            .map(|p| {
                let bytes = std::fs::read(&p).unwrap();
                (p, bytes)
            })
            .collect();
        for i in 0..300u64 {
            db.put(key_for(i), value_for(i, 2)).unwrap();
        }
        db.flush().unwrap();
        db.wait_for_compactions().unwrap();
        common::assert_disk_matches_live_set(&db, &dir);
        db.close().unwrap();
    }
    // Simulate a crash that happened before the deferred deletions hit the disk:
    // put the retired logs back. Their ids sit below the manifest's recovery
    // horizon, so replaying them would resurrect round-1 values over round-2 ones.
    let mut restored = 0;
    for (path, bytes) in &stale_logs {
        if !path.exists() {
            std::fs::write(path, bytes).unwrap();
            restored += 1;
        }
    }
    assert!(restored > 0, "compaction should have retired at least one round-1 log");

    let db = reopen(&dir, &options);
    for i in 0..300u64 {
        assert_eq!(
            db.get(key_for(i)).unwrap(),
            Some(value_for(i, 2)),
            "key {i} resurrected a stale value from a retired commit log"
        );
    }
    // The sweep also removed the stale logs again.
    common::assert_disk_matches_live_set(&db, &dir);
    db.close().unwrap();
}

#[test]
fn flushes_that_write_no_file_still_advance_the_recovery_horizon() {
    let dir = temp_dir("no-file-flush-horizon");
    let mut options = small_single_shard();
    options.triad = TriadConfig::mem_only();
    // Every entry counts as hot, so a flush writes *no* table: the whole sealed
    // memtable is carried back into memory and the sealed log must be retired
    // purely through a manifest edit advancing `log_number` — the path that used
    // to unlink the log without recording anything.
    options.triad.hot_key_policy = triad_core::HotColdPolicy::TopFraction(1.0);
    {
        let db = Db::open(&dir, options.clone()).unwrap();
        for i in 0..50u64 {
            db.put(key_for(i), value_for(i, 1)).unwrap();
        }
        db.flush().unwrap();
        let stats = db.stats();
        assert_eq!(stats.flush_count, 1);
        assert_eq!(stats.hot_entries_retained, 50, "every entry stays in memory");
        assert_eq!(db.files_per_level()[0], 0, "an all-hot flush writes no L0 file");
        // The sealed log is collected even though no table took ownership of it.
        common::assert_disk_matches_live_set(&db, &dir);
        db.close().unwrap();
    }
    let db = reopen(&dir, &options);
    for i in 0..50u64 {
        assert_eq!(
            db.get(key_for(i)).unwrap(),
            Some(value_for(i, 1)),
            "key {i} lost after an all-hot flush"
        );
    }
    db.close().unwrap();
}

#[test]
fn injected_append_failures_reject_writes_without_losing_state() {
    let dir = temp_dir("append-failpoint");
    let options = small_single_shard();
    let failpoints = FailpointRegistry::new();
    let db = Db::open_with_failpoints(&dir, options.clone(), failpoints.clone()).unwrap();
    db.put(key_for(0), value_for(0, 1)).unwrap();

    // Every write is rejected before it reaches the WAL while the failpoint is
    // armed; already-acknowledged data stays readable.
    failpoints.arm("write.before_wal_append", FailpointAction::ReturnError);
    assert!(db.put(key_for(1), value_for(1, 1)).is_err());
    assert!(failpoints.hits("write.before_wal_append") > 0);
    assert_eq!(db.get(key_for(0)).unwrap(), Some(value_for(0, 1)));

    // Disarming restores the write path with no residue.
    failpoints.disarm("write.before_wal_append");
    db.put(key_for(1), value_for(1, 2)).unwrap();
    assert_eq!(db.get(key_for(1)).unwrap(), Some(value_for(1, 2)));
    db.close().unwrap();

    let db = Db::open(&dir, options).unwrap();
    assert_eq!(db.get(key_for(0)).unwrap(), Some(value_for(0, 1)));
    assert_eq!(db.get(key_for(1)).unwrap(), Some(value_for(1, 2)));
    db.close().unwrap();
}

#[test]
fn injected_rotation_seal_failures_surface_once_and_recover() {
    let dir = temp_dir("rotate-seal-failpoint");
    let options = small_single_shard();
    let failpoints = FailpointRegistry::new();
    failpoints.arm("rotate.seal", FailpointAction::ErrorTimes(1));
    let mut acked: Vec<u64> = Vec::new();
    {
        let db = Db::open_with_failpoints(&dir, options.clone(), failpoints.clone()).unwrap();
        // Enough volume to trip the 128 KiB log-size rotation trigger several
        // times. The one injected seal failure surfaces as a single write error
        // (rotation runs on the write path after publication); later writes
        // retry the rotation and succeed.
        let mut failures = 0u64;
        for i in 0..4_000u64 {
            match db.put(key_for(i), value_for(i, 1)) {
                Ok(()) => acked.push(i),
                Err(_) => failures += 1,
            }
        }
        assert!(failpoints.hits("rotate.seal") > 1, "rotation should have been retried");
        assert!(failures <= 1, "only the injected failure may surface, saw {failures}");
        for &i in acked.iter().step_by(101) {
            assert_eq!(db.get(key_for(i)).unwrap(), Some(value_for(i, 1)));
        }
        db.close().unwrap();
    }
    let db = Db::open(&dir, options).unwrap();
    for &i in &acked {
        assert_eq!(
            db.get(key_for(i)).unwrap(),
            Some(value_for(i, 1)),
            "key {i} lost after an injected rotation failure"
        );
    }
    db.close().unwrap();
}

#[test]
fn injected_small_flush_skip_failures_keep_hot_data() {
    let dir = temp_dir("small-flush-skip-failpoint");
    let mut options = small_single_shard();
    options.memtable_size = 1024 * 1024;
    options.max_log_size = 32 * 1024;
    options.triad = TriadConfig::mem_only();
    options.triad.flush_skip_threshold_bytes = 512 * 1024;
    let failpoints = FailpointRegistry::new();
    failpoints.arm("rotate.small_flush_skip", FailpointAction::ErrorTimes(1));
    {
        let db = Db::open_with_failpoints(&dir, options.clone(), failpoints.clone()).unwrap();
        // A small hot working set fills the log long before the memtable: every
        // rotation takes the TRIAD-MEM skip path. The injected failure surfaces
        // as at most one write error; the skip is retried on the next trigger.
        let mut failures = 0u64;
        for version in 0..2_000u64 {
            let i = version % 10;
            if db.put(key_for(i), value_for(i, version)).is_err() {
                failures += 1;
            }
        }
        assert!(failpoints.hits("rotate.small_flush_skip") > 1, "skip path should be retried");
        assert!(failures <= 1, "only the injected failure may surface, saw {failures}");
        assert!(db.stats().small_flush_skips > 0, "workload should exercise the skip path");
        assert_eq!(db.stats().flush_count, 0, "no table should be written for a hot working set");
        for i in 0..10u64 {
            assert!(db.get(key_for(i)).unwrap().is_some(), "key {i} lost");
        }
        db.close().unwrap();
    }
    let db = Db::open(&dir, options).unwrap();
    for i in 0..10u64 {
        assert!(db.get(key_for(i)).unwrap().is_some(), "key {i} lost after reopen");
    }
    db.close().unwrap();
}

/// Writes 500 distinct keys and hammers the first five so the TRIAD-MEM
/// `TopFraction(0.01)` policy classifies them as hot at the next flush.
fn write_skewed_keyspace(db: &Db) {
    for i in 0..500u64 {
        db.put(key_for(i), value_for(i, 1)).unwrap();
    }
    for round in 2..40u64 {
        for i in 0..5u64 {
            db.put(key_for(i), value_for(i, round)).unwrap();
        }
    }
}

#[test]
fn injected_hot_write_back_failures_are_retried() {
    let dir = temp_dir("hot-write-back-failpoint");
    let mut options = small_single_shard();
    options.triad = TriadConfig::mem_only();
    options.triad.flush_skip_threshold_bytes = 0; // force real flushes
    let failpoints = FailpointRegistry::new();
    failpoints.arm("flush.hot_write_back", FailpointAction::ErrorTimes(1));
    {
        let db = Db::open_with_failpoints(&dir, options.clone(), failpoints.clone()).unwrap();
        write_skewed_keyspace(&db);
        // The first flush attempt dies at the hot write-back; the background
        // worker retries and the flush completes.
        db.flush().unwrap();
        assert!(failpoints.hits("flush.hot_write_back") > 0);
        assert!(db.stats().hot_entries_retained > 0, "hot entries should be written back");
        for i in 0..5u64 {
            assert_eq!(db.get(key_for(i)).unwrap(), Some(value_for(i, 39)));
        }
        for i in (5..500u64).step_by(29) {
            assert_eq!(db.get(key_for(i)).unwrap(), Some(value_for(i, 1)));
        }
        db.close().unwrap();
    }
    let db = Db::open(&dir, options).unwrap();
    for i in 0..5u64 {
        assert_eq!(db.get(key_for(i)).unwrap(), Some(value_for(i, 39)));
    }
    db.close().unwrap();
}

#[test]
fn injected_table_write_failures_are_retried() {
    let dir = temp_dir("table-write-failpoint");
    let options = small_single_shard();
    let failpoints = FailpointRegistry::new();
    failpoints.arm("flush.before_table_write", FailpointAction::ErrorTimes(1));
    {
        let db = Db::open_with_failpoints(&dir, options.clone(), failpoints.clone()).unwrap();
        for i in 0..500u64 {
            db.put(key_for(i), value_for(i, 1)).unwrap();
        }
        db.flush().unwrap();
        assert!(failpoints.hits("flush.before_table_write") > 0);
        assert!(db.stats().flush_count > 0, "the retried flush should have completed");
        for i in (0..500u64).step_by(43) {
            assert_eq!(db.get(key_for(i)).unwrap(), Some(value_for(i, 1)));
        }
        db.close().unwrap();
    }
    let db = Db::open(&dir, options).unwrap();
    for i in 0..500u64 {
        assert_eq!(db.get(key_for(i)).unwrap(), Some(value_for(i, 1)));
    }
    db.close().unwrap();
}

#[test]
fn injected_manifest_failures_are_retried() {
    let dir = temp_dir("manifest-failpoint");
    let options = small_single_shard();
    let failpoints = FailpointRegistry::new();
    failpoints.arm("flush.before_manifest", FailpointAction::ErrorTimes(1));
    {
        let db = Db::open_with_failpoints(&dir, options.clone(), failpoints.clone()).unwrap();
        for i in 0..500u64 {
            db.put(key_for(i), value_for(i, 2)).unwrap();
        }
        db.flush().unwrap();
        assert!(failpoints.hits("flush.before_manifest") > 0);
        assert!(db.stats().flush_count > 0, "the retried flush should have completed");
        for i in (0..500u64).step_by(43) {
            assert_eq!(db.get(key_for(i)).unwrap(), Some(value_for(i, 2)));
        }
        db.close().unwrap();
    }
    let db = Db::open(&dir, options).unwrap();
    for i in 0..500u64 {
        assert_eq!(db.get(key_for(i)).unwrap(), Some(value_for(i, 2)));
    }
    db.close().unwrap();
}

/// A crash between the per-shard commits of a cross-shard batch must not
/// surface the slices that did commit: recovery counts the batch torn
/// (`recovery_torn_batches`) and drops every durable slice, while batches
/// before and after the tear survive intact.
#[test]
fn torn_cross_shard_batches_are_dropped_on_recovery() {
    use triad_core::{ShardConfig, WriteBatch, WriteOptions};

    let dir = temp_dir("torn-batch");
    let mut options = Options::small_for_tests();
    options.shards = ShardConfig::with_count(4);
    let failpoints = FailpointRegistry::new();
    {
        let db = Db::open_with_failpoints(&dir, options.clone(), failpoints.clone()).unwrap();
        // A baseline cross-shard batch that must survive the crash.
        let mut batch = WriteBatch::new();
        for i in 0..16u64 {
            batch.put(key_for(i), value_for(i, 0));
        }
        db.write(batch, WriteOptions { sync: true }).unwrap();

        // The torn batch: the failpoint lets exactly one shard's slice commit
        // durably, then kills the fan-out before the remaining shards see it.
        failpoints.arm("db.after_shard_commit", FailpointAction::ErrorTimes(1));
        let mut torn = WriteBatch::new();
        for i in 100..116u64 {
            torn.put(key_for(i), value_for(i, 7));
        }
        let err = db.write(torn, WriteOptions { sync: true }).unwrap_err();
        assert!(matches!(err, triad_core::Error::Injected(_)), "got {err:?}");
        assert_eq!(failpoints.hits("db.after_shard_commit"), 1);

        // Writes after the tear keep flowing and must also survive.
        db.put(key_for(50), value_for(50, 1)).unwrap();
        // No flush: the torn slice exists only in one shard's commit log, the
        // crash window the stamp-counting recovery is built for.
        db.close().unwrap();
    }
    let db = Db::open(&dir, options).unwrap();
    assert!(db.stats().recovery_torn_batches >= 1, "recovery must count the torn batch");
    for i in 100..116u64 {
        assert_eq!(db.get(key_for(i)).unwrap(), None, "torn slice key {i} resurfaced");
    }
    for i in 0..16u64 {
        assert_eq!(db.get(key_for(i)).unwrap(), Some(value_for(i, 0)), "baseline key {i} lost");
    }
    assert_eq!(db.get(key_for(50)).unwrap(), Some(value_for(50, 1)));
    db.close().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// The inverse guarantee: a cross-shard batch that *was* fully acknowledged
/// must survive a reopen even after one shard's slice graduated into an
/// SSTable — the crash window where the slice's stamped WAL records have
/// left the stray-log set and detection would otherwise misjudge the batch
/// as torn, dropping the other shard's acknowledged slice. The retention
/// registry keeps the flushed shard's retired log on disk as evidence
/// (`stamps.rs`), and recovery's second detection pass reads it back.
#[test]
fn acknowledged_cross_shard_batch_survives_one_shards_flush() {
    use triad_core::{ShardConfig, WriteBatch, WriteOptions};

    // Mirrors the engine's key -> shard routing (FNV-1a mod count), so the
    // filler below can target shard 0 exclusively.
    fn shard_of(key: &[u8], count: u64) -> usize {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for &byte in key {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (hash % count) as usize
    }

    let dir = temp_dir("acked-batch-flush");
    let mut options = Options::small_for_tests();
    options.shards = ShardConfig::with_count(2);
    let on_shard_0: Vec<u64> = (0..4_000).filter(|i| shard_of(&key_for(*i), 2) == 0).collect();
    let on_shard_1 = (0..4_000).find(|i| shard_of(&key_for(*i), 2) == 1).unwrap();
    {
        let db = Db::open(&dir, options.clone()).unwrap();
        // An acknowledged batch spanning both shards.
        let mut batch = WriteBatch::new();
        batch.put(key_for(on_shard_0[0]), value_for(on_shard_0[0], 9));
        batch.put(key_for(on_shard_1), value_for(on_shard_1, 9));
        db.write(batch, WriteOptions { sync: true }).unwrap();

        // Graduate shard 0's slice: filler routed exclusively to shard 0
        // rotates its memtable and flushes the sealed log holding the stamped
        // slice, while shard 1's slice stays put in its (stray) commit log.
        for &i in &on_shard_0[1..] {
            db.put(key_for(i), value_for(i, 1)).unwrap();
        }
        for _ in 0..500 {
            if db.stats().flush_count >= 1 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert!(db.stats().flush_count >= 1, "filler never triggered shard 0's flush");
        // The retired log now holds the only stamped copy of shard 0's slice;
        // retention must keep it on disk (and account for it) through GC.
        common::assert_disk_matches_live_set(&db, &dir);
        let retained_logs = common::disk_files(&dir)
            .iter()
            .filter(|name| name.starts_with("shard-000/") && name.ends_with(".log"))
            .count();
        assert!(
            retained_logs >= 2,
            "expected shard 0 to keep its retired stamp-evidence log alongside              the active one, found {retained_logs} log(s)"
        );
        db.close().unwrap();
    }
    let db = reopen(&dir, &options);
    assert_eq!(
        db.stats().recovery_torn_batches,
        0,
        "acknowledged cross-shard batch misjudged as torn"
    );
    assert_eq!(db.get(key_for(on_shard_0[0])).unwrap(), Some(value_for(on_shard_0[0], 9)));
    assert_eq!(
        db.get(key_for(on_shard_1)).unwrap(),
        Some(value_for(on_shard_1, 9)),
        "acknowledged slice on the unflushed shard was dropped at recovery"
    );
    db.close().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
