//! End-to-end behaviour of the shared block cache: correctness across flush,
//! compaction and GC, counter plumbing, and byte-identical reads with the
//! cache disabled.

mod common;

use common::{key_for, open_small, value_for};

/// Reads stay correct — and serve the newest version — while tables come and
/// go underneath the cache: flushes create them, compactions replace them and
/// GC purges their blocks. A stale cached block surviving its table would
/// surface here as an old value.
#[test]
fn read_your_writes_survives_flush_compaction_and_gc() {
    let (db, dir) = open_small("block-cache-ryw", |options| {
        common::single_shard(options);
        options.block_cache = 1 << 20;
        options.l0_compaction_trigger = 2;
    });
    for version in 1..=3u64 {
        for i in 0..400u64 {
            db.put(key_for(i), value_for(i, version)).unwrap();
        }
        db.flush().unwrap();
        // Read between rounds so the cache holds blocks of tables that the
        // next round's flush + compaction will retire.
        for i in (0..400u64).step_by(7) {
            assert_eq!(db.get(key_for(i)).unwrap(), Some(value_for(i, version)));
        }
    }
    db.wait_for_compactions().unwrap();
    db.collect_garbage();
    for i in 0..400u64 {
        assert_eq!(db.get(key_for(i)).unwrap(), Some(value_for(i, 3)), "key {i} after GC");
    }
    common::assert_disk_matches_live_set(&db, &dir);
    let stats = db.stats();
    assert!(stats.block_cache_misses > 0, "table reads must have probed the cache");
    assert!(stats.block_cache_hits > 0, "repeated reads must have hit the cache");
    db.close().unwrap();
}

/// A hot key re-read from disk many times must be served almost entirely from
/// the cache: one miss per block, hits for everything after.
#[test]
fn repeated_point_reads_are_cache_hits() {
    let (db, _dir) = open_small("block-cache-hits", |options| {
        common::single_shard(options);
        options.block_cache = 1 << 20;
    });
    for i in 0..200u64 {
        db.put(key_for(i), value_for(i, 1)).unwrap();
    }
    db.flush().unwrap();
    let before = db.stats();
    for _ in 0..50 {
        assert_eq!(db.get(key_for(123)).unwrap(), Some(value_for(123, 1)));
    }
    let delta = db.stats().delta_since(&before);
    assert!(delta.block_cache_hits >= 49, "hits: {}", delta.block_cache_hits);
    assert!(delta.block_cache_misses <= 1, "misses: {}", delta.block_cache_misses);
    assert!(delta.block_cache_hit_rate() > 0.9, "rate: {}", delta.block_cache_hit_rate());
    db.close().unwrap();
}

/// `block_cache: 0` disables the cache entirely; every read must still return
/// byte-identical values to a cache-enabled open of the same directory, and
/// the cache counters must stay at zero.
#[test]
fn disabled_cache_reads_are_byte_identical_to_enabled() {
    let (db, dir) = open_small("block-cache-disabled", |options| {
        common::single_shard(options);
        options.block_cache = 0;
    });
    for i in 0..300u64 {
        db.put(key_for(i), value_for(i, 1)).unwrap();
    }
    db.flush().unwrap();
    let mut disabled_reads = Vec::new();
    for i in 0..300u64 {
        disabled_reads.push(db.get(key_for(i)).unwrap());
    }
    let stats = db.stats();
    assert_eq!(stats.block_cache_hits, 0, "disabled cache must never count a hit");
    assert_eq!(stats.block_cache_misses, 0, "disabled cache must never count a miss");
    db.close().unwrap();

    let mut options = triad_core::Options::small_for_tests();
    common::single_shard(&mut options);
    options.block_cache = 1 << 20;
    let db = triad_core::Db::open(&dir, options).unwrap();
    for (i, expected) in disabled_reads.iter().enumerate() {
        let got = db.get(key_for(i as u64)).unwrap();
        assert_eq!(&got, expected, "key {i}: cached read differs from uncached");
    }
    assert!(db.stats().block_cache_misses > 0, "enabled cache must have been probed");
    db.close().unwrap();
}

/// Scans stream through the cache-aware iterator path; a full scan after
/// flush returns every key in order regardless of cache size (including the
/// oversized-block / tiny-budget edge where nothing fits).
#[test]
fn scans_are_correct_with_tiny_and_disabled_caches() {
    for (name, budget) in [("tiny", 512usize), ("off", 0)] {
        let (db, _dir) = open_small(&format!("block-cache-scan-{name}"), |options| {
            common::single_shard(options);
            options.block_cache = budget;
        });
        for i in 0..250u64 {
            db.put(key_for(i), value_for(i, 1)).unwrap();
        }
        db.flush().unwrap();
        let mut iter = db.scan_range(None, None).unwrap();
        let mut seen = 0u64;
        while let Some(entry) = iter.next().transpose().unwrap() {
            assert_eq!(entry.0, key_for(seen), "scan order with budget {budget}");
            seen += 1;
        }
        assert_eq!(seen, 250, "scan must visit every key with budget {budget}");
        db.close().unwrap();
    }
}
