//! The execution machinery behind the [`proptest!`](crate::proptest) macro:
//! configuration and the deterministic per-case RNG.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Configuration for a `proptest!` block, mirroring the fields of
/// `proptest::test_runner::Config` that the workspace uses.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases to run per test.
    pub cases: u32,
    /// Accepted for API compatibility; this stand-in never shrinks.
    pub max_shrink_iters: u32,
    /// Accepted for API compatibility; strategies here never reject values.
    pub max_local_rejects: u32,
    /// Accepted for API compatibility; strategies here never reject values.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 1024,
            max_local_rejects: 65_536,
            max_global_rejects: 1_024,
        }
    }
}

/// Derives the RNG seed for one test case from the test name and case index.
///
/// FNV-1a over the name keeps distinct tests on distinct streams while staying
/// fully reproducible from run to run.
pub fn case_seed(test_name: &str, case: u32) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash ^ (u64::from(case) << 1 | 1)
}

/// The RNG handed to strategies while generating one test case.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { inner: StdRng::seed_from_u64(seed) }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Returns a uniform draw from `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform draw from `[low, high)`; panics when the range is empty.
    pub fn usize_in(&mut self, low: usize, high: usize) -> usize {
        assert!(low < high, "cannot sample empty range");
        let span = (high - low) as u128;
        low + ((self.next_u64() as u128 * span) >> 64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::{case_seed, TestRng};

    #[test]
    fn seeds_differ_across_names_and_cases() {
        assert_ne!(case_seed("a", 0), case_seed("b", 0));
        assert_ne!(case_seed("a", 0), case_seed("a", 1));
    }

    #[test]
    fn rng_is_deterministic_per_seed() {
        let mut a = TestRng::from_seed(5);
        let mut b = TestRng::from_seed(5);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn usize_in_respects_bounds() {
        let mut rng = TestRng::from_seed(3);
        for _ in 0..1_000 {
            let x = rng.usize_in(2, 7);
            assert!((2..7).contains(&x));
        }
    }
}
