//! The TRIAD experiment harness.
//!
//! This crate regenerates every figure of the paper's evaluation (§5). Each figure
//! has a dedicated binary (`fig2_background_io`, `fig9a_production`, …) built on a
//! shared [`runner`] that opens a database with a given [`triad_core::Options`]
//! configuration, drives it with a [`triad_workload`] workload from several client
//! threads, and reports the metrics the paper uses: throughput (KOPS), write
//! amplification, read amplification, compacted gigabytes and the share of time
//! spent in background work.
//!
//! Absolute numbers differ from the paper (different hardware, scaled-down datasets,
//! a from-scratch engine instead of RocksDB); what the harness is designed to
//! reproduce is the *shape* of every figure — which system wins, by roughly what
//! factor, and how the gap changes with skew, write intensity and thread count.
//! `EXPERIMENTS.md` records the measured outcomes next to the paper's claims.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;
pub mod runner;

pub use report::{format_row, print_table, Table};
pub use runner::{ExperimentConfig, ExperimentResult, Scale};
