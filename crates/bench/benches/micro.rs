//! Criterion micro-benchmarks for the hot paths of the engine's substrates.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use triad_common::types::{InternalKey, ValueKind};
use triad_hll::{hash64, overlap_ratio, HyperLogLog};
use triad_memtable::{LogPosition, Memtable};
use triad_sstable::{BloomFilter, Table, TableBuilder, TableBuilderOptions};
use triad_wal::{LogRecord, LogWriter};

fn bench_hash_and_hll(c: &mut Criterion) {
    let keys: Vec<Vec<u8>> = (0..10_000u64).map(|i| format!("key-{i:08}").into_bytes()).collect();
    c.bench_function("hll/hash64", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % keys.len();
            black_box(hash64(&keys[i]))
        })
    });
    c.bench_function("hll/add", |b| {
        let mut hll = HyperLogLog::new();
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % keys.len();
            hll.add(&keys[i]);
        })
    });
    c.bench_function("hll/estimate_4096_registers", |b| {
        let mut hll = HyperLogLog::new();
        for key in &keys {
            hll.add(key);
        }
        b.iter(|| black_box(hll.estimate()))
    });
    c.bench_function("hll/overlap_ratio_6_files", |b| {
        // Six L0 files, the TRIAD-DISK limit, each with 5k keys and 50% overlap.
        let sketches: Vec<(HyperLogLog, u64)> = (0..6u64)
            .map(|f| {
                let mut hll = HyperLogLog::new();
                for i in 0..5_000u64 {
                    hll.add(&(f * 2_500 + i).to_le_bytes());
                }
                (hll, 5_000)
            })
            .collect();
        b.iter(|| {
            let refs: Vec<(&HyperLogLog, u64)> = sketches.iter().map(|(h, n)| (h, *n)).collect();
            black_box(overlap_ratio(refs).unwrap().ratio)
        })
    });
}

fn bench_bloom(c: &mut Criterion) {
    let keys: Vec<Vec<u8>> = (0..20_000u64).map(|i| format!("key-{i:08}").into_bytes()).collect();
    let filter = BloomFilter::build(keys.iter().map(|k| k.as_slice()), 10);
    c.bench_function("bloom/build_20k_keys", |b| {
        b.iter(|| black_box(BloomFilter::build(keys.iter().map(|k| k.as_slice()), 10)))
    });
    c.bench_function("bloom/may_contain", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % keys.len();
            black_box(filter.may_contain(&keys[i]))
        })
    });
}

fn bench_memtable(c: &mut Criterion) {
    c.bench_function("memtable/insert_255B_values", |b| {
        let memtable = Memtable::new();
        let value = vec![7u8; 255];
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let key = format!("key-{:08}", i % 100_000);
            memtable.insert(key.as_bytes(), &value, i, ValueKind::Put, LogPosition::default());
        })
    });
    c.bench_function("memtable/get_hit", |b| {
        let memtable = Memtable::new();
        let value = vec![7u8; 255];
        for i in 0..50_000u64 {
            let key = format!("key-{i:08}");
            memtable.insert(key.as_bytes(), &value, i + 1, ValueKind::Put, LogPosition::default());
        }
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let key = format!("key-{:08}", i % 50_000);
            black_box(memtable.get(key.as_bytes(), u64::MAX))
        })
    });
}

fn bench_wal(c: &mut Criterion) {
    c.bench_function("wal/append_263B_records", |b| {
        let dir = std::env::temp_dir().join(format!("triad-bench-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.log");
        let _ = std::fs::remove_file(&path);
        let mut writer = LogWriter::create(&path, 1).unwrap();
        let value = vec![9u8; 255];
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let record =
                LogRecord::put(i, format!("key-{:08}", i % 10_000).into_bytes(), value.clone());
            black_box(writer.append(&record).unwrap())
        });
        let _ = std::fs::remove_file(&path);
    });
}

fn bench_sstable(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("triad-bench-sst-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bench.sst");
    let _ = std::fs::remove_file(&path);
    let mut builder = TableBuilder::create(&path, TableBuilderOptions::default()).unwrap();
    for i in 0..50_000u64 {
        let key = InternalKey::new(format!("key-{i:08}").into_bytes(), i + 1, ValueKind::Put);
        builder.add(&key, &vec![5u8; 255]).unwrap();
    }
    builder.finish().unwrap();
    let table = Table::open(&path, None).unwrap();
    c.bench_function("sstable/point_get_hit", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let key = format!("key-{:08}", (i * 7919) % 50_000);
            black_box(table.get_entry(key.as_bytes(), u64::MAX).unwrap())
        })
    });
    c.bench_function("sstable/point_get_miss", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let key = format!("absent-{i:08}");
            black_box(table.get_entry(key.as_bytes(), u64::MAX).unwrap())
        })
    });
}

/// Shared Criterion configuration: small samples so `cargo bench` stays quick.
fn configure() -> Criterion {
    Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = configure();
    targets = bench_hash_and_hll, bench_bloom, bench_memtable, bench_wal, bench_sstable
}
criterion_main!(benches);
