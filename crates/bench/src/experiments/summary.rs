//! The headline numbers of the evaluation (§5.2/§5.3), gathered into one table.

use triad_core::TriadConfig;
use triad_workload::OperationMix;

use crate::experiments::{bench_options, ops_per_thread, synthetic_workload, SkewProfile};
use crate::report::{print_table, Table};
use crate::runner::{run_experiment, ExperimentConfig, ExperimentResult, Scale};

/// A TRIAD-vs-baseline comparison on one workload.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Workload label.
    pub workload: String,
    /// Baseline result.
    pub baseline: ExperimentResult,
    /// TRIAD result.
    pub triad: ExperimentResult,
}

impl Comparison {
    /// Throughput improvement in percent.
    pub fn throughput_gain_pct(&self) -> f64 {
        (self.triad.kops / self.baseline.kops.max(1e-9) - 1.0) * 100.0
    }

    /// WA reduction factor.
    pub fn wa_reduction(&self) -> f64 {
        self.baseline.write_amplification / self.triad.write_amplification.max(1e-9)
    }

    /// Background-bytes reduction factor (flush + compaction).
    pub fn io_reduction(&self) -> f64 {
        let baseline = (self.baseline.flushed_bytes + self.baseline.compacted_bytes) as f64;
        let triad = (self.triad.flushed_bytes + self.triad.compacted_bytes) as f64;
        baseline / triad.max(1.0)
    }

    /// Relative reduction in time spent on background work, in percent.
    pub fn background_time_reduction_pct(&self) -> f64 {
        let baseline = self.baseline.background_time_fraction;
        let triad = self.triad.background_time_fraction;
        if baseline <= 0.0 {
            0.0
        } else {
            (1.0 - triad / baseline) * 100.0
        }
    }
}

/// Runs TRIAD vs baseline on the three synthetic skews and prints the headline table.
pub fn run(scale: Scale) -> triad_common::Result<(Table, Vec<Comparison>)> {
    let mut comparisons = Vec::new();
    for skew in SkewProfile::all() {
        let workload = synthetic_workload(scale, skew, OperationMix::write_intensive());
        let run_one = |label: &str, triad: TriadConfig| -> triad_common::Result<_> {
            let config = ExperimentConfig::new(
                format!("summary-{label}-{}", skew.label()),
                bench_options(scale, triad),
                workload.clone(),
            )
            .with_threads(8)
            .with_ops_per_thread(ops_per_thread(scale));
            run_experiment(&config)
        };
        comparisons.push(Comparison {
            workload: skew.label().to_string(),
            baseline: run_one("rocksdb", TriadConfig::baseline())?,
            triad: run_one("triad", TriadConfig::all_enabled())?,
        });
    }
    let mut table = Table::new(&[
        "workload",
        "throughput gain",
        "WA reduction",
        "background I/O reduction",
        "bg time reduction",
    ]);
    for comparison in &comparisons {
        table.add_row(vec![
            comparison.workload.clone(),
            format!("{:+.0}%", comparison.throughput_gain_pct()),
            format!("{:.2}x", comparison.wa_reduction()),
            format!("{:.1}x", comparison.io_reduction()),
            format!("{:.0}%", comparison.background_time_reduction_pct()),
        ]);
    }
    print_table(
        "Headline summary: TRIAD vs baseline (8 threads, 10r-90w)",
        &table,
        "up to 193% higher throughput, up to 4x lower WA, up to an order of magnitude \
         less I/O, 77% less time in flushing and compaction on average",
    );

    // The front-door write pipeline behind those numbers: how much the
    // group-commit path amortized and overlapped per workload (TRIAD runs).
    let mut pipeline = Table::new(&[
        "workload",
        "commit groups",
        "avg batches/group",
        "max group",
        "depth",
        "fsyncs",
        "amortized",
        "overlapped",
        "append µs*",
        "sync wait µs*",
    ]);
    for comparison in &comparisons {
        let r = &comparison.triad;
        let avg = if r.write_groups == 0 {
            0.0
        } else {
            r.write_group_batches as f64 / r.write_groups as f64
        };
        pipeline.add_row(vec![
            comparison.workload.clone(),
            r.write_groups.to_string(),
            format!("{avg:.2}"),
            r.write_group_max_size.to_string(),
            r.wal_pipeline_max_depth.to_string(),
            r.wal_syncs.to_string(),
            r.wal_syncs_amortized.to_string(),
            r.wal_syncs_overlapped.to_string(),
            r.wal_append_us.to_string(),
            r.wal_sync_wait_us.to_string(),
        ]);
    }
    print_table(
        "Group-commit pipeline during the TRIAD runs",
        &pipeline,
        "not a paper figure: repository-side instrumentation of the pipelined \
         leader/follower write path (*sampled sums, 1 in 16 groups timed; see \
         fig_write_scaling for the dedicated three-mode sweep)",
    );
    Ok((table, comparisons))
}
