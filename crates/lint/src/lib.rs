//! `triad-lint`: the workspace's in-tree invariant checker.
//!
//! The engine's correctness rests on invariants that used to live in prose
//! and in fragile shell greps in CI: no fsync under the pipelined append
//! lock, unbounded (`u64::MAX`) probes on the hot read path, no resurrection
//! of the stale-version retry hack, a global lock acquisition order. This
//! crate turns each of those into a versioned rule with file:line
//! diagnostics, driven by a token-level Rust scanner ([`scanner`]) — no
//! external dependencies, per the workspace's vendored-only constraint.
//!
//! Run it as `cargo run -p triad-lint` (add `--deny` to fail on violations,
//! `--json` for machine-readable output, `--list-rules` to enumerate the rule
//! set). CI runs the deny mode before the test suite; the rules are
//! documented in docs/ARCHITECTURE.md ("Enforced invariants").
//!
//! The static pass is paired with a dynamic backstop: the ranked lock
//! wrappers in `triad_common::lockrank` assert the same acquisition order at
//! runtime in debug builds, covering guard lifetimes the lexical model
//! cannot see.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod rules;
pub mod scanner;
pub mod walker;

pub use diag::{to_json, Diagnostic};
pub use rules::{run_all, Rule, RULES};
pub use scanner::SourceFile;

use std::path::Path;

/// Lints every `.rs` file under `root` (the workspace checkout), returning
/// diagnostics sorted by location.
pub fn lint_root(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let sources = walker::collect_sources(root)?;
    let files: Vec<SourceFile> =
        sources.iter().map(|(path, text)| SourceFile::parse(path, text)).collect();
    Ok(run_all(&files))
}
