//! The manifest: durable history of version edits.
//!
//! Every flush and compaction appends a [`VersionEdit`] to the manifest before the
//! new version becomes visible, so that the file layout of the LSM tree survives a
//! crash. On open, the manifest is replayed to rebuild the current [`Version`]; a
//! fresh manifest containing a single snapshot edit is then written (and the
//! `CURRENT` pointer updated atomically), which keeps manifests from growing without
//! bound and tolerates torn writes at the tail of the previous manifest.

use std::path::{Path, PathBuf};
use std::sync::{Arc, Weak};

use triad_common::{Error, Result};
use triad_wal::{LogReader, LogRecord, LogWriter};

use crate::version::{Version, VersionEdit};

/// Name of the pointer file identifying the live manifest.
const CURRENT_FILE: &str = "CURRENT";

/// Returns the file name of manifest number `id`.
fn manifest_file_name(id: u64) -> String {
    format!("MANIFEST-{id:06}")
}

/// Tracks the current [`Version`] plus the counters shared by the whole engine, and
/// persists every change to the manifest.
#[derive(Debug)]
pub struct VersionSet {
    dir: PathBuf,
    current: Arc<Version>,
    next_file_number: u64,
    last_seqno: u64,
    /// Oldest commit log whose contents are not yet captured by the tables of the
    /// current version (logs older than this are replayed only if a CL-SSTable
    /// references them).
    log_number: u64,
    manifest: LogWriter,
    manifest_id: u64,
    /// Weak handles to every installed version that may still be pinned by a reader
    /// (or by the engine itself for the current version). A version counts as live
    /// while any `Arc<Version>` clone of it survives; garbage collection consults
    /// this registry to decide which files are still reachable. Dead entries are
    /// pruned on every installation and on every [`live_versions`] call.
    ///
    /// [`live_versions`]: VersionSet::live_versions
    live: Vec<Weak<Version>>,
}

impl VersionSet {
    /// Recovers (or initialises) the version set stored in `dir`.
    pub fn recover(dir: impl AsRef<Path>, num_levels: usize) -> Result<VersionSet> {
        let dir = dir.as_ref().to_path_buf();
        let mut version = Version::empty(num_levels);
        let mut next_file_number = 1u64;
        let mut last_seqno = 0u64;
        let mut log_number = 0u64;

        let current_path = dir.join(CURRENT_FILE);
        if current_path.exists() {
            let manifest_name = std::fs::read_to_string(&current_path)
                .map_err(|e| Error::io(format!("reading {}", current_path.display()), e))?;
            let manifest_path = dir.join(manifest_name.trim());
            if manifest_path.exists() {
                let reader = LogReader::open(&manifest_path)?;
                let (records, _tail) = reader.recover()?;
                for record in records {
                    let edit = VersionEdit::decode(&record.record.value)?;
                    version = version.apply(&edit)?;
                    if let Some(n) = edit.next_file_number {
                        next_file_number = next_file_number.max(n);
                    }
                    if let Some(s) = edit.last_seqno {
                        last_seqno = last_seqno.max(s);
                    }
                    if let Some(l) = edit.log_number {
                        log_number = log_number.max(l);
                    }
                }
            }
        }

        // Start a fresh manifest holding a snapshot of the recovered state.
        let manifest_id = next_file_number;
        next_file_number += 1;
        let manifest_path = dir.join(manifest_file_name(manifest_id));
        if manifest_path.exists() {
            std::fs::remove_file(&manifest_path)
                .map_err(|e| Error::io(format!("removing stale {}", manifest_path.display()), e))?;
        }
        let mut manifest = LogWriter::create(&manifest_path, manifest_id)?;
        let snapshot = VersionEdit {
            added: version.levels.iter().flatten().map(|f| f.as_ref().clone()).collect(),
            deleted: Vec::new(),
            next_file_number: Some(next_file_number),
            last_seqno: Some(last_seqno),
            log_number: Some(log_number),
        };
        manifest.append(&LogRecord::put(0, b"edit".to_vec(), snapshot.encode()))?;
        manifest.sync()?;
        Self::set_current(&dir, manifest_id)?;
        Self::remove_stale_manifests(&dir, manifest_id)?;

        let current = Arc::new(version);
        let live = vec![Arc::downgrade(&current)];
        Ok(VersionSet {
            dir,
            current,
            next_file_number,
            last_seqno,
            log_number,
            manifest,
            manifest_id,
            live,
        })
    }

    /// Writes a fresh manifest into `dir` — a single snapshot edit describing
    /// `version` plus the counters — and installs the `CURRENT` pointer.
    ///
    /// This is checkpoint capture's building block: the checkpoint directory
    /// gets a manifest equivalent to what [`VersionSet::recover`] would write
    /// for the captured state, so opening the checkpoint recovers exactly the
    /// linked files and replays exactly the copied logs (those at or past
    /// `log_number`). `next_file_number` must exceed every file id the
    /// version references (the caller passes the primary's own counter).
    pub(crate) fn write_snapshot_manifest(
        dir: &Path,
        version: &Version,
        next_file_number: u64,
        last_seqno: u64,
        log_number: u64,
    ) -> Result<()> {
        let manifest_id = next_file_number;
        let mut manifest =
            LogWriter::create(dir.join(manifest_file_name(manifest_id)), manifest_id)?;
        let snapshot = VersionEdit {
            added: version.levels.iter().flatten().map(|f| f.as_ref().clone()).collect(),
            deleted: Vec::new(),
            next_file_number: Some(next_file_number + 1),
            last_seqno: Some(last_seqno),
            log_number: Some(log_number),
        };
        manifest.append(&LogRecord::put(0, b"edit".to_vec(), snapshot.encode()))?;
        manifest.sync()?;
        Self::set_current(dir, manifest_id)
    }

    fn set_current(dir: &Path, manifest_id: u64) -> Result<()> {
        let tmp = dir.join(format!("{CURRENT_FILE}.tmp"));
        std::fs::write(&tmp, manifest_file_name(manifest_id))
            .map_err(|e| Error::io(format!("writing {}", tmp.display()), e))?;
        std::fs::rename(&tmp, dir.join(CURRENT_FILE))
            .map_err(|e| Error::io("installing CURRENT pointer".to_string(), e))?;
        Ok(())
    }

    fn remove_stale_manifests(dir: &Path, keep_id: u64) -> Result<()> {
        let entries =
            std::fs::read_dir(dir).map_err(|e| Error::io("listing database directory", e))?;
        for entry in entries {
            let entry = entry.map_err(|e| Error::io("listing database directory", e))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if let Some(id_str) = name.strip_prefix("MANIFEST-") {
                if let Ok(id) = id_str.parse::<u64>() {
                    if id != keep_id {
                        let _ = std::fs::remove_file(entry.path());
                    }
                }
            }
        }
        Ok(())
    }

    /// The directory this version set lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The current version.
    pub fn current(&self) -> Arc<Version> {
        Arc::clone(&self.current)
    }

    /// The id of the live manifest file (exposed for tests).
    pub fn manifest_id(&self) -> u64 {
        self.manifest_id
    }

    /// The file name of the live manifest.
    pub fn live_manifest_name(&self) -> String {
        manifest_file_name(self.manifest_id)
    }

    /// Every version that is still referenced somewhere — the current version plus
    /// any older version a reader still holds an `Arc` clone of. Prunes dead weak
    /// handles as a side effect.
    pub fn live_versions(&mut self) -> Vec<Arc<Version>> {
        let mut live = Vec::with_capacity(self.live.len());
        self.live.retain(|weak| match weak.upgrade() {
            Some(version) => {
                live.push(version);
                true
            }
            None => false,
        });
        live
    }

    /// Number of versions currently live (exposed for tests and diagnostics).
    pub fn live_version_count(&mut self) -> usize {
        self.live_versions().len()
    }

    /// Allocates a new file number (used for tables, commit logs and manifests).
    pub fn allocate_file_number(&mut self) -> u64 {
        let id = self.next_file_number;
        self.next_file_number += 1;
        id
    }

    /// The next file number that would be allocated.
    pub fn next_file_number(&self) -> u64 {
        self.next_file_number
    }

    /// The largest sequence number known to be durable in tables or logs.
    pub fn last_seqno(&self) -> u64 {
        self.last_seqno
    }

    /// Advances the recorded last sequence number (kept in memory; persisted on the
    /// next `log_and_apply`).
    pub fn set_last_seqno(&mut self, seqno: u64) {
        self.last_seqno = self.last_seqno.max(seqno);
    }

    /// The oldest commit log that still needs replay on recovery.
    pub fn log_number(&self) -> u64 {
        self.log_number
    }

    /// Appends `edit` to the manifest, syncs it, and applies it to produce the new
    /// current version.
    pub fn log_and_apply(&mut self, mut edit: VersionEdit) -> Result<Arc<Version>> {
        // Always persist the current counters so recovery can restore them.
        edit.next_file_number = Some(edit.next_file_number.unwrap_or(self.next_file_number));
        edit.last_seqno = Some(edit.last_seqno.unwrap_or(self.last_seqno).max(self.last_seqno));
        edit.log_number = Some(edit.log_number.unwrap_or(self.log_number).max(self.log_number));

        let new_version = self.current.apply(&edit)?;
        self.manifest.append(&LogRecord::put(0, b"edit".to_vec(), edit.encode()))?;
        self.manifest.sync()?;

        if let Some(n) = edit.next_file_number {
            self.next_file_number = self.next_file_number.max(n);
        }
        if let Some(s) = edit.last_seqno {
            self.last_seqno = self.last_seqno.max(s);
        }
        if let Some(l) = edit.log_number {
            self.log_number = self.log_number.max(l);
        }
        self.current = Arc::new(new_version);
        self.live.retain(|weak| weak.strong_count() > 0);
        self.live.push(Arc::downgrade(&self.current));
        Ok(Arc::clone(&self.current))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::version::FileMetadata;
    use triad_common::types::{InternalKey, ValueKind};
    use triad_hll::HyperLogLog;
    use triad_sstable::TableKind;

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("triad-manifest-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn file(id: u64, level: u32) -> FileMetadata {
        FileMetadata {
            id,
            level,
            kind: TableKind::Block,
            size: 100,
            num_entries: 5,
            smallest: InternalKey::new(format!("a{id}").into_bytes(), 10, ValueKind::Put),
            largest: InternalKey::new(format!("z{id}").into_bytes(), 1, ValueKind::Put),
            hll: HyperLogLog::new(),
            backing_log_id: None,
        }
    }

    #[test]
    fn fresh_directory_starts_empty() {
        let dir = temp_dir("fresh");
        let versions = VersionSet::recover(&dir, 7).unwrap();
        assert_eq!(versions.current().total_files(), 0);
        assert_eq!(versions.last_seqno(), 0);
        assert!(dir.join(CURRENT_FILE).exists());
    }

    #[test]
    fn edits_survive_reopen() {
        let dir = temp_dir("reopen");
        {
            let mut versions = VersionSet::recover(&dir, 7).unwrap();
            let id = versions.allocate_file_number();
            versions.set_last_seqno(123);
            versions
                .log_and_apply(VersionEdit { added: vec![file(id, 0)], ..Default::default() })
                .unwrap();
            let id2 = versions.allocate_file_number();
            versions
                .log_and_apply(VersionEdit {
                    added: vec![file(id2, 1)],
                    last_seqno: Some(456),
                    log_number: Some(9),
                    ..Default::default()
                })
                .unwrap();
            assert_eq!(versions.current().total_files(), 2);
        }
        let versions = VersionSet::recover(&dir, 7).unwrap();
        assert_eq!(versions.current().total_files(), 2);
        assert_eq!(versions.current().num_files(0), 1);
        assert_eq!(versions.current().num_files(1), 1);
        assert_eq!(versions.last_seqno(), 456);
        assert_eq!(versions.log_number(), 9);
        assert!(versions.next_file_number() > 2);
    }

    #[test]
    fn deletions_survive_reopen() {
        let dir = temp_dir("delete");
        {
            let mut versions = VersionSet::recover(&dir, 7).unwrap();
            let a = versions.allocate_file_number();
            let b = versions.allocate_file_number();
            versions
                .log_and_apply(VersionEdit {
                    added: vec![file(a, 0), file(b, 0)],
                    ..Default::default()
                })
                .unwrap();
            versions
                .log_and_apply(VersionEdit { deleted: vec![(0, a)], ..Default::default() })
                .unwrap();
            assert_eq!(versions.current().num_files(0), 1);
        }
        let versions = VersionSet::recover(&dir, 7).unwrap();
        assert_eq!(versions.current().num_files(0), 1);
    }

    #[test]
    fn reopen_rotates_the_manifest_and_cleans_old_ones() {
        let dir = temp_dir("rotate");
        let first_id = {
            let versions = VersionSet::recover(&dir, 7).unwrap();
            versions.manifest_id()
        };
        let second_id = {
            let versions = VersionSet::recover(&dir, 7).unwrap();
            versions.manifest_id()
        };
        assert_ne!(first_id, second_id);
        assert!(!dir.join(manifest_file_name(first_id)).exists(), "old manifest removed");
        assert!(dir.join(manifest_file_name(second_id)).exists());
        let current = std::fs::read_to_string(dir.join(CURRENT_FILE)).unwrap();
        assert_eq!(current.trim(), manifest_file_name(second_id));
    }

    #[test]
    fn file_numbers_are_unique_and_monotonic() {
        let dir = temp_dir("filenum");
        let mut versions = VersionSet::recover(&dir, 7).unwrap();
        let a = versions.allocate_file_number();
        let b = versions.allocate_file_number();
        assert!(b > a);
        // Counters persist across reopen (via log_and_apply of an empty-ish edit).
        versions.log_and_apply(VersionEdit::default()).unwrap();
        drop(versions);
        let versions = VersionSet::recover(&dir, 7).unwrap();
        assert!(versions.next_file_number() > b);
    }

    #[test]
    fn torn_manifest_tail_is_tolerated() {
        let dir = temp_dir("torn");
        {
            let mut versions = VersionSet::recover(&dir, 7).unwrap();
            let id = versions.allocate_file_number();
            versions
                .log_and_apply(VersionEdit { added: vec![file(id, 0)], ..Default::default() })
                .unwrap();
        }
        // Corrupt the tail of the manifest: append garbage bytes.
        let current = std::fs::read_to_string(dir.join(CURRENT_FILE)).unwrap();
        let manifest_path = dir.join(current.trim());
        let mut bytes = std::fs::read(&manifest_path).unwrap();
        bytes.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef]);
        std::fs::write(&manifest_path, bytes).unwrap();

        let versions = VersionSet::recover(&dir, 7).unwrap();
        assert_eq!(versions.current().total_files(), 1, "intact prefix is recovered");
    }

    #[test]
    fn live_version_registry_tracks_pins() {
        let dir = temp_dir("live-registry");
        let mut versions = VersionSet::recover(&dir, 7).unwrap();
        assert_eq!(versions.live_version_count(), 1, "the current version is always live");

        // A reader holds the pre-edit version across an installation.
        let pinned = versions.current();
        let id = versions.allocate_file_number();
        versions
            .log_and_apply(VersionEdit { added: vec![file(id, 0)], ..Default::default() })
            .unwrap();
        assert_eq!(versions.live_version_count(), 2, "pinned old version stays live");
        let live = versions.live_versions();
        assert!(live.iter().any(|v| Arc::ptr_eq(v, &pinned)));

        // Dropping the pin retires the old version.
        drop(live);
        drop(pinned);
        assert_eq!(versions.live_version_count(), 1);

        // Unpinned versions die immediately on the next installation.
        let id2 = versions.allocate_file_number();
        versions
            .log_and_apply(VersionEdit { added: vec![file(id2, 1)], ..Default::default() })
            .unwrap();
        assert_eq!(versions.live_version_count(), 1);
        assert_eq!(versions.live_versions()[0].total_files(), 2);
    }

    #[test]
    fn missing_current_file_is_treated_as_empty() {
        let dir = temp_dir("missing-current");
        {
            let mut versions = VersionSet::recover(&dir, 7).unwrap();
            let id = versions.allocate_file_number();
            versions
                .log_and_apply(VersionEdit { added: vec![file(id, 0)], ..Default::default() })
                .unwrap();
        }
        std::fs::remove_file(dir.join(CURRENT_FILE)).unwrap();
        let versions = VersionSet::recover(&dir, 7).unwrap();
        assert_eq!(versions.current().total_files(), 0, "without CURRENT the state is empty");
    }
}
