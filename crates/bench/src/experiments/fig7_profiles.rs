//! Figures 7 and 8: the production workload profiles.
//!
//! We cannot publish the Nutanix traces, so this experiment prints the synthetic
//! profiles the harness substitutes for them: the access-probability curve of each
//! workload (Figure 7) and the update/key counts (Figure 8), so the reader can check
//! the shapes against the paper.

use triad_workload::{ProductionProfile, ProductionWorkload};

use crate::report::{print_table, Table};
use crate::runner::Scale;

/// Scale-down factor applied to the paper's workload sizes.
pub fn scale_down_factor(scale: Scale) -> u64 {
    match scale {
        Scale::Quick => 2_000,
        Scale::Full => 100,
    }
}

/// Prints the probability curves (Figure 7) and size table (Figure 8).
pub fn run(scale: Scale) -> triad_common::Result<(Table, Table)> {
    let factor = scale_down_factor(scale);
    let profiles: Vec<ProductionProfile> =
        ProductionWorkload::all().iter().map(|w| ProductionProfile::new(*w, factor)).collect();

    let mut fig7 =
        Table::new(&["key rank", "W1 p(access)", "W2 p(access)", "W3 p(access)", "W4 p(access)"]);
    let max_keys = profiles.iter().map(|p| p.num_keys).max().unwrap_or(1);
    let mut rank = 1u64;
    while rank < max_keys {
        let mut row = vec![format!("{rank}")];
        for profile in &profiles {
            if rank < profile.num_keys {
                row.push(format!("{:.2e}", profile.access_probability(rank)));
            } else {
                row.push("-".to_string());
            }
        }
        fig7.add_row(row);
        rank *= 4;
    }
    print_table(
        "Figure 7: production workload key popularity (synthetic substitution)",
        &fig7,
        "W2 and W4 are visibly more skewed than W1 and W3; probability decays smoothly with rank",
    );

    let mut fig8 = Table::new(&["workload", "updates", "keys", "updates/key", "skew family"]);
    for profile in &profiles {
        fig8.add_row(vec![
            profile.workload.label().to_string(),
            format!("{}", profile.num_updates),
            format!("{}", profile.num_keys),
            format!("{:.1}", profile.update_to_key_ratio()),
            if profile.is_high_skew() { "more skew".into() } else { "less skew".into() },
        ]);
    }
    print_table(
        "Figure 8: production workload sizes (scaled)",
        &fig8,
        "W1=250M/40M, W2=75M/9M, W3=200M/30M, W4=75M/8M (updates/keys)",
    );
    Ok((fig7, fig8))
}
