//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! crate.
//!
//! The workspace builds without registry access, so this crate provides the
//! criterion 0.5 API surface TRIAD's benches use — [`Criterion`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`black_box`],
//! [`criterion_group!`] and [`criterion_main!`] — backed by a simple
//! wall-clock measurement loop. Reported numbers are mean wall time per
//! iteration over `sample_size` samples; there is no statistical analysis,
//! outlier rejection, or HTML report.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// How `iter_batched` amortizes setup cost across measured iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Many iterations per setup batch (cheap inputs).
    SmallInput,
    /// Few iterations per setup batch (expensive inputs).
    LargeInput,
    /// One fresh setup per measured iteration.
    PerIteration,
}

/// The benchmark driver: times closures and prints one line per benchmark.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10, measurement_time: Duration::from_secs(1) }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    #[must_use]
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Sets the total time budget spread across one benchmark's samples.
    #[must_use]
    pub fn measurement_time(mut self, time: Duration) -> Self {
        self.measurement_time = time;
        self
    }

    /// Runs `routine` with a [`Bencher`] and prints the mean time per iteration.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            budget_per_sample: self.measurement_time.div_f64(self.sample_size as f64),
            samples: self.sample_size,
            total: Duration::ZERO,
            iterations: 0,
        };
        routine(&mut bencher);
        if bencher.iterations == 0 {
            println!("{name:<40} (no iterations recorded)");
            return self;
        }
        let nanos_per_iter = bencher.total.as_nanos() as f64 / bencher.iterations as f64;
        println!(
            "{name:<40} {:>12} iters   {:>14} /iter",
            bencher.iterations,
            format_nanos(nanos_per_iter)
        );
        self
    }
}

fn format_nanos(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:.1} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos / 1_000_000_000.0)
    }
}

/// The timing context handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    budget_per_sample: Duration,
    samples: usize,
    total: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`, auto-scaling the batch size so each
    /// sample lands near the per-sample time budget.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Calibrate: grow the batch until one batch takes ~1/10 of a sample.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.budget_per_sample / 10 || batch >= 1 << 24 {
                break;
            }
            batch = batch.saturating_mul(2);
        }
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.total += start.elapsed();
            self.iterations += batch;
        }
    }

    /// Times `routine` over inputs produced by `setup`, excluding setup time
    /// from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        // One input per measured iteration: correct for every BatchSize and
        // sufficient for the scaled-down figure benches.
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
            self.iterations += 1;
        }
    }
}

/// Declares a benchmark group: a function invoking each target with a shared
/// [`Criterion`] configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        #[doc = concat!("Runs the `", stringify!($name), "` benchmark group.")]
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::{BatchSize, Criterion};

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(std::time::Duration::from_millis(3));
        let mut ran = 0u64;
        c.bench_function("smoke/iter", |b| b.iter(|| ran = ran.wrapping_add(1)));
        assert!(ran > 0);
    }

    #[test]
    fn iter_batched_consumes_setup_values() {
        let mut c = Criterion::default()
            .sample_size(4)
            .measurement_time(std::time::Duration::from_millis(2));
        let mut seen = 0usize;
        c.bench_function("smoke/batched", |b| {
            b.iter_batched(|| vec![1u8, 2, 3], |v| seen += v.len(), BatchSize::PerIteration)
        });
        assert_eq!(seen % 3, 0);
        assert!(seen > 0);
    }
}
