//! Caching of open table handles.
//!
//! Opening a table (reading its footer, index block, bloom filter and properties) is
//! far more expensive than a point lookup, so the engine keeps every live table open
//! in a cache keyed by file id.
//!
//! Eviction is driven by garbage collection, which removes the entry immediately
//! before unlinking the file — and only once no live [`Version`](crate::Version)
//! references it. That ordering is what makes a once-feared race impossible: a
//! reader can only ask the cache for files listed in a version it has pinned, a
//! pinned version keeps its files out of GC's reach, so no `get_or_open` can ever
//! resurrect a handle for a deleted file after `evict` ran.
//!
//! When the engine runs with a shared [`BlockCache`], the table cache is also
//! the bridge into it: each opened table gets a cache-wide unique table id and
//! a [`FetchContext`] so its data-block reads go through the cache, and
//! `evict` purges the departing table's blocks in the same breath — a
//! recycled per-shard file id can therefore never resurrect stale blocks.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

use triad_common::lockrank::RankedMutex;
use triad_common::{Error, Result, Stats};
use triad_sstable::{
    cl_index_file_path, sst_file_path, BlockFetch, ClTable, FetchContext, IoPool, Table, TableKind,
    TableRef,
};
use triad_wal::log_file_path;

use crate::block_cache::BlockCache;
use crate::version::FileMetadata;

/// A cached open table plus its identity in the block cache (when one runs).
struct OpenTable {
    table: TableRef,
    /// The cache-wide table id this handle's blocks are keyed under; `None`
    /// when the engine runs without a block cache.
    cache_table_id: Option<u64>,
}

/// A cache of open [`TableRef`]s.
pub struct TableCache {
    dir: PathBuf,
    stats: Arc<Stats>,
    /// The shared block cache, if enabled (`Options::block_cache > 0`). One
    /// instance serves every keyspace shard's table cache.
    block_cache: Option<Arc<BlockCache>>,
    /// The shared readahead pool, handed to each opened table's fetch context.
    io_pool: Option<Arc<IoPool>>,
    tables: RankedMutex<HashMap<u64, OpenTable>>,
}

impl std::fmt::Debug for TableCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TableCache")
            .field("dir", &self.dir)
            .field("open_tables", &self.tables.lock().len())
            .finish()
    }
}

impl TableCache {
    /// Creates an empty cache for tables living in `dir`. `block_cache` and
    /// `io_pool`, when present, are threaded into every table this cache
    /// opens.
    pub fn new(
        dir: PathBuf,
        stats: Arc<Stats>,
        block_cache: Option<Arc<BlockCache>>,
        io_pool: Option<Arc<IoPool>>,
    ) -> Self {
        TableCache {
            dir,
            stats,
            block_cache,
            io_pool,
            tables: RankedMutex::new(
                crate::db::lock_rank::TABLE_CACHE,
                "table_cache.tables",
                HashMap::new(),
            ),
        }
    }

    /// Returns an open handle for `file`, opening it if necessary.
    pub fn get_or_open(&self, file: &FileMetadata) -> Result<TableRef> {
        // Probe under a scoped lock; the hit/miss counter bumps happen after
        // the guard is dropped so stats traffic never extends the critical
        // section (and an open racing below cannot double-count the probe).
        let cached = { self.tables.lock().get(&file.id).map(|open| Arc::clone(&open.table)) };
        if let Some(table) = cached {
            self.stats.add_table_cache_hits(1);
            return Ok(table);
        }
        self.stats.add_table_cache_misses(1);

        let fetch = self.block_cache.as_ref().map(|cache| FetchContext {
            table_id: cache.allocate_table_id(),
            fetch: Arc::clone(cache) as Arc<dyn BlockFetch>,
            readahead: self.io_pool.clone(),
        });
        let cache_table_id = fetch.as_ref().map(|ctx| ctx.table_id);
        let table: TableRef = match file.kind {
            TableKind::Block => {
                let path = sst_file_path(&self.dir, file.id);
                Arc::new(Table::open_with_fetch(path, Some(Arc::clone(&self.stats)), fetch)?)
            }
            TableKind::CommitLogIndex => {
                let log_id = file.backing_log_id.ok_or_else(|| {
                    Error::corruption(format!("CL-SSTable {} has no backing log id", file.id))
                })?;
                let index_path = cl_index_file_path(&self.dir, file.id);
                let log_path = log_file_path(&self.dir, log_id);
                Arc::new(ClTable::open_with_fetch(
                    index_path,
                    log_path,
                    Some(Arc::clone(&self.stats)),
                    fetch,
                )?)
            }
        };
        let mut tables = self.tables.lock();
        let entry = tables
            .entry(file.id)
            .or_insert_with(|| OpenTable { table: Arc::clone(&table), cache_table_id });
        // If another opener won the race, our freshly allocated cache table
        // id dies with our handle — it never cached a block, so there is
        // nothing to purge.
        Ok(Arc::clone(&entry.table))
    }

    /// Drops the cached handle for `file_id`, purging the table's blocks from
    /// the shared block cache.
    ///
    /// Called by the garbage collector immediately before it unlinks the file;
    /// because GC only deletes files no live version references, no reader can
    /// re-insert the handle afterwards.
    pub fn evict(&self, file_id: u64) {
        let evicted = self.tables.lock().remove(&file_id);
        if let (Some(open), Some(cache)) = (evicted, &self.block_cache) {
            if let Some(cache_table_id) = open.cache_table_id {
                cache.purge_table(cache_table_id);
            }
        }
    }

    /// The shared block cache, if this table cache runs with one (exposed for
    /// tests and diagnostics).
    pub fn block_cache(&self) -> Option<&Arc<BlockCache>> {
        self.block_cache.as_ref()
    }

    /// Number of cached handles (exposed for tests).
    pub fn len(&self) -> usize {
        self.tables.lock().len()
    }

    /// Ids of every cached handle, sorted (exposed for tests and diagnostics).
    pub fn cached_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.tables.lock().keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Returns `true` when no handles are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triad_common::types::{InternalKey, ValueKind};
    use triad_hll::HyperLogLog;
    use triad_sstable::{TableBuilder, TableBuilderOptions};

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("triad-table-cache-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn build_sst(dir: &std::path::Path, id: u64) -> FileMetadata {
        let path = sst_file_path(dir, id);
        let mut builder = TableBuilder::create(&path, TableBuilderOptions::default()).unwrap();
        let key = InternalKey::new(b"key".to_vec(), 1, ValueKind::Put);
        builder.add(&key, b"value").unwrap();
        let (props, size) = builder.finish().unwrap();
        FileMetadata {
            id,
            level: 0,
            kind: TableKind::Block,
            size,
            num_entries: props.num_entries,
            smallest: props.smallest.clone().unwrap(),
            largest: props.largest.clone().unwrap(),
            hll: HyperLogLog::new(),
            backing_log_id: None,
        }
    }

    fn plain_cache(dir: PathBuf, stats: Arc<Stats>) -> TableCache {
        TableCache::new(dir, stats, None, None)
    }

    #[test]
    fn caches_open_handles() {
        let dir = temp_dir("cache");
        let stats = Arc::new(Stats::new());
        let cache = plain_cache(dir.clone(), stats);
        let meta = build_sst(&dir, 1);
        assert!(cache.is_empty());
        let a = cache.get_or_open(&meta).unwrap();
        let b = cache.get_or_open(&meta).unwrap();
        assert_eq!(cache.len(), 1);
        assert!(Arc::ptr_eq(&a, &b), "second open must return the cached handle");
        assert_eq!(a.get(b"key", u64::MAX).unwrap().unwrap().value, b"value");
    }

    #[test]
    fn probe_counters_count_probes_not_cache_internal_retries() {
        // Regression for the stats-under-lock bug: N sequential probes of one
        // file must record exactly one miss and N-1 hits — the double-checked
        // insert path must not double-count its re-probe, and counter bumps
        // happen outside the map lock.
        let dir = temp_dir("probe-counters");
        let stats = Arc::new(Stats::new());
        let cache = plain_cache(dir.clone(), Arc::clone(&stats));
        let meta = build_sst(&dir, 7);
        for _ in 0..5 {
            cache.get_or_open(&meta).unwrap();
        }
        assert_eq!(stats.table_cache_misses(), 1, "one open, regardless of probes");
        assert_eq!(stats.table_cache_hits(), 4);
    }

    #[test]
    fn evict_drops_the_handle() {
        let dir = temp_dir("evict");
        let cache = plain_cache(dir.clone(), Arc::new(Stats::new()));
        let meta = build_sst(&dir, 2);
        cache.get_or_open(&meta).unwrap();
        assert_eq!(cache.len(), 1);
        cache.evict(2);
        assert!(cache.is_empty());
    }

    #[test]
    fn evict_purges_the_tables_blocks_from_the_block_cache() {
        let dir = temp_dir("evict-purges-blocks");
        let stats = Arc::new(Stats::new());
        let blocks = Arc::new(BlockCache::new(1 << 20));
        let cache =
            TableCache::new(dir.clone(), Arc::clone(&stats), Some(Arc::clone(&blocks)), None);
        let meta = build_sst(&dir, 5);
        let table = cache.get_or_open(&meta).unwrap();
        table.get(b"key", u64::MAX).unwrap().unwrap();
        assert!(blocks.block_count() > 0, "the lookup populated the block cache");
        cache.evict(5);
        assert_eq!(blocks.block_count(), 0, "evicting the table must purge its blocks");
        assert_eq!(blocks.bytes_used(), 0);
    }

    #[test]
    fn missing_backing_log_is_an_error() {
        let dir = temp_dir("missing-log");
        let cache = plain_cache(dir.clone(), Arc::new(Stats::new()));
        let mut meta = build_sst(&dir, 3);
        meta.kind = TableKind::CommitLogIndex;
        meta.backing_log_id = None;
        assert!(cache.get_or_open(&meta).is_err());
    }

    #[test]
    fn missing_file_is_an_error() {
        let dir = temp_dir("missing-file");
        let cache = plain_cache(dir.clone(), Arc::new(Stats::new()));
        let mut meta = build_sst(&dir, 4);
        meta.id = 999;
        assert!(cache.get_or_open(&meta).is_err());
    }
}
