//! Leader/follower coordination for the group-commit write pipeline.
//!
//! Concurrent [`write`](crate::Db::write) callers enqueue a [`WriterSlot`] here.
//! The first writer to arrive while no leader is active becomes the **leader**:
//! it drains the queue (up to the configured caps) into one *commit group*,
//! performs a single batched WAL append and flush/fsync for everyone, and then
//! every group member — leader and followers alike — applies its own batch to
//! the sharded memtable in parallel, outside the WAL lock. A follower that
//! received an insert ticket acknowledges itself the moment its inserts land
//! (only group-wide failures, which arrive *instead of* a ticket, need the
//! leader to deliver a result); the leader publishes `last_seqno` once the
//! whole group is appended, durable per the sync policy and inserted, then
//! hands leadership to the next waiting writer.
//!
//! This module owns the queueing, hand-off and wake-up protocol; the actual WAL
//! and memtable work lives in `db.rs` (`DbInner::lead_commit_group`).
//!
//! Lock ordering (deadlock freedom): the WAL mutex may be held while taking the
//! commit queue or the commit gate; the queue lock may be held while taking a
//! slot's state lock. Nothing ever waits on the WAL mutex while holding the
//! gate, the queue or a slot lock.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

use triad_common::types::SeqNo;
use triad_common::Result;
use triad_memtable::Memtable;

use crate::batch::{WriteBatch, WriteOptions};

/// What a parked writer is told to do next.
pub(crate) enum Direction {
    /// Leadership was handed over: drive the next commit group.
    Lead,
    /// The group's WAL write is done: apply your own batch to the memtable,
    /// signal the barrier and return success (a ticket is only ever issued for
    /// a group whose WAL phase succeeded).
    Insert(InsertTicket),
    /// The write is fully committed (or failed); this is its result.
    Done(Result<SeqNo>),
}

/// Everything a group member needs to apply its batch to the memtable.
pub(crate) struct InsertTicket {
    /// Id of the commit log the group was appended to.
    pub(crate) log_id: u64,
    /// Sequence number of this member's first operation.
    pub(crate) first_seqno: SeqNo,
    /// Absolute commit-log offset of each of this member's records, in op order.
    pub(crate) offsets: Vec<u64>,
    /// The memory component that was active when the group committed.
    pub(crate) mem: Arc<Memtable>,
    /// Completion barrier the member must signal after inserting.
    pub(crate) barrier: Arc<InsertBarrier>,
}

/// Counts down the group members still applying their memtable inserts.
pub(crate) struct InsertBarrier {
    remaining: Mutex<usize>,
    drained: Condvar,
}

impl InsertBarrier {
    pub(crate) fn new(members: usize) -> Arc<Self> {
        Arc::new(InsertBarrier { remaining: Mutex::new(members), drained: Condvar::new() })
    }

    /// Marks one member's inserts complete.
    pub(crate) fn arrive(&self) {
        let mut remaining = self.remaining.lock().expect("barrier lock poisoned");
        *remaining -= 1;
        if *remaining == 0 {
            self.drained.notify_all();
        }
    }

    /// Blocks until every member has arrived.
    pub(crate) fn wait_drained(&self) {
        let mut remaining = self.remaining.lock().expect("barrier lock poisoned");
        while *remaining > 0 {
            remaining = self.drained.wait(remaining).expect("barrier lock poisoned");
        }
    }
}

/// Per-slot progress through the commit protocol.
enum SlotState {
    /// Parked in the queue, waiting for a leader (or for promotion).
    Waiting,
    /// Promoted: this writer must become the next leader.
    Lead,
    /// WAL phase done; the ticket describes the member's memtable work.
    Insert(InsertTicket),
    /// The ticket has been taken; inserts are in flight.
    Inserting,
    /// Final result delivered by the leader.
    Done(Result<SeqNo>),
    /// The result has been consumed; terminal.
    Finished,
}

/// One queued writer: its batch, its options and its progress.
pub(crate) struct WriterSlot {
    pub(crate) batch: WriteBatch,
    pub(crate) opts: WriteOptions,
    state: Mutex<SlotState>,
    wake: Condvar,
}

impl WriterSlot {
    fn new(batch: WriteBatch, opts: WriteOptions) -> Arc<Self> {
        Arc::new(WriterSlot {
            batch,
            opts,
            state: Mutex::new(SlotState::Waiting),
            wake: Condvar::new(),
        })
    }

    /// Parks until the leader (or a hand-off) tells this writer what to do.
    pub(crate) fn wait_for_direction(&self) -> Direction {
        let mut state = self.state.lock().expect("slot lock poisoned");
        loop {
            match &*state {
                SlotState::Waiting | SlotState::Inserting => {
                    state = self.wake.wait(state).expect("slot lock poisoned");
                }
                SlotState::Lead => return Direction::Lead,
                SlotState::Insert(_) => {
                    let SlotState::Insert(ticket) =
                        std::mem::replace(&mut *state, SlotState::Inserting)
                    else {
                        unreachable!("matched Insert above");
                    };
                    return Direction::Insert(ticket);
                }
                SlotState::Done(_) => {
                    let SlotState::Done(result) =
                        std::mem::replace(&mut *state, SlotState::Finished)
                    else {
                        unreachable!("matched Done above");
                    };
                    return Direction::Done(result);
                }
                SlotState::Finished => {
                    unreachable!("a slot's result is consumed exactly once")
                }
            }
        }
    }

    /// Leader→follower: the WAL phase succeeded, apply your inserts.
    pub(crate) fn begin_insert(&self, ticket: InsertTicket) {
        *self.state.lock().expect("slot lock poisoned") = SlotState::Insert(ticket);
        self.wake.notify_one();
    }

    /// Leader→follower: final result (after `last_seqno` is published, on
    /// success; immediately, on a group-wide failure).
    pub(crate) fn finish(&self, result: Result<SeqNo>) {
        *self.state.lock().expect("slot lock poisoned") = SlotState::Done(result);
        self.wake.notify_one();
    }

    fn promote(&self) {
        *self.state.lock().expect("slot lock poisoned") = SlotState::Lead;
        self.wake.notify_one();
    }
}

#[derive(Default)]
struct CommitQueue {
    pending: VecDeque<Arc<WriterSlot>>,
    /// `true` while some writer holds leadership (it may not be in `pending`).
    leader_active: bool,
}

/// The pending-writers queue and leadership token.
#[derive(Default)]
pub(crate) struct Committer {
    queue: Mutex<CommitQueue>,
}

impl Committer {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Registers a writer. Returns its slot and whether it is the leader: a
    /// leader must call `lead` logic and then [`handoff`](Self::handoff); a
    /// follower parks on [`WriterSlot::wait_for_direction`].
    pub(crate) fn join(&self, batch: WriteBatch, opts: WriteOptions) -> (Arc<WriterSlot>, bool) {
        let slot = WriterSlot::new(batch, opts);
        let mut queue = self.queue.lock().expect("commit queue poisoned");
        if queue.leader_active {
            queue.pending.push_back(Arc::clone(&slot));
            (slot, false)
        } else {
            queue.leader_active = true;
            (slot, true)
        }
    }

    /// Moves queued writers into `group` until it reaches `max_batches` batches
    /// or adding the next batch would push the summed key+value bytes past
    /// `max_bytes`. The leader's own batch (already in `group`) always counts.
    pub(crate) fn drain(
        &self,
        group: &mut Vec<Arc<WriterSlot>>,
        max_batches: usize,
        max_bytes: usize,
    ) {
        let mut queue = self.queue.lock().expect("commit queue poisoned");
        let mut bytes: usize = group.iter().map(|slot| slot.batch.approximate_size()).sum();
        while group.len() < max_batches {
            let Some(front) = queue.pending.front() else { break };
            let front_bytes = front.batch.approximate_size();
            if bytes.saturating_add(front_bytes) > max_bytes {
                break;
            }
            bytes += front_bytes;
            let slot = queue.pending.pop_front().expect("front observed above");
            group.push(slot);
        }
    }

    /// Releases leadership: promotes the oldest waiting writer to leader, or
    /// clears the leadership token if the queue is empty.
    pub(crate) fn handoff(&self) {
        let mut queue = self.queue.lock().expect("commit queue poisoned");
        if let Some(next) = queue.pending.pop_front() {
            // Leadership transfers directly; `leader_active` stays set. The
            // promoted writer re-drains the queue itself (including any writers
            // that arrived since this drain).
            next.promote();
        } else {
            queue.leader_active = false;
        }
    }
}

impl std::fmt::Debug for Committer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let queue = self.queue.lock().expect("commit queue poisoned");
        f.debug_struct("Committer")
            .field("pending", &queue.pending.len())
            .field("leader_active", &queue.leader_active)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch_of(bytes: usize) -> WriteBatch {
        let mut batch = WriteBatch::new();
        batch.put(b"k".to_vec(), vec![0u8; bytes.saturating_sub(1)]);
        batch
    }

    #[test]
    fn first_joiner_leads_followers_queue() {
        let committer = Committer::new();
        let (_leader, is_leader) = committer.join(batch_of(8), WriteOptions::default());
        assert!(is_leader);
        let (_follower, follows) = committer.join(batch_of(8), WriteOptions::default());
        assert!(!follows);
    }

    #[test]
    fn drain_respects_batch_and_byte_caps() {
        let committer = Committer::new();
        let (leader, _) = committer.join(batch_of(10), WriteOptions::default());
        for _ in 0..5 {
            committer.join(batch_of(10), WriteOptions::default());
        }
        let mut group = vec![leader];
        committer.drain(&mut group, 3, usize::MAX);
        assert_eq!(group.len(), 3, "batch cap limits the group");
        let mut rest = vec![group.pop().unwrap()];
        committer.drain(&mut rest, usize::MAX, 25);
        // 10 bytes already in the group; only one more 10-byte batch fits under 25.
        assert_eq!(rest.len(), 2, "byte cap limits the group");
    }

    #[test]
    fn handoff_promotes_in_fifo_order_and_clears_when_idle() {
        let committer = Committer::new();
        let (_leader, _) = committer.join(batch_of(4), WriteOptions::default());
        let (second, _) = committer.join(batch_of(4), WriteOptions::default());
        committer.handoff();
        // The second writer was promoted; its thread would observe Lead.
        match second.wait_for_direction() {
            Direction::Lead => {}
            _ => panic!("expected promotion to leader"),
        }
        // Queue now empty: hand-off clears the token so the next joiner leads.
        committer.handoff();
        let (_third, leads) = committer.join(batch_of(4), WriteOptions::default());
        assert!(leads, "leadership token must clear when the queue drains");
    }

    #[test]
    fn barrier_waits_for_every_member() {
        let barrier = InsertBarrier::new(3);
        let waiter = {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || barrier.wait_drained())
        };
        for _ in 0..3 {
            barrier.arrive();
        }
        waiter.join().unwrap();
    }
}
