//! Snapshot retention: which superseded versions must stay reachable.
//!
//! TRIAD's memory component absorbs updates *in place* — one slot per key — so
//! without help an MVCC snapshot could never read a key that was overwritten
//! after the snapshot was taken: the old version would simply be gone from
//! memory. The [`SnapshotRetention`] registry closes that gap. Every open
//! snapshot registers its sequence number here; the memtable consults the
//! registry on every overwrite and, when some open snapshot can still see the
//! version about to be shadowed, preserves it on the slot's prior-version list
//! instead of discarding it.
//!
//! The registry keeps two relaxed atomics mirroring the open set, so the write
//! path pays one atomic load per overwrite (and zero extra work when no
//! snapshot is open, the overwhelmingly common case):
//!
//! * [`max_open`](SnapshotRetention::max_open) — the *newest* open snapshot
//!   (0 when none). A shadowed version with `seqno <= max_open` may be needed
//!   by some snapshot and must be retained.
//! * [`oldest_open`](SnapshotRetention::oldest_open) — the *oldest* open
//!   snapshot ([`u64::MAX`] when none). A retained version whose *successor*
//!   is already visible to even the oldest snapshot can never be read again
//!   and is pruned.
//!
//! Registration is serialized against memtable inserts by the engine (the
//! commit gate / WAL lock), so an insert can never observe a registry that is
//! missing a just-opened snapshot. Deregistration may race inserts freely:
//! stale atomics only ever err toward retaining *more*, never less.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::types::SeqNo;

/// Registry of open snapshot sequence numbers, with lock-free visibility
/// bounds for the write path. See the module docs for the retention protocol.
#[derive(Debug, Default)]
pub struct SnapshotRetention {
    /// Open snapshot seqnos with reference counts (two snapshots may share a
    /// seqno).
    open: Mutex<BTreeMap<SeqNo, usize>>,
    /// Largest open snapshot seqno; 0 when none is open.
    max_open: AtomicU64,
    /// Smallest open snapshot seqno; `u64::MAX` when none is open.
    oldest_open: AtomicU64,
}

impl SnapshotRetention {
    /// Creates an empty registry (no snapshots open).
    pub fn new() -> Self {
        SnapshotRetention {
            open: Mutex::new(BTreeMap::new()),
            max_open: AtomicU64::new(0),
            oldest_open: AtomicU64::new(u64::MAX),
        }
    }

    /// Registers an open snapshot at `seqno`. Callers must serialize this
    /// against memtable inserts (the engine holds the commit gate exclusively)
    /// so retention can never miss a freshly opened snapshot.
    pub fn register(&self, seqno: SeqNo) {
        let mut open = self.open.lock();
        *open.entry(seqno).or_insert(0) += 1;
        self.publish_bounds(&open);
    }

    /// Removes one registration of `seqno` (snapshot dropped). May race
    /// inserts: a stale bound only retains more than necessary.
    ///
    /// Returns `true` when the visibility bounds moved — some retained prior
    /// versions may have just become unreachable, so the caller should sweep
    /// its memory component with [`oldest_open`](Self::oldest_open) /
    /// [`max_open`](Self::max_open) instead of waiting for the slot's next
    /// overwrite or flush.
    pub fn deregister(&self, seqno: SeqNo) -> bool {
        let mut open = self.open.lock();
        if let Some(count) = open.get_mut(&seqno) {
            *count -= 1;
            if *count == 0 {
                open.remove(&seqno);
            }
        }
        let before = (self.max_open(), self.oldest_open());
        self.publish_bounds(&open);
        before != (self.max_open(), self.oldest_open())
    }

    fn publish_bounds(&self, open: &BTreeMap<SeqNo, usize>) {
        let max = open.keys().next_back().copied().unwrap_or(0);
        let min = open.keys().next().copied().unwrap_or(u64::MAX);
        self.max_open.store(max, Ordering::Relaxed);
        self.oldest_open.store(min, Ordering::Relaxed);
    }

    /// The newest open snapshot seqno, or 0 when none is open. A version being
    /// shadowed must be retained iff its seqno is `<= max_open()`.
    pub fn max_open(&self) -> SeqNo {
        self.max_open.load(Ordering::Relaxed)
    }

    /// The oldest open snapshot seqno, or `u64::MAX` when none is open. A
    /// retained version whose successor's seqno is `<= oldest_open()` is dead.
    pub fn oldest_open(&self) -> SeqNo {
        self.oldest_open.load(Ordering::Relaxed)
    }

    /// Number of distinct seqnos currently registered (diagnostics).
    pub fn open_count(&self) -> usize {
        self.open.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_registry_retains_nothing() {
        let retention = SnapshotRetention::new();
        assert_eq!(retention.max_open(), 0);
        assert_eq!(retention.oldest_open(), u64::MAX);
        assert_eq!(retention.open_count(), 0);
    }

    #[test]
    fn bounds_track_the_open_set() {
        let retention = SnapshotRetention::new();
        retention.register(10);
        retention.register(25);
        retention.register(17);
        assert_eq!(retention.max_open(), 25);
        assert_eq!(retention.oldest_open(), 10);
        assert_eq!(retention.open_count(), 3);

        retention.deregister(10);
        assert_eq!(retention.oldest_open(), 17);
        retention.deregister(25);
        assert_eq!(retention.max_open(), 17);
        retention.deregister(17);
        assert_eq!(retention.max_open(), 0);
        assert_eq!(retention.oldest_open(), u64::MAX);
    }

    #[test]
    fn duplicate_seqnos_are_reference_counted() {
        let retention = SnapshotRetention::new();
        retention.register(5);
        retention.register(5);
        retention.deregister(5);
        assert_eq!(retention.max_open(), 5, "one registration of seqno 5 is still open");
        retention.deregister(5);
        assert_eq!(retention.max_open(), 0);
    }

    #[test]
    fn deregistering_unknown_seqno_is_a_no_op() {
        let retention = SnapshotRetention::new();
        retention.register(3);
        assert!(!retention.deregister(99), "unknown seqno cannot move the bounds");
        assert_eq!(retention.max_open(), 3);
    }

    #[test]
    fn deregister_reports_whether_the_bounds_moved() {
        let retention = SnapshotRetention::new();
        retention.register(5);
        retention.register(5);
        retention.register(9);
        assert!(!retention.deregister(5), "a refcounted duplicate keeps both bounds");
        assert!(retention.deregister(5), "the oldest bound moves to 9");
        assert!(retention.deregister(9), "the registry empties: both bounds reset");
        assert_eq!(retention.max_open(), 0);
        assert_eq!(retention.oldest_open(), u64::MAX);
    }
}
