//! Property-based tests for the on-disk substrates: commit log, SSTables, bloom
//! filters, HyperLogLog and merge iterators.

use proptest::prelude::*;

use triad_common::types::{Entry, InternalKey, ValueKind};
use triad_hll::HyperLogLog;
use triad_sstable::{
    BloomFilter, DedupIterator, MergingIterator, SortedTable, Table, TableBuilder,
    TableBuilderOptions,
};
use triad_wal::{LogReader, LogRecord, LogWriter};

fn unique_path(tag: &str, ext: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!("triad-comp-prop-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}-{}.{ext}", COUNTER.fetch_add(1, Ordering::Relaxed)))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

    /// Every record appended to a commit log is recovered verbatim, in order, and is
    /// addressable by the offset returned at append time.
    fn wal_round_trips_arbitrary_records(
        records in proptest::collection::vec(
            (any::<bool>(), proptest::collection::vec(any::<u8>(), 0..40), proptest::collection::vec(any::<u8>(), 0..200)),
            1..60,
        )
    ) {
        let path = unique_path("wal", "log");
        let mut writer = LogWriter::create(&path, 1).unwrap();
        let mut offsets = Vec::new();
        let mut expected = Vec::new();
        for (i, (is_put, key, value)) in records.iter().enumerate() {
            let seqno = i as u64 + 1;
            let record = if *is_put {
                LogRecord::put(seqno, key.clone(), value.clone())
            } else {
                LogRecord::delete(seqno, key.clone())
            };
            offsets.push(writer.append(&record).unwrap());
            expected.push(record);
        }
        writer.seal().unwrap();
        let reader = LogReader::open(&path).unwrap();
        let (recovered, tail) = reader.recover().unwrap();
        prop_assert_eq!(tail, triad_wal::TailStatus::Clean);
        prop_assert_eq!(recovered.len(), expected.len());
        for ((got, offset), want) in recovered.iter().zip(offsets.iter()).zip(expected.iter()) {
            prop_assert_eq!(&got.record, want);
            prop_assert_eq!(got.offset, *offset);
            let direct = reader.read_at(*offset).unwrap();
            prop_assert_eq!(&direct, want);
        }
        std::fs::remove_file(&path).ok();
    }

    /// An SSTable built from any sorted map returns exactly the stored entries, both
    /// through point lookups and through full iteration.
    fn sstable_round_trips_sorted_maps(
        map in proptest::collection::btree_map(
            proptest::collection::vec(any::<u8>(), 1..24),
            proptest::collection::vec(any::<u8>(), 0..120),
            1..150,
        )
    ) {
        let path = unique_path("sst", "sst");
        let options = TableBuilderOptions { block_size: 512, bloom_bits_per_key: 10 };
        let mut builder = TableBuilder::create(&path, options).unwrap();
        for (i, (key, value)) in map.iter().enumerate() {
            let ikey = InternalKey::new(key.clone(), i as u64 + 1, ValueKind::Put);
            builder.add(&ikey, value).unwrap();
        }
        let (props, _) = builder.finish().unwrap();
        prop_assert_eq!(props.num_entries, map.len() as u64);

        let table = Table::open(&path, None).unwrap();
        for (key, value) in &map {
            let entry = table.get_entry(key, u64::MAX).unwrap().expect("present key");
            prop_assert_eq!(&entry.value, value);
        }
        // A key that is not in the map is never returned.
        let absent = b"\xff\xff\xff\xff\xff absent".to_vec();
        if !map.contains_key(&absent) {
            prop_assert!(table.get_entry(&absent, u64::MAX).unwrap().is_none());
        }
        let all: Vec<Entry> = SortedTable::entries(&table).unwrap().map(|r| r.unwrap()).collect();
        prop_assert_eq!(all.len(), map.len());
        for (entry, (key, value)) in all.iter().zip(map.iter()) {
            prop_assert_eq!(&entry.key.user_key, key);
            prop_assert_eq!(&entry.value, value);
        }
        std::fs::remove_file(&path).ok();
    }

    /// Bloom filters never produce false negatives.
    fn bloom_filters_have_no_false_negatives(
        keys in proptest::collection::hash_set(proptest::collection::vec(any::<u8>(), 0..32), 1..400),
        bits in 4usize..16,
    ) {
        let key_vec: Vec<Vec<u8>> = keys.into_iter().collect();
        let filter = BloomFilter::build(key_vec.iter().map(|k| k.as_slice()), bits);
        for key in &key_vec {
            prop_assert!(filter.may_contain(key));
        }
        let restored = BloomFilter::from_bytes(&filter.to_bytes()).unwrap();
        for key in &key_vec {
            prop_assert!(restored.may_contain(key));
        }
    }

    /// HyperLogLog estimates stay within a generous error bound and merging two
    /// sketches never under-counts either input.
    fn hll_estimates_are_bounded(
        a in proptest::collection::hash_set(any::<u64>(), 1..3_000),
        b in proptest::collection::hash_set(any::<u64>(), 1..3_000),
    ) {
        let mut sketch_a = HyperLogLog::new();
        for item in &a {
            sketch_a.add(&item.to_le_bytes());
        }
        let mut sketch_b = HyperLogLog::new();
        for item in &b {
            sketch_b.add(&item.to_le_bytes());
        }
        let err_a = (sketch_a.estimate() - a.len() as f64).abs() / a.len() as f64;
        prop_assert!(err_a < 0.15, "estimate error {err_a} too large for {} items", a.len());

        let mut merged = sketch_a.clone();
        merged.merge(&sketch_b).unwrap();
        let union: std::collections::HashSet<u64> = a.union(&b).copied().collect();
        let err_union = (merged.estimate() - union.len() as f64).abs() / union.len() as f64;
        prop_assert!(err_union < 0.15, "union estimate error {err_union} too large");
        // The union estimate is never dramatically below the larger input.
        let floor = (a.len().max(b.len()) as f64) * 0.8;
        prop_assert!(merged.estimate() >= floor);
    }

    /// Merging sorted runs and deduplicating yields the newest version of every key —
    /// the invariant compaction relies on.
    fn merge_dedup_keeps_the_newest_version(
        runs in proptest::collection::vec(
            proptest::collection::btree_map(0u16..200, proptest::collection::vec(any::<u8>(), 0..16), 0..60),
            1..5,
        )
    ) {
        // Assign seqnos so that later runs are newer, then build per-run sorted entry lists.
        let mut expected: std::collections::BTreeMap<u16, (u64, Vec<u8>)> = std::collections::BTreeMap::new();
        let mut sources: Vec<Vec<Entry>> = Vec::new();
        let mut seqno = 0u64;
        for run in &runs {
            let mut entries = Vec::new();
            for (key, value) in run {
                seqno += 1;
                entries.push(Entry::put(format!("k{key:05}").into_bytes(), value.clone(), seqno));
                let newer = expected.get(key).map(|(s, _)| *s < seqno).unwrap_or(true);
                if newer {
                    expected.insert(*key, (seqno, value.clone()));
                }
            }
            entries.sort_by(|a, b| a.key.cmp(&b.key));
            sources.push(entries);
        }
        // Newest runs must be listed first for the dedup convention.
        sources.reverse();
        let iters: Vec<_> = sources
            .into_iter()
            .map(|entries| Box::new(entries.into_iter().map(Ok)) as triad_sstable::EntryIter)
            .collect();
        let merged = MergingIterator::new(iters).unwrap();
        let result: Vec<Entry> = DedupIterator::new(Box::new(merged), false).map(|r| r.unwrap()).collect();
        prop_assert_eq!(result.len(), expected.len());
        for (entry, (key, (seqno, value))) in result.iter().zip(expected.iter()) {
            prop_assert_eq!(&entry.key.user_key, &format!("k{key:05}").into_bytes());
            prop_assert_eq!(entry.key.seqno, *seqno);
            prop_assert_eq!(&entry.value, value);
        }
    }
}
