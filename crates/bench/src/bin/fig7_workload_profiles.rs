//! Prints the production workload profiles substituted for Figures 7 and 8.

use triad_bench::experiments::fig7_profiles;
use triad_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    fig7_profiles::run(scale).expect("figure 7/8 report failed");
}
