//! Workload generation for the TRIAD evaluation.
//!
//! The paper evaluates TRIAD with two families of workloads:
//!
//! * **Synthetic** workloads (§5.3) parameterised by skew — WS1 (1% of the keys
//!   receive 99% of the accesses), WS2 (20%/80%) and WS3 (uniform) — and by
//!   read/write mix (10%/90% and 50%/50%), with 8-byte keys and 255-byte values.
//! * **Production** workloads (§5.2) — four Nutanix metadata workloads W1–W4 whose
//!   key-popularity distributions are published in Figure 7 and whose sizes appear in
//!   Figure 8. We do not have the traces, so [`production`] provides synthetic
//!   profiles fit to the published shapes (see `DESIGN.md` §4 for the substitution
//!   rationale).
//!
//! The crate is deliberately deterministic: every generator is seeded, so a given
//! `(spec, seed, thread)` triple always produces the same operation stream, which
//! keeps experiments reproducible and lets tests assert exact behaviour.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod generator;
pub mod mix;
pub mod production;
pub mod scenario;
pub mod zipf;

pub use dist::KeyDistribution;
pub use generator::{Operation, WorkloadGenerator, WorkloadSpec};
pub use mix::OperationMix;
pub use production::{ProductionProfile, ProductionWorkload};
pub use scenario::{
    stream_checksum, ArrivalProcess, HotSetDrift, Scenario, ScenarioEvent, ScenarioMix, ScenarioOp,
    ScenarioOpKind, ScenarioStream,
};
pub use zipf::Zipfian;

/// Encodes a logical key index as a fixed-width key of `key_size` bytes.
///
/// Keys are zero-padded decimal strings so that lexicographic order matches numeric
/// order, which makes range behaviour predictable in tests and keeps key size
/// constant as the paper's experiments assume (8-byte keys by default).
pub fn encode_key(index: u64, key_size: usize) -> Vec<u8> {
    let digits = format!("{index}");
    let mut key = Vec::with_capacity(key_size.max(digits.len()));
    if digits.len() >= key_size {
        key.extend_from_slice(digits.as_bytes());
    } else {
        key.resize(key_size - digits.len(), b'0');
        key.extend_from_slice(digits.as_bytes());
    }
    key
}

/// Decodes a key produced by [`encode_key`] back to its logical index.
pub fn decode_key(key: &[u8]) -> Option<u64> {
    std::str::from_utf8(key).ok()?.trim_start_matches('0').parse().ok().or_else(|| {
        // An all-zero key decodes to index 0.
        if key.iter().all(|&b| b == b'0') && !key.is_empty() {
            Some(0)
        } else {
            None
        }
    })
}

/// Generates a deterministic value of `value_size` bytes for `(key_index, version)`.
///
/// The value embeds the key index and version so correctness tests can verify that
/// reads observe the latest acknowledged write.
pub fn encode_value(key_index: u64, version: u64, value_size: usize) -> Vec<u8> {
    let header = format!("k{key_index}v{version}:");
    let mut value = Vec::with_capacity(value_size.max(header.len()));
    value.extend_from_slice(header.as_bytes());
    let mut filler = key_index.wrapping_mul(6364136223846793005).wrapping_add(version);
    while value.len() < value_size {
        filler = filler.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        value.push((filler >> 33) as u8);
    }
    value.truncate(value_size.max(header.len()));
    value
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_encoding_is_fixed_width_and_ordered() {
        let a = encode_key(1, 8);
        let b = encode_key(2, 8);
        let c = encode_key(10, 8);
        assert_eq!(a.len(), 8);
        assert_eq!(a, b"00000001");
        assert!(a < b && b < c, "lexicographic order must follow numeric order");
        assert_eq!(decode_key(&a), Some(1));
        assert_eq!(decode_key(&c), Some(10));
        assert_eq!(decode_key(&encode_key(0, 8)), Some(0));
    }

    #[test]
    fn key_encoding_handles_overflowing_width() {
        let key = encode_key(123_456_789_012, 8);
        assert_eq!(key.len(), 12, "wide indexes expand past the nominal key size");
        assert_eq!(decode_key(&key), Some(123_456_789_012));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(decode_key(b"not-a-key"), None);
        assert_eq!(decode_key(b""), None);
    }

    #[test]
    fn values_have_requested_size_and_embed_identity() {
        let value = encode_value(42, 7, 255);
        assert_eq!(value.len(), 255);
        assert!(value.starts_with(b"k42v7:"));
        // Deterministic.
        assert_eq!(value, encode_value(42, 7, 255));
        // Different versions differ.
        assert_ne!(value, encode_value(42, 8, 255));
        // Tiny value sizes still embed the header.
        let tiny = encode_value(1, 1, 2);
        assert!(tiny.starts_with(b"k1v1:"));
    }
}
