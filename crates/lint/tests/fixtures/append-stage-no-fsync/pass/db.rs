// lint-fixture: crates/core/src/db.rs
// The append stage only encodes, appends and OS-flushes; durability happens
// elsewhere, so nothing here names a durable-sync call.

// PIPELINE-APPEND-STAGE-BEGIN
fn append_stage(&self) {
    let rel = encoder.add_parts(seqno, kind, key, value);
    let start = wal.writer.append_batch(encoder);
    wal.writer.flush();
}
// PIPELINE-APPEND-STAGE-END

// HOT-READ-NEWEST-BEGIN
fn hot_read(&self, key: &[u8]) {
    let hit = memtable.get(key, u64::MAX);
}
// HOT-READ-NEWEST-END
