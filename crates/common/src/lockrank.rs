//! Rank-checked lock wrappers: the dynamic backstop behind `triad-lint`'s
//! static `lock-order` rule.
//!
//! Every lock that participates in the engine's documented acquisition order
//! (see docs/ARCHITECTURE.md, "Enforced invariants") is wrapped in a
//! [`RankedMutex`] or [`RankedRwLock`] carrying a numeric rank and a name.
//! Under `debug_assertions` a thread-local stack records the ranks this
//! thread currently holds; acquiring a lock whose rank is not strictly
//! greater than every held rank panics with both lock names, turning a
//! latent deadlock into an immediate, attributable test failure. In release
//! builds the wrappers compile down to the underlying `parking_lot`
//! primitives with zero bookkeeping.
//!
//! The check runs *before* blocking on the lock, so a misordered acquisition
//! fails fast even when the other side of the would-be deadlock never runs.
//! Guards release their rank when dropped, including out-of-order drops
//! (`drop(wal)` while the commit gate stays held), which the engine's
//! pipelined commit relies on.
//!
//! Ranks are spaced by tens so new locks can slot between existing ones
//! without renumbering; equal ranks are rejected (no two ranked locks may
//! nest in either order). The one sanctioned exception is a scoped,
//! per-thread [`allow_equal_rank`] allowance: a coordinator that must hold
//! the *same* lock of every shard at once (the shard-spanning snapshot gate)
//! opens a scope for that rank and acquires the locks in a canonical
//! external order (shard index). Lower-than-held acquisitions still panic
//! inside the scope, so real inversions stay fatal.

use parking_lot::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::fmt;
use std::ops::{Deref, DerefMut};

#[cfg(debug_assertions)]
mod tracking {
    use std::cell::RefCell;
    use std::sync::atomic::{AtomicU64, Ordering};

    thread_local! {
        /// (token id, rank, lock name) per lock currently held by this thread.
        static HELD: RefCell<Vec<(u64, u32, &'static str)>> =
            const { RefCell::new(Vec::new()) };
        /// Ranks with an open equal-rank allowance (one entry per open scope).
        static EQUAL_OK: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
    }

    static NEXT_TOKEN: AtomicU64 = AtomicU64::new(1);

    /// Opens an equal-rank allowance for `rank` on this thread.
    pub(super) fn push_equal_allowance(rank: u32) {
        EQUAL_OK.with(|ranks| ranks.borrow_mut().push(rank));
    }

    /// Closes the most recent allowance for `rank`.
    pub(super) fn pop_equal_allowance(rank: u32) {
        EQUAL_OK.with(|ranks| {
            let mut ranks = ranks.borrow_mut();
            if let Some(pos) = ranks.iter().rposition(|&r| r == rank) {
                ranks.remove(pos);
            }
        });
    }

    /// Proof that a ranked lock is held; removing it from the thread-local
    /// stack on drop keeps the stack accurate across out-of-order releases.
    #[derive(Debug)]
    pub(super) struct RankToken {
        id: u64,
    }

    /// Panics if `rank` is not strictly greater than every rank this thread
    /// already holds — unless the acquisition is exactly *equal* to the top
    /// rank and an [`push_equal_allowance`] scope for that rank is open.
    /// Called before blocking on the lock.
    pub(super) fn check(rank: u32, name: &'static str) {
        HELD.with(|held| {
            let held = held.borrow();
            if let Some(&(_, top_rank, top_name)) = held.iter().max_by_key(|e| e.1) {
                if rank == top_rank && EQUAL_OK.with(|ranks| ranks.borrow().contains(&rank)) {
                    return;
                }
                assert!(
                    rank > top_rank,
                    "lock-rank violation: acquiring `{name}` (rank {rank}) while holding \
                     `{top_name}` (rank {top_rank}); ranked locks must be taken in strictly \
                     increasing rank order (see docs/ARCHITECTURE.md, \"Enforced invariants\")"
                );
            }
        });
    }

    /// Records the lock as held; call after the underlying acquisition
    /// succeeds.
    pub(super) fn register(rank: u32, name: &'static str) -> RankToken {
        let id = NEXT_TOKEN.fetch_add(1, Ordering::Relaxed);
        HELD.with(|held| held.borrow_mut().push((id, rank, name)));
        RankToken { id }
    }

    impl Drop for RankToken {
        fn drop(&mut self) {
            HELD.with(|held| {
                let mut held = held.borrow_mut();
                if let Some(pos) = held.iter().position(|e| e.0 == self.id) {
                    held.remove(pos);
                }
            });
        }
    }
}

#[cfg(not(debug_assertions))]
mod tracking {
    /// Zero-sized stand-in: release builds do no rank bookkeeping.
    #[derive(Debug)]
    pub(super) struct RankToken;

    #[inline(always)]
    pub(super) fn check(_rank: u32, _name: &'static str) {}

    #[inline(always)]
    pub(super) fn register(_rank: u32, _name: &'static str) -> RankToken {
        RankToken
    }

    #[inline(always)]
    pub(super) fn push_equal_allowance(_rank: u32) {}

    #[inline(always)]
    pub(super) fn pop_equal_allowance(_rank: u32) {}
}

use tracking::RankToken;

/// Scoped permission for this thread to stack ranked locks of one *equal*
/// rank; returned by [`allow_equal_rank`] and revoked on drop.
#[derive(Debug)]
#[must_use = "the allowance ends when the scope is dropped"]
pub struct EqualRankScope {
    rank: u32,
}

/// Grants the current thread permission to acquire several ranked locks of
/// the same rank `rank` while the returned scope is alive.
///
/// This exists for the one place the engine legitimately holds "the same"
/// lock of many shards at once: the shard-spanning snapshot gate, which
/// drains every shard's commit pipeline by taking each shard's WAL lock and
/// then each shard's commit gate, always in shard-index order. The caller is
/// responsible for that canonical external order — the allowance only
/// relaxes the equality check, so acquiring a rank *below* a held rank still
/// panics inside the scope.
pub fn allow_equal_rank(rank: u32) -> EqualRankScope {
    tracking::push_equal_allowance(rank);
    EqualRankScope { rank }
}

impl Drop for EqualRankScope {
    fn drop(&mut self) {
        tracking::pop_equal_allowance(self.rank);
    }
}

/// A `parking_lot::Mutex` that asserts rank-ordered acquisition under
/// `debug_assertions`.
pub struct RankedMutex<T> {
    rank: u32,
    name: &'static str,
    inner: Mutex<T>,
}

impl<T> RankedMutex<T> {
    /// Wraps `value` in a mutex holding position `rank` in the global lock
    /// order; `name` appears in violation panics and must be unique enough
    /// to identify the lock.
    pub fn new(rank: u32, name: &'static str, value: T) -> Self {
        Self { rank, name, inner: Mutex::new(value) }
    }

    /// Acquires the mutex, panicking first (debug builds) if a lock of equal
    /// or higher rank is already held by this thread.
    pub fn lock(&self) -> RankedMutexGuard<'_, T> {
        tracking::check(self.rank, self.name);
        let guard = self.inner.lock();
        let token = tracking::register(self.rank, self.name);
        RankedMutexGuard { guard, _token: token }
    }

    /// Non-blocking acquisition. A `try_lock` cannot deadlock, but a success
    /// still registers the rank (and is checked) so locks taken while it is
    /// held stay ordered.
    pub fn try_lock(&self) -> Option<RankedMutexGuard<'_, T>> {
        tracking::check(self.rank, self.name);
        let guard = self.inner.try_lock()?;
        let token = tracking::register(self.rank, self.name);
        Some(RankedMutexGuard { guard, _token: token })
    }

    /// Mutable access without locking (requires `&mut self`, so no rank
    /// bookkeeping is needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }

    /// The lock's position in the global acquisition order.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// The name reported in violation panics.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl<T: fmt::Debug> fmt::Debug for RankedMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RankedMutex")
            .field("rank", &self.rank)
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

/// Guard returned by [`RankedMutex::lock`]; releases the rank when dropped.
#[derive(Debug)]
pub struct RankedMutexGuard<'a, T> {
    // Declared first so the lock is released before the rank is popped.
    guard: MutexGuard<'a, T>,
    _token: RankToken,
}

impl<T> Deref for RankedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> DerefMut for RankedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// A `parking_lot::RwLock` that asserts rank-ordered acquisition under
/// `debug_assertions`.
///
/// Readers and writers share one rank: a read acquisition while a lock of
/// equal or higher rank is held is just as much an ordering bug as a write,
/// because the writer on the other side of the inversion blocks either way.
pub struct RankedRwLock<T> {
    rank: u32,
    name: &'static str,
    inner: RwLock<T>,
}

impl<T> RankedRwLock<T> {
    /// Wraps `value` in an rwlock holding position `rank` in the global lock
    /// order; `name` appears in violation panics.
    pub fn new(rank: u32, name: &'static str, value: T) -> Self {
        Self { rank, name, inner: RwLock::new(value) }
    }

    /// Acquires a shared read guard, checking the rank first (debug builds).
    pub fn read(&self) -> RankedRwLockReadGuard<'_, T> {
        tracking::check(self.rank, self.name);
        let guard = self.inner.read();
        let token = tracking::register(self.rank, self.name);
        RankedRwLockReadGuard { guard, _token: token }
    }

    /// Acquires an exclusive write guard, checking the rank first (debug
    /// builds).
    pub fn write(&self) -> RankedRwLockWriteGuard<'_, T> {
        tracking::check(self.rank, self.name);
        let guard = self.inner.write();
        let token = tracking::register(self.rank, self.name);
        RankedRwLockWriteGuard { guard, _token: token }
    }

    /// Non-blocking read acquisition; a success registers the rank.
    pub fn try_read(&self) -> Option<RankedRwLockReadGuard<'_, T>> {
        tracking::check(self.rank, self.name);
        let guard = self.inner.try_read()?;
        let token = tracking::register(self.rank, self.name);
        Some(RankedRwLockReadGuard { guard, _token: token })
    }

    /// Non-blocking write acquisition; a success registers the rank.
    pub fn try_write(&self) -> Option<RankedRwLockWriteGuard<'_, T>> {
        tracking::check(self.rank, self.name);
        let guard = self.inner.try_write()?;
        let token = tracking::register(self.rank, self.name);
        Some(RankedRwLockWriteGuard { guard, _token: token })
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }

    /// Consumes the rwlock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }

    /// The lock's position in the global acquisition order.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// The name reported in violation panics.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl<T: fmt::Debug> fmt::Debug for RankedRwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RankedRwLock")
            .field("rank", &self.rank)
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

/// Shared guard returned by [`RankedRwLock::read`].
#[derive(Debug)]
pub struct RankedRwLockReadGuard<'a, T> {
    guard: RwLockReadGuard<'a, T>,
    _token: RankToken,
}

impl<T> Deref for RankedRwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

/// Exclusive guard returned by [`RankedRwLock::write`].
#[derive(Debug)]
pub struct RankedRwLockWriteGuard<'a, T> {
    guard: RwLockWriteGuard<'a, T>,
    _token: RankToken,
}

impl<T> Deref for RankedRwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> DerefMut for RankedRwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_acquisition_is_allowed() {
        let low = RankedMutex::new(10, "low", 1u32);
        let high = RankedRwLock::new(20, "high", 2u32);
        let a = low.lock();
        let b = high.read();
        assert_eq!(*a + *b, 3);
    }

    #[test]
    fn rank_is_released_on_drop() {
        let low = RankedMutex::new(10, "low", ());
        let high = RankedMutex::new(20, "high", ());
        {
            let _g = high.lock();
        }
        // `high` was released, so taking `low` afterwards is fine.
        let _g = low.lock();
    }

    #[test]
    fn out_of_order_release_keeps_stack_accurate() {
        let wal = RankedMutex::new(10, "wal", ());
        let gate = RankedRwLock::new(20, "gate", ());
        let mid = RankedMutex::new(15, "mid", ());
        let w = wal.lock();
        let g = gate.write();
        // Release the *lower*-ranked lock first (the pipelined-commit shape):
        // the gate's rank must survive the wal token's removal.
        drop(w);
        drop(g);
        let _m = mid.lock();
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock-rank violation")]
    fn misordered_acquisition_panics() {
        let low = RankedMutex::new(10, "low", ());
        let high = RankedRwLock::new(20, "high", ());
        let _g = high.write();
        let _violation = low.lock();
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock-rank violation")]
    fn equal_rank_nesting_panics() {
        let a = RankedMutex::new(10, "a", ());
        let b = RankedMutex::new(10, "b", ());
        let _g = a.lock();
        let _violation = b.lock();
    }

    #[test]
    fn equal_rank_scope_permits_same_rank_stacking() {
        // The shard-spanning snapshot shape: all shards' WAL locks, then all
        // shards' commit gates, each tier under its own allowance.
        let wal_a = RankedMutex::new(10, "wal_a", ());
        let wal_b = RankedMutex::new(10, "wal_b", ());
        let gate_a = RankedRwLock::new(20, "gate_a", ());
        let gate_b = RankedRwLock::new(20, "gate_b", ());
        let _allow_wal = allow_equal_rank(10);
        let _wa = wal_a.lock();
        let _wb = wal_b.lock();
        let _allow_gate = allow_equal_rank(20);
        let _ga = gate_a.write();
        let _gb = gate_b.write();
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock-rank violation")]
    fn equal_rank_scope_expires_on_drop() {
        let a = RankedMutex::new(10, "a", ());
        let b = RankedMutex::new(10, "b", ());
        {
            let _allow = allow_equal_rank(10);
        }
        let _g = a.lock();
        let _violation = b.lock();
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock-rank violation")]
    fn equal_rank_scope_does_not_permit_lower_ranks() {
        let low = RankedMutex::new(10, "low", ());
        let high = RankedRwLock::new(20, "high", ());
        let _allow = allow_equal_rank(10);
        let _g = high.write();
        let _violation = low.lock();
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = RankedMutex::new(10, "m", 7u32);
        let g = m.lock();
        // Same thread, same lock: the vendored stand-in delegates to std,
        // where a second try_lock on a held mutex fails rather than blocks —
        // but the rank check fires first in debug builds, so only probe from
        // another thread.
        std::thread::scope(|s| {
            s.spawn(|| {
                assert!(m.try_lock().is_none());
            });
        });
        assert_eq!(*g, 7);
    }
}
