// lint-fixture: crates/core/src/checkpoint.rs
//! A hard link escaped the CHECKPOINT-FS region: the checkpoint's on-disk
//! footprint is no longer auditable in one place.

use std::path::Path;

pub fn rogue_link(dir: &Path) -> std::io::Result<()> {
    std::fs::hard_link(dir.join("000001.sst"), dir.join("escaped.sst"))
}

// CHECKPOINT-FS-BEGIN: the sanctioned region.

fn finalize_target(dir: &Path) -> std::io::Result<()> {
    std::fs::remove_file(dir.join("CHECKPOINT-PENDING"))
}

// CHECKPOINT-FS-END
