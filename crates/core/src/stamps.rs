//! Cross-shard batch-stamp retention.
//!
//! A shard-spanning batch commits per shard, and recovery decides whether the
//! batch was complete by counting durable stamped slices (see
//! [`torn_batch_drops`](crate::db::torn_batch_drops)). That count is only
//! sound while every slice's stamped WAL record is still *on disk*: once a
//! shard flushes a slice into an SSTable, the stamp survives only in the
//! retired commit log — and if garbage collection deletes that log, a fully
//! acknowledged batch becomes indistinguishable from a torn one, and recovery
//! would drop the other shards' acknowledged slices.
//!
//! [`StampRetention`] closes that hole. Every shard of one database (primary
//! or replica) shares a single registry:
//!
//! * the commit paths call [`note_slice`](StampRetention::note_slice) when a
//!   stamped record is appended, recording which log holds the slice's
//!   evidence;
//! * flush calls [`note_graduated`](StampRetention::note_graduated) when it
//!   advances a shard's recovery horizon, marking every slice below the
//!   horizon as captured by the version chain;
//! * a failed cross-shard fan-out calls [`abandon`](StampRetention::abandon)
//!   so a batch that can never complete does not pin its logs forever;
//! * garbage collection asks [`retained_logs`](StampRetention::retained_logs)
//!   which logs still hold the last evidence of an unsettled batch and keeps
//!   them on disk (checkpoints capture them for the same reason).
//!
//! A batch **settles** — and its logs are released — once every noted slice
//! has graduated and either all `fanout` slices were noted (the batch
//! committed everywhere) or the fan-out was abandoned (it never will). The
//! registry is in-memory only: recovery reconstructs the same information by
//! reading the retained sub-horizon logs as evidence (see `Db::open`), after
//! which the startup sweep deletes them — every prior-epoch batch is resolved
//! by then, one way or the other.

use std::collections::{HashMap, HashSet};

use triad_common::lockrank::RankedMutex;
use triad_wal::BatchStamp;

use crate::db::lock_rank;

/// One noted slice: which shard committed it and which commit log holds its
/// stamped records.
struct SliceNote {
    shard: usize,
    log_id: u64,
    graduated: bool,
}

/// Everything known about one in-flight cross-shard batch.
struct BatchNote {
    fanout: u32,
    abandoned: bool,
    slices: Vec<SliceNote>,
}

impl BatchNote {
    /// A batch settles once nothing about it can change *and* no log is its
    /// last evidence: every noted slice graduated into the version chain, and
    /// either all `fanout` slices arrived or none ever will.
    fn settled(&self) -> bool {
        self.slices.iter().all(|slice| slice.graduated)
            && (self.slices.len() as u32 >= self.fanout || self.abandoned)
    }
}

/// Shared registry of in-flight cross-shard batches; see the module docs.
pub(crate) struct StampRetention {
    stamps: RankedMutex<HashMap<u64, BatchNote>>,
}

impl StampRetention {
    pub(crate) fn new() -> StampRetention {
        StampRetention { stamps: RankedMutex::new(lock_rank::STAMPS, "db.stamps", HashMap::new()) }
    }

    /// Records that `shard` appended `stamp`'s slice to commit log `log_id`.
    /// Idempotent per `(batch, shard)`: the first note wins, because the log
    /// it names is where the stamped record actually lives (later re-appends
    /// of the same entries — hot write-back, replica re-ships — carry no
    /// stamp).
    pub(crate) fn note_slice(&self, shard: usize, log_id: u64, stamp: &BatchStamp) {
        let mut stamps = self.stamps.lock();
        let note = stamps.entry(stamp.batch_id).or_insert_with(|| BatchNote {
            fanout: stamp.fanout,
            abandoned: false,
            slices: Vec::with_capacity(stamp.fanout as usize),
        });
        if note.slices.iter().any(|slice| slice.shard == shard) {
            return;
        }
        note.slices.push(SliceNote { shard, log_id, graduated: false });
    }

    /// Marks every slice `shard` committed to a log below `horizon` as
    /// graduated (a flush advanced the shard's recovery `log_number` to
    /// `horizon`, so the version chain now owns those records), and drops
    /// batches that settled as a result.
    pub(crate) fn note_graduated(&self, shard: usize, horizon: u64) {
        let mut stamps = self.stamps.lock();
        for note in stamps.values_mut() {
            for slice in &mut note.slices {
                if slice.shard == shard && slice.log_id < horizon {
                    slice.graduated = true;
                }
            }
        }
        stamps.retain(|_, note| !note.settled());
    }

    /// Marks `batch_id` as never-completing (its fan-out failed partway); the
    /// slices that did commit stop holding logs once they graduate. Recovery
    /// still sees the tear — a torn batch's drop decision never depended on
    /// retention, only a complete batch's survival does.
    pub(crate) fn abandon(&self, batch_id: u64) {
        let mut stamps = self.stamps.lock();
        let Some(note) = stamps.get_mut(&batch_id) else { return };
        note.abandoned = true;
        if note.settled() {
            stamps.remove(&batch_id);
        }
    }

    /// The commit logs on `shard` still holding the last evidence of an
    /// unsettled batch. Garbage collection must not delete these, and a
    /// checkpoint must capture them: without the stamped records a reopen
    /// cannot tell the batch committed everywhere.
    pub(crate) fn retained_logs(&self, shard: usize) -> HashSet<u64> {
        let stamps = self.stamps.lock();
        stamps
            .values()
            .flat_map(|note| note.slices.iter())
            .filter(|slice| slice.shard == shard)
            .map(|slice| slice.log_id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stamp(batch_id: u64, fanout: u32) -> BatchStamp {
        BatchStamp { batch_id, fanout, len: 1 }
    }

    #[test]
    fn logs_are_retained_until_every_slice_graduates() {
        let retention = StampRetention::new();
        retention.note_slice(0, 7, &stamp(1, 2));
        retention.note_slice(1, 9, &stamp(1, 2));
        assert!(retention.retained_logs(0).contains(&7));
        assert!(retention.retained_logs(1).contains(&9));

        // Shard 0 flushes: its log is still evidence (shard 1 hasn't graduated).
        retention.note_graduated(0, 8);
        assert!(retention.retained_logs(0).contains(&7));

        // Shard 1 flushes too: the batch settles, both logs release.
        retention.note_graduated(1, 10);
        assert!(retention.retained_logs(0).is_empty());
        assert!(retention.retained_logs(1).is_empty());
    }

    #[test]
    fn incomplete_batches_hold_until_abandoned() {
        let retention = StampRetention::new();
        retention.note_slice(0, 4, &stamp(3, 3));
        retention.note_graduated(0, 5);
        // One of three slices, graduated — without an abandon the batch could
        // still complete, so the evidence stays.
        assert!(retention.retained_logs(0).contains(&4));
        retention.abandon(3);
        assert!(retention.retained_logs(0).is_empty());
    }

    #[test]
    fn duplicate_notes_keep_the_first_log() {
        let retention = StampRetention::new();
        retention.note_slice(0, 4, &stamp(5, 2));
        retention.note_slice(0, 6, &stamp(5, 2));
        let logs = retention.retained_logs(0);
        assert!(logs.contains(&4));
        assert!(!logs.contains(&6));
    }
}
