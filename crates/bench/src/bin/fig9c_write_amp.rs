//! Regenerates Figure 9C (write amplification for the same grid as Figure 9B).

use triad_bench::experiments::grid;
use triad_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let points = grid::run_grid(scale).expect("figure 9C grid failed");
    grid::print_write_amplification(&points);
}
