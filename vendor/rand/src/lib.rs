//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! This workspace builds in environments without registry access, so the small
//! subset of the rand 0.8 API that TRIAD uses is reimplemented here on top of
//! deterministic, seedable PRNGs (SplitMix64 for seeding, xoshiro256++ for the
//! stream). The surface is intentionally tiny: [`Rng`], [`SeedableRng`] and
//! [`rngs::StdRng`]. Statistical quality is more than sufficient for workload
//! generation and tests; this is **not** a cryptographic generator.

#![forbid(unsafe_code)]

use core::ops::Range;

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits from the generator.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits from the generator.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from the full output of an RNG.
///
/// This plays the role of `rand::distributions::Standard` for the handful of
/// types the workspace draws with [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits, matching rand's convention.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Integer types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Sized {
    /// Draws one value uniformly from `[range.start, range.end)`.
    ///
    /// Panics when the range is empty, like `rand::Rng::gen_range`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as u128) - (range.start as u128);
                // Multiply-shift bounded sampling; bias is < 2^-64 and irrelevant here.
                let draw = ((rng.next_u64() as u128 * span) >> 64) as $t;
                range.start + draw
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = range.end.abs_diff(range.start) as u128;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as $u;
                range.start.wrapping_add(draw as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(i32 => u32, i64 => u64, isize => usize);

/// The user-facing random number generator trait, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from the half-open range `[start, end)`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Expands a 64-bit seed into well-mixed state words (Steele et al., SplitMix64).
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A deterministic, seedable generator standing in for `rand::rngs::StdRng`.
    ///
    /// Internally this is xoshiro256++ (Blackman & Vigna), which passes BigCrush
    /// and is far cheaper than the ChaCha construction real `StdRng` uses. All
    /// TRIAD call sites seed it explicitly, so determinism per seed is the only
    /// contract that matters.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero outputs in a row, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// A small, fast generator; alias of [`StdRng`] in this stand-in.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_is_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = rng.gen_range(0..3);
            assert!(y < 3);
        }
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }

    #[test]
    fn gen_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 16];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..16)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
