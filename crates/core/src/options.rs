//! Engine configuration.
//!
//! [`Options`] mirrors the knobs the paper's evaluation varies: the memtable size
//! (4 MB in the synthetic experiments), the L0 file limits, and — through
//! [`TriadConfig`] — which of the three TRIAD techniques are active. The baseline
//! "RocksDB" configuration of the paper corresponds to [`TriadConfig::baseline`];
//! the full system is [`TriadConfig::all_enabled`]. Each technique can be toggled
//! individually to reproduce the per-technique breakdown of Figures 10 and 11.

use triad_memtable::HotColdPolicy;

/// Durability mode of the commit log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncMode {
    /// Buffer appends in user space and flush to the OS on every write, but never
    /// `fsync`. Fastest; a crash of the machine (not just the process) may lose the
    /// most recent writes. This mirrors RocksDB's default (`sync = false`).
    NoSync,
    /// Flush and `fsync` the commit log on every write. Durable but slow.
    SyncEveryWrite,
    /// `fsync` the commit log every `n` writes.
    SyncEvery(u64),
}

/// Configuration of the group-commit write pipeline.
///
/// Concurrent writers hand their batches to a *leader* that appends the whole
/// group to the commit log with one buffered write and one flush/fsync, then all
/// group members insert into the sharded memtable in parallel, outside the WAL
/// lock. The caps bound how much one leader may absorb before it commits, keeping
/// tail latency in check under extreme fan-in.
///
/// With [`pipelined`](GroupCommitConfig::pipelined) set (the default), the commit
/// is further split into a short *append stage* and a decoupled *sync stage*
/// tracked by a durability watermark: group N+1's leader appends the moment
/// group N releases the append lock — while group N's fsync is still in flight —
/// and one fsync retires every group it covered. Clearing the flag keeps the
/// serial grouped commit (append + fsync under one lock hold) as an in-run
/// baseline for the write-scaling benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupCommitConfig {
    /// `false` selects the legacy serialized write path (every batch encoded,
    /// appended, counted and inserted under the WAL mutex, with its own
    /// flush/fsync). Kept as the in-run baseline for the write-scaling benchmark.
    pub enabled: bool,
    /// `true` overlaps group N+1's WAL append with group N's fsync (the append
    /// lock is never held across an fsync); `false` keeps the serial grouped
    /// commit of the previous generation. Ignored when `enabled` is `false`.
    pub pipelined: bool,
    /// Maximum number of write batches one commit group may carry.
    pub max_group_batches: usize,
    /// Maximum total key+value bytes one commit group may carry. The leader's own
    /// batch always joins regardless, so oversized single batches still commit.
    pub max_group_bytes: usize,
}

impl Default for GroupCommitConfig {
    fn default() -> Self {
        GroupCommitConfig {
            enabled: true,
            pipelined: true,
            max_group_batches: 64,
            max_group_bytes: 1024 * 1024,
        }
    }
}

/// Keyspace sharding: how many fully independent LSM shards live behind one
/// `Db` façade.
///
/// Each shard owns its own commit log, leader/follower pipeline, memtable,
/// version set, GC queue and background worker, in its own subdirectory. A
/// hash router sends every point op to exactly one shard, so the hot write
/// path has no cross-shard coordination; scans k-way-merge per-shard
/// iterators and snapshots span all shards under a brief global gate.
///
/// Multi-key batches that straddle shards commit atomically *per shard*: a
/// crash can persist the batch's effects on some shards and not others (a
/// snapshot taken through the live façade still observes whole batches —
/// see docs/ARCHITECTURE.md, "Sharding").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardConfig {
    /// Number of shards. `1` is the pre-sharding engine: identical behavior
    /// and byte-identical directory layout (no `SHARDS` marker, no
    /// subdirectories). The count is persisted on first open and must match
    /// on reopen.
    pub count: usize,
}

impl ShardConfig {
    /// One shard: today's single-instance engine.
    pub fn single() -> Self {
        ShardConfig { count: 1 }
    }

    /// An explicit shard count.
    pub fn with_count(count: usize) -> Self {
        ShardConfig { count }
    }

    /// The `TRIAD_SHARDS` override, if set and parseable.
    fn from_env() -> Option<usize> {
        std::env::var("TRIAD_SHARDS").ok()?.trim().parse().ok()
    }
}

impl Default for ShardConfig {
    /// `TRIAD_SHARDS` when set (how CI pins its shards=4 suite runs),
    /// otherwise the host's available parallelism: one shard per core, which
    /// is 1 — today's behavior — on a single-core host.
    fn default() -> Self {
        let count = Self::from_env()
            .unwrap_or_else(|| std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1));
        ShardConfig { count: count.max(1) }
    }
}

/// Whether background flushing and compaction run at all.
///
/// `Disabled` reproduces the paper's Figure 2 experiment ("RocksDB No BG I/O"): when
/// the memory component fills up it is discarded instead of flushed, and compaction
/// never runs, so the measured throughput is an upper bound unburdened by background
/// I/O.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackgroundIoMode {
    /// Normal operation: flushes and compactions run in background threads.
    Enabled,
    /// Figure 2 mode: full memtables are discarded, compaction never runs.
    Disabled,
}

/// Configuration of the three TRIAD techniques.
#[derive(Debug, Clone)]
pub struct TriadConfig {
    /// TRIAD-MEM: keep hot keys in memory on flush (paper §4.1).
    pub mem_enabled: bool,
    /// TRIAD-DISK: defer L0→L1 compaction until the overlap ratio is large enough
    /// (paper §4.2).
    pub disk_enabled: bool,
    /// TRIAD-LOG: turn sealed commit logs into CL-SSTables instead of rewriting
    /// values at flush time (paper §4.3).
    pub log_enabled: bool,
    /// Hot-key selection policy for TRIAD-MEM. The paper's default treats the top 1%
    /// of keys by update frequency as hot.
    pub hot_key_policy: HotColdPolicy,
    /// TRIAD-MEM's `FLUSH_TH`: if a flush is triggered (typically by the commit log
    /// filling up) while the memtable holds fewer than this many bytes, skip the
    /// flush, rotate the log and keep everything in memory.
    pub flush_skip_threshold_bytes: usize,
    /// TRIAD-DISK's overlap-ratio threshold below which L0→L1 compaction is deferred.
    /// The paper uses 0.4.
    pub overlap_ratio_threshold: f64,
    /// TRIAD-DISK's hard cap on the number of L0 files; once reached, compaction
    /// proceeds regardless of the overlap ratio. The paper uses 6.
    pub max_l0_files: usize,
}

impl TriadConfig {
    /// The baseline configuration: all three techniques off (plain leveled LSM,
    /// playing the role of RocksDB in the evaluation).
    pub fn baseline() -> Self {
        TriadConfig {
            mem_enabled: false,
            disk_enabled: false,
            log_enabled: false,
            hot_key_policy: HotColdPolicy::default(),
            flush_skip_threshold_bytes: 2 * 1024 * 1024,
            overlap_ratio_threshold: 0.4,
            max_l0_files: 6,
        }
    }

    /// The full TRIAD configuration with the paper's defaults.
    pub fn all_enabled() -> Self {
        TriadConfig { mem_enabled: true, disk_enabled: true, log_enabled: true, ..Self::baseline() }
    }

    /// Only TRIAD-MEM ("Skew Awareness Only" in Figure 10).
    pub fn mem_only() -> Self {
        TriadConfig { mem_enabled: true, ..Self::baseline() }
    }

    /// Only TRIAD-DISK ("Deferred Compaction Only" in Figure 10).
    pub fn disk_only() -> Self {
        TriadConfig { disk_enabled: true, ..Self::baseline() }
    }

    /// Only TRIAD-LOG ("Commit Log Indexing Only" in Figure 10).
    pub fn log_only() -> Self {
        TriadConfig { log_enabled: true, ..Self::baseline() }
    }

    /// Enables all three techniques in place.
    pub fn enable_all(&mut self) {
        self.mem_enabled = true;
        self.disk_enabled = true;
        self.log_enabled = true;
    }

    /// Returns `true` if any technique is enabled.
    pub fn any_enabled(&self) -> bool {
        self.mem_enabled || self.disk_enabled || self.log_enabled
    }

    /// A short label such as `"TRIAD"`, `"RocksDB"` or `"TRIAD-MEM"`, used by the
    /// benchmark harness when printing tables.
    pub fn label(&self) -> String {
        match (self.mem_enabled, self.disk_enabled, self.log_enabled) {
            (false, false, false) => "RocksDB".to_string(),
            (true, true, true) => "TRIAD".to_string(),
            (true, false, false) => "TRIAD-MEM".to_string(),
            (false, true, false) => "TRIAD-DISK".to_string(),
            (false, false, true) => "TRIAD-LOG".to_string(),
            (mem, disk, log) => {
                let mut parts = Vec::new();
                if mem {
                    parts.push("MEM");
                }
                if disk {
                    parts.push("DISK");
                }
                if log {
                    parts.push("LOG");
                }
                format!("TRIAD-{}", parts.join("+"))
            }
        }
    }
}

impl Default for TriadConfig {
    fn default() -> Self {
        Self::baseline()
    }
}

/// Top-level engine options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Maximum size of the active memory component before a flush is triggered.
    /// The paper's synthetic experiments use 4 MB.
    pub memtable_size: usize,
    /// Maximum size of the commit log before a flush (or, with TRIAD-MEM, a log
    /// rotation) is triggered even if the memtable still has room.
    pub max_log_size: usize,
    /// Number of L0 files that triggers an L0→L1 compaction in the baseline.
    pub l0_compaction_trigger: usize,
    /// Target size of L1; level `i` targets `l1_target_size * level_size_multiplier^(i-1)`.
    pub l1_target_size: u64,
    /// Ratio between the target sizes of consecutive levels.
    pub level_size_multiplier: u64,
    /// Number of levels in the disk component (including L0).
    pub num_levels: usize,
    /// Target size of an individual SSTable produced by compaction.
    pub target_file_size: u64,
    /// Data-block size inside SSTables.
    pub block_size: usize,
    /// Bloom filter bits per key.
    pub bloom_bits_per_key: usize,
    /// Commit-log durability mode.
    pub sync_mode: SyncMode,
    /// Group-commit write pipeline configuration.
    pub group_commit: GroupCommitConfig,
    /// Whether background I/O runs (Figure 2 uses `Disabled`).
    pub background_io: BackgroundIoMode,
    /// Number of background compaction threads.
    pub compaction_threads: usize,
    /// TRIAD technique configuration.
    pub triad: TriadConfig,
    /// Keyspace sharding configuration.
    pub shards: ShardConfig,
    /// Byte budget of the shared block cache (decoded data blocks, one cache
    /// across all keyspace shards). `0` disables the cache entirely; the
    /// default is `memtable_size.div_ceil(10) * 3` — roughly 30% of the
    /// memory component, the lfkv-style buffer-pool sizing rule. The
    /// `TRIAD_BLOCK_CACHE` environment variable (plain bytes or a
    /// `KiB`/`MiB`/`GiB` suffix) overrides it, which is how CI sweeps cache
    /// sizes without rebuilding.
    pub block_cache: usize,
    /// Worker threads in the readahead I/O pool scan and compaction iterators
    /// use to prefetch the next data block. `0` disables readahead; the pool
    /// only exists when the block cache is enabled (prefetched blocks land
    /// *in* the cache).
    pub io_threads: usize,
}

/// The default block-cache budget for a given memtable size:
/// `memtable_size.div_ceil(10) * 3` (≈ 30% of the memory component).
pub(crate) fn default_block_cache(memtable_size: usize) -> usize {
    memtable_size.div_ceil(10) * 3
}

/// The `TRIAD_BLOCK_CACHE` override, if set and parseable: plain bytes
/// (`"1048576"`) or a binary-suffixed size (`"16MiB"`).
fn block_cache_from_env() -> Option<usize> {
    parse_byte_size(std::env::var("TRIAD_BLOCK_CACHE").ok()?.trim())
}

fn parse_byte_size(raw: &str) -> Option<usize> {
    for (suffix, shift) in [("GiB", 30u32), ("MiB", 20), ("KiB", 10)] {
        if let Some(number) = raw.strip_suffix(suffix) {
            let number: usize = number.trim().parse().ok()?;
            return number.checked_mul(1usize << shift);
        }
    }
    raw.parse().ok()
}

impl Default for Options {
    fn default() -> Self {
        let memtable_size = 4 * 1024 * 1024;
        Options {
            memtable_size,
            max_log_size: 8 * 1024 * 1024,
            l0_compaction_trigger: 4,
            l1_target_size: 16 * 1024 * 1024,
            level_size_multiplier: 10,
            num_levels: 7,
            target_file_size: 4 * 1024 * 1024,
            block_size: 4 * 1024,
            bloom_bits_per_key: 10,
            sync_mode: SyncMode::NoSync,
            group_commit: GroupCommitConfig::default(),
            background_io: BackgroundIoMode::Enabled,
            compaction_threads: 1,
            triad: TriadConfig::baseline(),
            shards: ShardConfig::default(),
            block_cache: block_cache_from_env()
                .unwrap_or_else(|| default_block_cache(memtable_size)),
            io_threads: 2,
        }
    }
}

impl Options {
    /// The paper's baseline ("RocksDB") configuration.
    pub fn baseline() -> Self {
        Options::default()
    }

    /// The paper's full TRIAD configuration.
    pub fn triad() -> Self {
        Options { triad: TriadConfig::all_enabled(), ..Options::default() }
    }

    /// Small-footprint options for unit and integration tests: tiny memtable and log
    /// so flushes and compactions happen after a handful of writes.
    pub fn small_for_tests() -> Self {
        let memtable_size = 64 * 1024;
        Options {
            memtable_size,
            max_log_size: 128 * 1024,
            l1_target_size: 256 * 1024,
            target_file_size: 64 * 1024,
            block_size: 1024,
            // Most tests assert exact file layouts or seqno/fsync arithmetic
            // that only holds for a single engine instance, so the test
            // options pin one shard regardless of host core count. CI's
            // sharded suite runs override this via `TRIAD_SHARDS`.
            shards: ShardConfig { count: ShardConfig::from_env().unwrap_or(1) },
            // `..Options::default()` would size the cache for the 4 MiB
            // default memtable; recompute for the tiny one. The
            // TRIAD_BLOCK_CACHE override still wins.
            block_cache: block_cache_from_env()
                .unwrap_or_else(|| default_block_cache(memtable_size)),
            ..Options::default()
        }
    }

    /// The target size of level `level` (1-based levels; L0 is governed by file count).
    pub fn level_target_size(&self, level: usize) -> u64 {
        if level == 0 {
            return u64::MAX;
        }
        let mut size = self.l1_target_size;
        for _ in 1..level {
            size = size.saturating_mul(self.level_size_multiplier);
        }
        size
    }

    /// Validates internal consistency of the options.
    pub fn validate(&self) -> triad_common::Result<()> {
        use triad_common::Error;
        if self.memtable_size == 0 {
            return Err(Error::InvalidArgument("memtable_size must be non-zero".into()));
        }
        if self.num_levels < 2 {
            return Err(Error::InvalidArgument("num_levels must be at least 2".into()));
        }
        if self.triad.max_l0_files == 0 {
            return Err(Error::InvalidArgument("max_l0_files must be non-zero".into()));
        }
        if !(0.0..=1.0).contains(&self.triad.overlap_ratio_threshold) {
            return Err(Error::InvalidArgument("overlap_ratio_threshold must be in [0, 1]".into()));
        }
        if self.l0_compaction_trigger == 0 {
            return Err(Error::InvalidArgument("l0_compaction_trigger must be non-zero".into()));
        }
        if self.group_commit.enabled {
            if self.group_commit.max_group_batches == 0 {
                return Err(Error::InvalidArgument("max_group_batches must be non-zero".into()));
            }
            if self.group_commit.max_group_bytes == 0 {
                return Err(Error::InvalidArgument("max_group_bytes must be non-zero".into()));
            }
        }
        if self.shards.count == 0 {
            return Err(Error::InvalidArgument("shards.count must be non-zero".into()));
        }
        if self.shards.count > 256 {
            return Err(Error::InvalidArgument("shards.count must be at most 256".into()));
        }
        if self.io_threads > 64 {
            return Err(Error::InvalidArgument("io_threads must be at most 64".into()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let options = Options::default();
        assert_eq!(options.memtable_size, 4 * 1024 * 1024, "paper's synthetic memtable is 4MB");
        assert_eq!(options.triad.max_l0_files, 6, "paper uses at most 6 L0 files for TRIAD-DISK");
        assert!((options.triad.overlap_ratio_threshold - 0.4).abs() < 1e-9, "paper uses 0.4");
        assert!(!options.triad.any_enabled(), "default is the RocksDB baseline");
        options.validate().unwrap();
    }

    #[test]
    fn block_cache_defaults_scale_with_the_memtable() {
        // div_ceil(10) * 3 ≈ 30% of the memory component.
        assert_eq!(default_block_cache(4 * 1024 * 1024), 1_258_293, "4MiB/10 rounded up, x3");
        assert_eq!(default_block_cache(100), 30);
        assert_eq!(default_block_cache(101), 33);
        if std::env::var("TRIAD_BLOCK_CACHE").is_err() {
            let default = Options::default();
            assert_eq!(default.block_cache, default_block_cache(default.memtable_size));
            let small = Options::small_for_tests();
            assert_eq!(small.block_cache, default_block_cache(small.memtable_size));
            assert!(small.block_cache < default.block_cache);
        }
    }

    #[test]
    fn byte_sizes_parse_with_and_without_suffixes() {
        assert_eq!(parse_byte_size("1048576"), Some(1 << 20));
        assert_eq!(parse_byte_size("16MiB"), Some(16 << 20));
        assert_eq!(parse_byte_size("2 GiB"), Some(2 << 30));
        assert_eq!(parse_byte_size("512KiB"), Some(512 << 10));
        assert_eq!(parse_byte_size("0"), Some(0));
        assert_eq!(parse_byte_size("lots"), None);
        assert_eq!(parse_byte_size("12MB"), None, "only binary suffixes are accepted");
    }

    #[test]
    fn io_thread_bounds_are_validated() {
        // 0 just disables readahead.
        let mut options = Options { io_threads: 0, ..Options::default() };
        options.validate().unwrap();
        options.io_threads = 65;
        assert!(options.validate().is_err());
    }

    #[test]
    fn labels_for_breakdown_configs() {
        assert_eq!(TriadConfig::baseline().label(), "RocksDB");
        assert_eq!(TriadConfig::all_enabled().label(), "TRIAD");
        assert_eq!(TriadConfig::mem_only().label(), "TRIAD-MEM");
        assert_eq!(TriadConfig::disk_only().label(), "TRIAD-DISK");
        assert_eq!(TriadConfig::log_only().label(), "TRIAD-LOG");
        let mut two = TriadConfig::baseline();
        two.mem_enabled = true;
        two.log_enabled = true;
        assert_eq!(two.label(), "TRIAD-MEM+LOG");
    }

    #[test]
    fn enable_all_flips_every_flag() {
        let mut config = TriadConfig::baseline();
        assert!(!config.any_enabled());
        config.enable_all();
        assert!(config.mem_enabled && config.disk_enabled && config.log_enabled);
    }

    #[test]
    fn level_target_sizes_grow_geometrically() {
        let options =
            Options { l1_target_size: 100, level_size_multiplier: 10, ..Options::default() };
        assert_eq!(options.level_target_size(1), 100);
        assert_eq!(options.level_target_size(2), 1_000);
        assert_eq!(options.level_target_size(3), 10_000);
        assert_eq!(options.level_target_size(0), u64::MAX);
    }

    #[test]
    fn validation_catches_bad_options() {
        let options = Options { memtable_size: 0, ..Options::default() };
        assert!(options.validate().is_err());

        let options = Options { num_levels: 1, ..Options::default() };
        assert!(options.validate().is_err());

        let mut options = Options::default();
        options.triad.overlap_ratio_threshold = 1.5;
        assert!(options.validate().is_err());

        let mut options = Options::default();
        options.triad.max_l0_files = 0;
        assert!(options.validate().is_err());

        let options = Options { l0_compaction_trigger: 0, ..Options::default() };
        assert!(options.validate().is_err());

        let mut options = Options::default();
        options.group_commit.max_group_batches = 0;
        assert!(options.validate().is_err());

        let mut options = Options::default();
        options.group_commit.max_group_bytes = 0;
        assert!(options.validate().is_err());
        // The caps are irrelevant when the grouped pipeline is off.
        options.group_commit.enabled = false;
        options.validate().unwrap();
    }

    #[test]
    fn group_commit_defaults_are_enabled_and_bounded() {
        let config = GroupCommitConfig::default();
        assert!(config.enabled, "the grouped pipeline is the default write path");
        assert!(config.pipelined, "the pipelined commit is the default sync strategy");
        assert!(config.max_group_batches >= 2, "a group must be able to amortize");
        assert!(config.max_group_bytes >= 64 * 1024);
    }

    #[test]
    fn test_options_are_small() {
        let options = Options::small_for_tests();
        assert!(options.memtable_size <= 64 * 1024);
        options.validate().unwrap();
    }

    #[test]
    fn shard_defaults_track_the_host() {
        let config = ShardConfig::default();
        assert!(config.count >= 1, "the default shard count is never zero");
        assert_eq!(ShardConfig::single().count, 1);
        assert_eq!(ShardConfig::with_count(4).count, 4);
    }

    #[test]
    fn validation_bounds_the_shard_count() {
        let options = Options { shards: ShardConfig { count: 0 }, ..Options::default() };
        assert!(options.validate().is_err());
        let options = Options { shards: ShardConfig { count: 257 }, ..Options::default() };
        assert!(options.validate().is_err());
        let options = Options { shards: ShardConfig { count: 256 }, ..Options::default() };
        options.validate().unwrap();
    }
}
