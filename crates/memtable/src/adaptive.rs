//! Hill-climbing tuner for the TRIAD-MEM hot-key budget.
//!
//! The paper fixes the number of hot keys K to a constant (the top 1% of keys by
//! update frequency) and notes (§4.1) that the authors are "investigating techniques
//! to automatically set K depending on the runtime workload, for example by means of
//! hill climbing". This module implements that extension as a standalone component:
//! after every flush the engine (or an application supervising it) reports what the
//! flush looked like, and the tuner nudges the hot fraction up or down, keeping the
//! change only when it improved a combined cost of flush I/O and wasted memory.
//!
//! The tuner is deliberately policy-only: it owns no engine state, so it can be unit
//! tested exhaustively and reused by embedders that drive flushes themselves.

use crate::hotcold::HotColdPolicy;

/// What a single flush looked like, from the tuner's point of view.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlushObservation {
    /// Bytes written to disk by the flush (index-only for CL-SSTables).
    pub bytes_flushed: u64,
    /// Logical bytes the application wrote since the previous flush.
    pub user_bytes_since_last_flush: u64,
    /// Entries retained in memory as hot by this flush.
    pub hot_entries_retained: u64,
    /// Entries that the *previous* flush retained as hot but that were never updated
    /// again before this flush — retained memory that bought nothing.
    pub stale_hot_entries: u64,
}

impl FlushObservation {
    /// The flush-I/O component of the cost: disk bytes per logical byte.
    pub fn io_cost(&self) -> f64 {
        if self.user_bytes_since_last_flush == 0 {
            return 0.0;
        }
        self.bytes_flushed as f64 / self.user_bytes_since_last_flush as f64
    }

    /// The memory-waste component of the cost: fraction of retained entries that
    /// were never touched again.
    pub fn waste_cost(&self) -> f64 {
        let retained = self.hot_entries_retained + self.stale_hot_entries;
        if retained == 0 {
            return 0.0;
        }
        self.stale_hot_entries as f64 / retained as f64
    }
}

/// Hill-climbing controller for the TRIAD-MEM hot fraction.
#[derive(Debug, Clone)]
pub struct HotKeyTuner {
    fraction: f64,
    min_fraction: f64,
    max_fraction: f64,
    step: f64,
    direction: f64,
    waste_weight: f64,
    last_cost: Option<f64>,
}

impl HotKeyTuner {
    /// Creates a tuner starting from `initial_fraction`, constrained to
    /// `[min_fraction, max_fraction]` and moving by `step` per observation.
    ///
    /// # Panics
    /// Panics if the bounds are not ordered or `step` is not positive.
    pub fn new(initial_fraction: f64, min_fraction: f64, max_fraction: f64, step: f64) -> Self {
        assert!(
            min_fraction >= 0.0 && max_fraction <= 1.0 && min_fraction < max_fraction,
            "invalid bounds"
        );
        assert!(step > 0.0, "step must be positive");
        HotKeyTuner {
            fraction: initial_fraction.clamp(min_fraction, max_fraction),
            min_fraction,
            max_fraction,
            step,
            direction: 1.0,
            waste_weight: 0.5,
            last_cost: None,
        }
    }

    /// A tuner matching the paper's default (1% hot keys), free to move between
    /// 0.1% and 10%.
    pub fn with_paper_defaults() -> Self {
        HotKeyTuner::new(0.01, 0.001, 0.10, 0.005)
    }

    /// Sets the weight of the memory-waste term relative to the flush-I/O term.
    pub fn set_waste_weight(&mut self, weight: f64) {
        self.waste_weight = weight.max(0.0);
    }

    /// The current hot fraction.
    pub fn fraction(&self) -> f64 {
        self.fraction
    }

    /// The current fraction expressed as a [`HotColdPolicy`] ready to hand to
    /// [`separate_keys`](crate::separate_keys).
    pub fn policy(&self) -> HotColdPolicy {
        HotColdPolicy::TopFraction(self.fraction)
    }

    /// The combined cost of an observation under the tuner's weighting.
    pub fn cost(&self, observation: &FlushObservation) -> f64 {
        observation.io_cost() + self.waste_weight * observation.waste_cost()
    }

    /// Feeds one flush observation and returns the hot fraction to use next.
    ///
    /// Classic hill climbing: keep moving in the current direction while the cost
    /// keeps improving; reverse direction when it degrades.
    pub fn observe(&mut self, observation: &FlushObservation) -> f64 {
        let cost = self.cost(observation);
        match self.last_cost {
            None => {
                // First observation: establish the baseline and take a first step.
            }
            Some(previous) if cost <= previous => {
                // The last move helped (or was neutral); keep going the same way.
            }
            Some(_) => {
                // The last move hurt; turn around.
                self.direction = -self.direction;
            }
        }
        self.last_cost = Some(cost);
        self.fraction = (self.fraction + self.direction * self.step)
            .clamp(self.min_fraction, self.max_fraction);
        self.fraction
    }
}

impl Default for HotKeyTuner {
    fn default() -> Self {
        Self::with_paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn observation(
        bytes_flushed: u64,
        user_bytes: u64,
        retained: u64,
        stale: u64,
    ) -> FlushObservation {
        FlushObservation {
            bytes_flushed,
            user_bytes_since_last_flush: user_bytes,
            hot_entries_retained: retained,
            stale_hot_entries: stale,
        }
    }

    #[test]
    fn cost_components() {
        let obs = observation(500, 1_000, 75, 25);
        assert!((obs.io_cost() - 0.5).abs() < 1e-9);
        assert!((obs.waste_cost() - 0.25).abs() < 1e-9);
        let zero = observation(0, 0, 0, 0);
        assert_eq!(zero.io_cost(), 0.0);
        assert_eq!(zero.waste_cost(), 0.0);
    }

    #[test]
    #[should_panic]
    fn invalid_bounds_are_rejected() {
        HotKeyTuner::new(0.01, 0.5, 0.1, 0.01);
    }

    #[test]
    fn paper_defaults_start_at_one_percent() {
        let tuner = HotKeyTuner::with_paper_defaults();
        assert!((tuner.fraction() - 0.01).abs() < 1e-9);
        assert_eq!(tuner.policy(), HotColdPolicy::TopFraction(tuner.fraction()));
    }

    #[test]
    fn improving_cost_keeps_the_direction() {
        let mut tuner = HotKeyTuner::new(0.02, 0.001, 0.2, 0.01);
        let f0 = tuner.fraction();
        // Costs keep going down: the tuner should keep increasing the fraction.
        tuner.observe(&observation(900, 1_000, 10, 0));
        let f1 = tuner.fraction();
        tuner.observe(&observation(800, 1_000, 10, 0));
        let f2 = tuner.fraction();
        tuner.observe(&observation(700, 1_000, 10, 0));
        let f3 = tuner.fraction();
        assert!(f1 > f0 && f2 > f1 && f3 > f2, "fractions should keep rising: {f0} {f1} {f2} {f3}");
    }

    #[test]
    fn degrading_cost_reverses_the_direction() {
        let mut tuner = HotKeyTuner::new(0.05, 0.001, 0.2, 0.01);
        tuner.observe(&observation(500, 1_000, 10, 0));
        let after_first = tuner.fraction();
        // Much worse cost: the next move must go the other way.
        tuner.observe(&observation(900, 1_000, 10, 10));
        let after_reverse = tuner.fraction();
        assert!(after_reverse < after_first, "{after_reverse} should be below {after_first}");
    }

    #[test]
    fn fraction_stays_within_bounds() {
        let mut tuner = HotKeyTuner::new(0.01, 0.005, 0.03, 0.01);
        // Ever-improving costs push the fraction up, but never past the maximum.
        for i in 0..20u64 {
            tuner.observe(&observation(1_000 - i * 10, 1_000, 10, 0));
            assert!(tuner.fraction() >= 0.005 && tuner.fraction() <= 0.03);
        }
        assert!((tuner.fraction() - 0.03).abs() < 1e-9, "should have hit the upper bound");
    }

    #[test]
    fn converges_near_a_synthetic_optimum() {
        // Synthetic cost landscape: minimal cost when the fraction is 0.04. The I/O
        // cost falls as the fraction approaches the true hot-set size and the waste
        // cost rises past it.
        let synthetic_observation = |fraction: f64| -> FlushObservation {
            let io = (fraction - 0.04).abs() * 10_000.0 + 100.0;
            observation(io as u64, 1_000, 100, 0)
        };
        let mut tuner = HotKeyTuner::new(0.01, 0.001, 0.1, 0.005);
        for _ in 0..60 {
            let obs = synthetic_observation(tuner.fraction());
            tuner.observe(&obs);
        }
        // Hill climbing oscillates around the optimum; it must end up close to it.
        assert!(
            (tuner.fraction() - 0.04).abs() <= 0.015,
            "fraction {} should settle near 0.04",
            tuner.fraction()
        );
    }

    #[test]
    fn waste_weight_changes_the_tradeoff() {
        let obs = observation(100, 1_000, 50, 50);
        let mut cheap_memory = HotKeyTuner::with_paper_defaults();
        cheap_memory.set_waste_weight(0.0);
        let mut expensive_memory = HotKeyTuner::with_paper_defaults();
        expensive_memory.set_waste_weight(2.0);
        assert!(expensive_memory.cost(&obs) > cheap_memory.cost(&obs));
    }
}
