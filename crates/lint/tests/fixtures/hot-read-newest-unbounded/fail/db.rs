// lint-fixture: crates/core/src/db.rs
// The hot read path was rewritten to bound by a just-loaded seqno: the
// unbounded probe is gone and a snapshot-style bounded call appeared.

// PIPELINE-APPEND-STAGE-BEGIN
fn append_stage(&self) {
    let start = wal.writer.append_batch(encoder);
}
// PIPELINE-APPEND-STAGE-END

// HOT-READ-NEWEST-BEGIN
fn hot_read(&self, key: &[u8]) {
    let ceiling = self.last_seqno.load(Ordering::Acquire);
    let hit = memtable.get_at(key, ceiling);
}
// HOT-READ-NEWEST-END
