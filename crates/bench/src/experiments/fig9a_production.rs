//! Figure 9A: throughput and write amplification on the production workloads.
//!
//! Since the scenario suite landed this figure is a thin wrapper over the
//! shared scenario runner: each production profile becomes a closed-loop,
//! write-only [`Scenario`] (via [`Scenario::production`]) and runs through
//! the same [`scenarios::run_scenario`] path the open-loop suite uses, so
//! production numbers and scenario numbers come from one code path.

use triad_core::TriadConfig;
use triad_workload::{ProductionProfile, ProductionWorkload, Scenario};

use crate::experiments::scenarios::{self, ScenarioRunConfig};
use crate::experiments::{bench_options, fig7_profiles::scale_down_factor, ops_per_thread};
use crate::report::{print_table, Table};
use crate::runner::Scale;

/// Runs RocksDB-baseline and TRIAD on each production-like workload profile.
pub fn run(scale: Scale) -> triad_common::Result<Table> {
    let factor = scale_down_factor(scale);
    let threads = 8;
    let mut table = Table::new(&[
        "workload",
        "RocksDB KOPS",
        "TRIAD KOPS",
        "speedup",
        "RocksDB WA",
        "TRIAD WA",
        "WA reduction",
    ]);
    for workload in ProductionWorkload::all() {
        let profile = ProductionProfile::new(workload, factor);
        // The production workloads are metadata update streams; drive them write-only
        // as the paper's throughput numbers are for applying the workload.
        let scenario = Scenario::production(&profile);
        let ops = (ops_per_thread(scale).min(profile.num_updates / 8 + 1)) * threads as u64;

        let run_one = |triad: TriadConfig| -> triad_common::Result<_> {
            let config = ScenarioRunConfig {
                options: bench_options(scale, triad),
                threads,
                ops,
                seed: 0xf19a,
                queue_capacity: 1,
                snapshot_refresh_every: 1,
                drain_background: true,
            };
            scenarios::run_scenario(&scenario, &config)
        };
        let baseline = run_one(TriadConfig::baseline())?;
        let triad = run_one(TriadConfig::all_enabled())?;
        table.add_row(vec![
            profile.workload.label().to_string(),
            format!("{:.1}", baseline.kops),
            format!("{:.1}", triad.kops),
            format!("{:.0}%", (triad.kops / baseline.kops.max(1e-9) - 1.0) * 100.0),
            format!("{:.2}", baseline.write_amplification),
            format!("{:.2}", triad.write_amplification),
            format!("{:.2}x", baseline.write_amplification / triad.write_amplification.max(1e-9)),
        ]);
    }
    print_table(
        "Figure 9A: production workloads, throughput and write amplification (8 threads)",
        &table,
        "TRIAD improves throughput by up to 193% and reduces WA by up to 4x; its WA is \
         uniform across workloads while RocksDB's WA is higher for the less-skewed W1/W3",
    );
    Ok(table)
}
