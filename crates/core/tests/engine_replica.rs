//! WAL shipping to a read replica: bootstrap from a checkpoint, catch up by
//! replaying shipped commit-log records, and serve consistent reads through
//! the rolling view — under churn, across replica restarts, and with the
//! primary's log retention held for the follower.

mod common;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use common::{key_for, open_small, temp_dir, value_for};
use triad_core::{Options, Replica, ShardConfig, WriteBatch, WriteOptions};

fn scan_all(iter: triad_core::DbIterator) -> Vec<(Vec<u8>, Vec<u8>)> {
    iter.map(|r| r.unwrap()).collect()
}

/// Checkpoint-seeded bootstrap, then one catch-up round: the replica reports
/// its lag, drains it to zero, and afterwards reads exactly what the primary
/// reads — including overwrites and deletes shipped after the bootstrap cut.
#[test]
fn replica_bootstraps_from_checkpoint_and_catches_up() {
    let (db, dir) = open_small("replica-basic", |_| {});
    for i in 0..300u64 {
        db.put(key_for(i), value_for(i, 0)).unwrap();
    }
    db.flush().unwrap();

    db.hold_wal_for_replication();
    let replica_dir = temp_dir("replica-basic-follower");
    std::fs::remove_dir_all(&replica_dir).unwrap();
    db.checkpoint(&replica_dir).unwrap();
    let replica = Replica::bootstrap(&replica_dir, Options::small_for_tests()).unwrap();

    // The follower serves the bootstrap cut before any catch-up.
    assert_eq!(replica.get(key_for(0)).unwrap(), Some(value_for(0, 0)));

    for i in 0..150u64 {
        db.put(key_for(i), value_for(i, 1)).unwrap();
    }
    for i in (200..260u64).step_by(4) {
        db.delete(key_for(i)).unwrap();
    }
    db.put(b"only-after-checkpoint", b"shipped").unwrap();

    assert!(replica.lag(&db) > 0, "the primary moved; the replica must report lag");
    // The un-caught-up view still reads the old cut.
    assert_eq!(replica.get(key_for(0)).unwrap(), Some(value_for(0, 0)));

    let applied = replica.catch_up(&db).unwrap();
    assert!(applied > 0);
    assert_eq!(replica.lag(&db), 0, "a quiesced primary must be fully drained");
    assert!(replica.db().stats().replica_records_applied >= applied);

    for i in 0..300u64 {
        assert_eq!(replica.get(key_for(i)).unwrap(), db.get(key_for(i)).unwrap(), "key {i}");
    }
    assert_eq!(replica.get(b"only-after-checkpoint").unwrap().as_deref(), Some(&b"shipped"[..]));
    assert_eq!(scan_all(replica.scan().unwrap()), scan_all(db.scan().unwrap()));

    // Caught up, another round is a no-op.
    assert_eq!(replica.catch_up(&db).unwrap(), 0);

    db.release_wal_hold();
    replica.close().unwrap();
    db.close().unwrap();
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&replica_dir).ok();
}

/// Four writer threads churn cross-shard batches on a four-sharded primary
/// while the replica repeatedly catches up. After every round the rolling
/// view must show each writer's key group at a single round value (a shipped
/// cut never tears a cross-shard batch), and once the writers stop, the
/// replica converges to the primary's snapshot at the same watermark.
#[test]
fn replica_catch_up_under_writer_churn_never_serves_a_torn_cut() {
    let (db, dir) =
        open_small("replica-churn", |options| options.shards = ShardConfig::with_count(4));
    for t in 0..4u64 {
        let mut batch = WriteBatch::new();
        for i in 0..8u64 {
            batch.put(format!("group-{t}-{i}"), 0u64.to_string());
        }
        db.write(batch, WriteOptions::default()).unwrap();
    }
    db.flush().unwrap();

    db.hold_wal_for_replication();
    let replica_dir = temp_dir("replica-churn-follower");
    std::fs::remove_dir_all(&replica_dir).unwrap();
    db.checkpoint(&replica_dir).unwrap();
    let replica = Replica::bootstrap(&replica_dir, Options::small_for_tests()).unwrap();
    assert_eq!(replica.db().shard_count(), 4);

    // Each writer commits a bounded number of rounds (keeping the log volume
    // each shipping round re-reads in check) while the replica repeatedly
    // catches up and checks its view mid-churn.
    let db = Arc::new(db);
    let live = Arc::new(AtomicBool::new(true));
    let writers: Vec<_> = (0..4u64)
        .map(|t| {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                for round in 1..=150u64 {
                    let mut batch = WriteBatch::new();
                    for i in 0..8u64 {
                        batch.put(format!("group-{t}-{i}"), round.to_string());
                    }
                    db.write(batch, WriteOptions::default()).unwrap();
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            })
        })
        .collect();

    while live.load(Ordering::Relaxed) {
        live.store(writers.iter().any(|writer| !writer.is_finished()), Ordering::Relaxed);
        replica.catch_up(&db).unwrap();
        for t in 0..4u64 {
            let rounds: Vec<Option<Vec<u8>>> =
                (0..8u64).map(|i| replica.get(format!("group-{t}-{i}")).unwrap()).collect();
            assert!(
                rounds.windows(2).all(|pair| pair[0] == pair[1]),
                "writer {t}'s cross-shard batch is torn in the replica view: {rounds:?}"
            );
        }
    }
    for writer in writers {
        writer.join().unwrap();
    }

    // Divergence check at a shared watermark: drain the quiesced primary,
    // then both sides' full contents must agree exactly.
    while replica.lag(&db) > 0 {
        replica.catch_up(&db).unwrap();
    }
    let primary_view = db.snapshot();
    assert_eq!(replica.view_seqno(), primary_view.seqno());
    assert_eq!(scan_all(replica.scan().unwrap()), scan_all(primary_view.scan().unwrap()));

    db.release_wal_hold();
    replica.close().unwrap();
    db.close().unwrap();
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&replica_dir).ok();
}

/// A replica that shuts down mid-stream recovers through the ordinary open
/// path (its shipped records live in its own commit log) and keeps catching
/// up from where it left off — re-shipped overlap lands idempotently.
#[test]
fn replica_restart_resumes_catch_up_idempotently() {
    let (db, dir) = open_small("replica-restart", |_| {});
    for i in 0..200u64 {
        db.put(key_for(i), value_for(i, 0)).unwrap();
    }
    db.flush().unwrap();

    db.hold_wal_for_replication();
    let replica_dir = temp_dir("replica-restart-follower");
    std::fs::remove_dir_all(&replica_dir).unwrap();
    db.checkpoint(&replica_dir).unwrap();

    {
        let replica = Replica::bootstrap(&replica_dir, Options::small_for_tests()).unwrap();
        for i in 0..100u64 {
            db.put(key_for(i), value_for(i, 1)).unwrap();
        }
        assert!(replica.catch_up(&db).unwrap() > 0);
        assert_eq!(replica.get(key_for(50)).unwrap(), Some(value_for(50, 1)));
        replica.close().unwrap();
    }

    for i in 100..200u64 {
        db.put(key_for(i), value_for(i, 2)).unwrap();
    }
    let replica = Replica::bootstrap(&replica_dir, Options::small_for_tests()).unwrap();
    // The pre-restart rounds survived the replica's own recovery.
    assert_eq!(replica.get(key_for(50)).unwrap(), Some(value_for(50, 1)));
    replica.catch_up(&db).unwrap();
    assert_eq!(replica.lag(&db), 0);
    for i in 0..200u64 {
        assert_eq!(replica.get(key_for(i)).unwrap(), db.get(key_for(i)).unwrap(), "key {i}");
    }
    assert_eq!(scan_all(replica.scan().unwrap()), scan_all(db.scan().unwrap()));

    db.release_wal_hold();
    replica.close().unwrap();
    db.close().unwrap();
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&replica_dir).ok();
}

/// The shipping hold keeps the primary's commit logs on disk across flushes
/// and collections until the replica has caught up past them; releasing the
/// hold lets the collector reclaim them again.
#[test]
fn wal_hold_retains_logs_until_the_replica_catches_up() {
    let (db, dir) = open_small("replica-retention", common::single_shard);
    db.put(key_for(0), value_for(0, 0)).unwrap();
    db.flush().unwrap();

    db.hold_wal_for_replication();
    let replica_dir = temp_dir("replica-retention-follower");
    std::fs::remove_dir_all(&replica_dir).unwrap();
    db.checkpoint(&replica_dir).unwrap();
    let mut replica_options = Options::small_for_tests();
    common::single_shard(&mut replica_options);
    let replica = Replica::bootstrap(&replica_dir, replica_options).unwrap();

    // Push enough data through rotations that, without the hold, old logs
    // would be flushed into tables and collected.
    for round in 1..=4u64 {
        for i in 0..400u64 {
            db.put(key_for(i), value_for(i, round)).unwrap();
        }
        db.flush().unwrap();
    }
    db.collect_garbage();
    let held_logs = common::disk_files(&dir).iter().filter(|name| name.ends_with(".log")).count();
    assert!(held_logs > 1, "the shipping hold must retain flushed commit logs, found {held_logs}");

    // Catching up ratchets the hold forward; releasing it drops the rest and
    // the primary converges back to exactly its live file set.
    while replica.lag(&db) > 0 {
        replica.catch_up(&db).unwrap();
    }
    for i in 0..400u64 {
        assert_eq!(replica.get(key_for(i)).unwrap(), Some(value_for(i, 4)), "key {i}");
    }
    db.release_wal_hold();
    common::assert_disk_matches_live_set(&db, &dir);

    replica.close().unwrap();
    db.close().unwrap();
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&replica_dir).ok();
}
