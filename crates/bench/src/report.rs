//! Plain-text table reporting for the figure binaries.

/// A simple column-aligned table.
#[derive(Debug, Default, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row; the number of cells should match the header count.
    pub fn add_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as an aligned plain-text string.
    pub fn render(&self) -> String {
        let columns = self.headers.len().max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; columns];
        for (i, header) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(header.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let render_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:<width$}  "));
            }
            line.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&render_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Prints a titled table with an optional note about the paper expectation.
pub fn print_table(title: &str, table: &Table, paper_note: &str) {
    println!("\n== {title} ==");
    table.print();
    if !paper_note.is_empty() {
        println!("paper: {paper_note}");
    }
}

/// Formats a float with a fixed number of decimals, used by the figure binaries.
pub fn format_row(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

/// Host description embedded as the `meta` object of the bench JSON files, so
/// recorded numbers carry the parallelism they were measured under. A 1-core
/// CI container recording `shards = 4` data is interpretable only alongside
/// `available_parallelism = 1`.
pub fn host_meta_json() -> String {
    let parallelism = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    format!(
        "{{\"available_parallelism\": {parallelism}, \"os\": \"{}\", \"arch\": \"{}\"}}",
        std::env::consts::OS,
        std::env::consts::ARCH
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut table = Table::new(&["system", "kops", "wa"]);
        assert!(table.is_empty());
        table.add_row(vec!["RocksDB".into(), "120.0".into(), "8.1".into()]);
        table.add_row(vec!["TRIAD".into(), "300.5".into(), "2.0".into()]);
        let rendered = table.render();
        assert_eq!(table.len(), 2);
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("system") && lines[0].contains("kops"));
        assert!(lines[2].starts_with("RocksDB"));
        assert!(lines[3].starts_with("TRIAD"));
        // Columns align: "kops" column starts at the same offset in every row.
        let offset = lines[0].find("kops").unwrap();
        assert_eq!(&lines[2][offset..offset + 5], "120.0");
        assert_eq!(&lines[3][offset..offset + 5], "300.5");
    }

    #[test]
    fn format_row_controls_decimals() {
        assert_eq!(format_row(3.17159, 2), "3.17");
        assert_eq!(format_row(10.0, 0), "10");
    }

    #[test]
    fn ragged_rows_do_not_panic() {
        let mut table = Table::new(&["a", "b"]);
        table.add_row(vec!["1".into()]);
        table.add_row(vec!["1".into(), "2".into(), "3".into()]);
        let rendered = table.render();
        assert!(rendered.contains('3'));
    }
}
