//! Property-based tests: the engine behaves like a `BTreeMap` under arbitrary
//! operation sequences, for every TRIAD configuration, including across a restart —
//! and every open MVCC snapshot behaves like the *versioned* reference model
//! (key → list of `(seqno, value)`) frozen at the snapshot's sequence number.

use std::collections::BTreeMap;

use proptest::prelude::*;

use triad::{Db, Options, Snapshot, TriadConfig, WriteBatch, WriteOptions};

/// A single operation in a generated test program.
#[derive(Debug, Clone)]
enum Op {
    Put(u16, Vec<u8>),
    Delete(u16),
    Get(u16),
    Flush,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (0u16..400, proptest::collection::vec(any::<u8>(), 0..64)).prop_map(|(k, v)| Op::Put(k, v)),
        2 => (0u16..400).prop_map(Op::Delete),
        2 => (0u16..400).prop_map(Op::Get),
        1 => Just(Op::Flush),
    ]
}

fn key_bytes(key: u16) -> Vec<u8> {
    format!("pkey-{key:05}").into_bytes()
}

fn config_strategy() -> impl Strategy<Value = TriadConfig> {
    prop_oneof![
        Just(TriadConfig::baseline()),
        Just(TriadConfig::mem_only()),
        Just(TriadConfig::disk_only()),
        Just(TriadConfig::log_only()),
        Just(TriadConfig::all_enabled()),
    ]
}

fn tiny_options(triad: TriadConfig) -> Options {
    let mut options = Options {
        memtable_size: 8 * 1024,
        max_log_size: 16 * 1024,
        l1_target_size: 64 * 1024,
        target_file_size: 16 * 1024,
        block_size: 512,
        l0_compaction_trigger: 2,
        triad,
        ..Options::default()
    };
    options.triad.flush_skip_threshold_bytes = 4 * 1024;
    options
}

fn unique_dir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "triad-prop-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

fn apply_ops(db: &Db, ops: &[Op], model: &mut BTreeMap<Vec<u8>, Vec<u8>>) {
    for op in ops {
        match op {
            Op::Put(key, value) => {
                let key = key_bytes(*key);
                db.put(&key, value).unwrap();
                model.insert(key, value.clone());
            }
            Op::Delete(key) => {
                let key = key_bytes(*key);
                db.delete(&key).unwrap();
                model.remove(&key);
            }
            Op::Get(key) => {
                let key = key_bytes(*key);
                assert_eq!(db.get(&key).unwrap().as_ref(), model.get(&key));
            }
            Op::Flush => db.flush().unwrap(),
        }
    }
}

fn assert_matches_model(db: &Db, model: &BTreeMap<Vec<u8>, Vec<u8>>) {
    for key in 0u16..400 {
        let key = key_bytes(key);
        assert_eq!(db.get(&key).unwrap().as_ref(), model.get(&key), "lookup mismatch for {key:?}");
    }
    let scanned: Vec<(Vec<u8>, Vec<u8>)> = db.scan().unwrap().map(|r| r.unwrap()).collect();
    let expected: Vec<(Vec<u8>, Vec<u8>)> =
        model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
    assert_eq!(scanned, expected, "scan mismatch");
}

/// One operation in a generated *versioned* test program: the plain ops plus
/// snapshot lifecycle events and forced compactions.
#[derive(Debug, Clone)]
enum VersionedOp {
    Put(u16, Vec<u8>),
    Delete(u16),
    Get(u16),
    Flush,
    /// Force flush + wait for every pending compaction (churns file lifetimes
    /// under the open snapshots).
    Compact,
    /// Open a snapshot (replacing the oldest once a handful are open).
    Snapshot,
    /// Drop the oldest open snapshot.
    DropSnapshot,
    /// Verify every open snapshot's `get` against the versioned model.
    CheckSnapshots,
}

fn versioned_op_strategy() -> impl Strategy<Value = VersionedOp> {
    prop_oneof![
        8 => (0u16..200, proptest::collection::vec(any::<u8>(), 0..48))
            .prop_map(|(k, v)| VersionedOp::Put(k, v)),
        3 => (0u16..200).prop_map(VersionedOp::Delete),
        2 => (0u16..200).prop_map(VersionedOp::Get),
        1 => Just(VersionedOp::Flush),
        1 => Just(VersionedOp::Compact),
        2 => Just(VersionedOp::Snapshot),
        1 => Just(VersionedOp::DropSnapshot),
        2 => Just(VersionedOp::CheckSnapshots),
    ]
}

/// One committed version of a key: its seqno and value (`None` = tombstone).
type KeyHistory = Vec<(u64, Option<Vec<u8>>)>;

/// The versioned reference model: every key's full committed history as
/// `(seqno, value)` pairs, ascending by seqno; `None` is a tombstone.
#[derive(Default)]
struct VersionedModel {
    history: BTreeMap<Vec<u8>, KeyHistory>,
}

impl VersionedModel {
    fn record(&mut self, key: Vec<u8>, seqno: u64, value: Option<Vec<u8>>) {
        self.history.entry(key).or_default().push((seqno, value));
    }

    /// The value `key` had at snapshot seqno `at` (newest version `<= at`).
    fn value_at(&self, key: &[u8], at: u64) -> Option<&Vec<u8>> {
        let versions = self.history.get(key)?;
        versions.iter().rev().find(|(seqno, _)| *seqno <= at).and_then(|(_, v)| v.as_ref())
    }

    /// The live value of `key` (newest version overall).
    fn live_value(&self, key: &[u8]) -> Option<&Vec<u8>> {
        self.value_at(key, u64::MAX)
    }

    /// The full `(key, value)` listing visible at snapshot seqno `at`.
    fn listing_at(&self, at: u64) -> Vec<(Vec<u8>, Vec<u8>)> {
        self.history
            .keys()
            .filter_map(|key| self.value_at(key, at).map(|v| (key.clone(), v.clone())))
            .collect()
    }
}

/// Checks one snapshot's point reads and scan against the model at its seqno.
fn assert_snapshot_matches_model(snap: &Snapshot, model: &VersionedModel, full_scan: bool) {
    let at = snap.seqno();
    for key in 0u16..200 {
        let key = key_bytes(key);
        assert_eq!(
            snap.get(&key).unwrap().as_ref(),
            model.value_at(&key, at),
            "snapshot@{at} point-read mismatch for {key:?}"
        );
    }
    if full_scan {
        let scanned: Vec<(Vec<u8>, Vec<u8>)> = snap.scan().unwrap().map(|r| r.unwrap()).collect();
        assert_eq!(scanned, model.listing_at(at), "snapshot@{at} scan mismatch");
    }
}

fn apply_versioned_ops(
    db: &Db,
    ops: &[VersionedOp],
    model: &mut VersionedModel,
    snapshots: &mut Vec<Snapshot>,
) {
    for op in ops {
        match op {
            VersionedOp::Put(key, value) => {
                let key = key_bytes(*key);
                let mut batch = WriteBatch::new();
                batch.put(key.clone(), value.clone());
                let seqno = db.write_committed(batch, WriteOptions::default()).unwrap();
                model.record(key, seqno, Some(value.clone()));
            }
            VersionedOp::Delete(key) => {
                let key = key_bytes(*key);
                let mut batch = WriteBatch::new();
                batch.delete(key.clone());
                let seqno = db.write_committed(batch, WriteOptions::default()).unwrap();
                model.record(key, seqno, None);
            }
            VersionedOp::Get(key) => {
                let key = key_bytes(*key);
                assert_eq!(db.get(&key).unwrap().as_ref(), model.live_value(&key));
            }
            VersionedOp::Flush => db.flush().unwrap(),
            VersionedOp::Compact => {
                db.flush().unwrap();
                db.wait_for_compactions().unwrap();
            }
            VersionedOp::Snapshot => {
                if snapshots.len() >= 4 {
                    snapshots.remove(0);
                }
                snapshots.push(db.snapshot());
            }
            VersionedOp::DropSnapshot => {
                if !snapshots.is_empty() {
                    snapshots.remove(0);
                }
            }
            VersionedOp::CheckSnapshots => {
                for snap in snapshots.iter() {
                    assert_snapshot_matches_model(snap, model, false);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, max_shrink_iters: 200, .. ProptestConfig::default() })]

    /// Arbitrary operation sequences behave exactly like a sorted map.
    fn engine_matches_btreemap(ops in proptest::collection::vec(op_strategy(), 1..250), triad in config_strategy()) {
        let dir = unique_dir("model");
        let db = Db::open(&dir, tiny_options(triad)).unwrap();
        let mut model = BTreeMap::new();
        apply_ops(&db, &ops, &mut model);
        assert_matches_model(&db, &model);
        db.close().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Every open snapshot behaves exactly like the versioned reference model
    /// frozen at its seqno, under randomized interleavings of writes, deletes,
    /// snapshot opens/drops, flushes and forced compactions — for every TRIAD
    /// configuration.
    fn snapshots_match_versioned_model(
        ops in proptest::collection::vec(versioned_op_strategy(), 1..120),
        triad in config_strategy(),
    ) {
        let dir = unique_dir("mvcc");
        let db = Db::open(&dir, tiny_options(triad)).unwrap();
        let mut model = VersionedModel::default();
        let mut snapshots: Vec<Snapshot> = Vec::new();
        apply_versioned_ops(&db, &ops, &mut model, &mut snapshots);
        // Final deep check: every snapshot still open gets point reads *and* a
        // full scan against the model at its seqno, after one more round of
        // background churn.
        db.flush().unwrap();
        db.wait_for_compactions().unwrap();
        for snap in snapshots.iter() {
            assert_snapshot_matches_model(snap, &model, true);
        }
        // The live view equals the model's newest versions (sanity: retention
        // never leaks old versions into unbounded reads).
        for key in 0u16..200 {
            let key = key_bytes(key);
            assert_eq!(db.get(&key).unwrap().as_ref(), model.live_value(&key));
        }
        let live: Vec<(Vec<u8>, Vec<u8>)> = db.scan().unwrap().map(|r| r.unwrap()).collect();
        assert_eq!(live, model.listing_at(u64::MAX), "live scan mismatch");
        // Dropping every snapshot releases the pinned files to GC.
        snapshots.clear();
        db.wait_for_compactions().unwrap();
        db.close().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The same holds after closing and reopening the database.
    fn engine_matches_btreemap_across_restart(
        before in proptest::collection::vec(op_strategy(), 1..150),
        after in proptest::collection::vec(op_strategy(), 0..80),
        triad in config_strategy(),
    ) {
        let dir = unique_dir("restart");
        let options = tiny_options(triad);
        let mut model = BTreeMap::new();
        {
            let db = Db::open(&dir, options.clone()).unwrap();
            apply_ops(&db, &before, &mut model);
            db.close().unwrap();
        }
        {
            let db = Db::open(&dir, options).unwrap();
            assert_matches_model(&db, &model);
            apply_ops(&db, &after, &mut model);
            assert_matches_model(&db, &model);
            db.close().unwrap();
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
