// lint-fixture: crates/sstable/src/reader.rs
// The one legal shape: the cache's `.get_or_load(` sits inside the marked
// region and its loader decodes bytes from `read_block`, the CRC32C-verified
// read path.

fn read_data_block(&self, handle: BlockHandle) -> Result<Arc<Block>> {
    // BLOCK-CACHE-CHECKSUM-BEGIN: blocks entering the shared cache are decoded
    // from `read_block`, the checksum-verified read path.
    if let Some(ctx) = &self.fetch {
        return ctx.fetch.get_or_load(ctx.table_id, handle.offset, self.stats.as_deref(), &|| {
            Block::new(self.reader.read_block(handle)?)
        });
    }
    // BLOCK-CACHE-CHECKSUM-END
    Block::new(self.reader.read_block(handle)?).map(Arc::new)
}
