//! Figure 9D: compacted gigabytes and time spent in compaction.

use triad_core::TriadConfig;
use triad_workload::OperationMix;

use crate::experiments::{bench_options, ops_per_thread, synthetic_workload, SkewProfile};
use crate::report::{print_table, Table};
use crate::runner::{run_experiment, ExperimentConfig, Scale};

/// Runs the three skew profiles with the write-intensive mix at 8 threads and prints
/// compacted bytes (left plot) and the share of time spent in background I/O (right
/// plot).
pub fn run(scale: Scale) -> triad_common::Result<Table> {
    let mut table = Table::new(&[
        "skew",
        "RocksDB compacted GB",
        "TRIAD compacted GB",
        "reduction",
        "RocksDB %time bg",
        "TRIAD %time bg",
    ]);
    for skew in SkewProfile::all() {
        let workload = synthetic_workload(scale, skew, OperationMix::write_intensive());
        let run_one = |label: &str, triad: TriadConfig| -> triad_common::Result<_> {
            let config = ExperimentConfig::new(
                format!("fig9d-{label}-{}", skew.label()),
                bench_options(scale, triad),
                workload.clone(),
            )
            .with_threads(8)
            .with_ops_per_thread(ops_per_thread(scale));
            run_experiment(&config)
        };
        let baseline = run_one("rocksdb", TriadConfig::baseline())?;
        let triad = run_one("triad", TriadConfig::all_enabled())?;
        let reduction = if triad.compacted_gb() > 0.0 {
            format!("{:.1}x", baseline.compacted_gb() / triad.compacted_gb())
        } else {
            "inf".to_string()
        };
        table.add_row(vec![
            skew.label().to_string(),
            format!("{:.4}", baseline.compacted_gb()),
            format!("{:.4}", triad.compacted_gb()),
            reduction,
            format!("{:.0}%", baseline.background_time_fraction * 100.0),
            format!("{:.0}%", triad.background_time_fraction * 100.0),
        ]);
    }
    print_table(
        "Figure 9D: compacted GB (log scale in the paper) and % time in compaction, 8 threads, 10r-90w",
        &table,
        "TRIAD compacts an order of magnitude fewer bytes for the highly-skewed workload and \
         spends 48-77% less time in compaction for the moderately-skewed and uniform workloads",
    );
    Ok(table)
}
