//! WAL shipping to a read replica.
//!
//! A [`Replica`] is a second, read-only-facing database bootstrapped from a
//! [`Db::checkpoint`](crate::Db::checkpoint) directory and kept fresh by
//! replaying the primary's commit-log records:
//!
//! 1. **Bootstrap.** The checkpoint opens as a normal database; its recovered
//!    per-shard `last_seqno` *is* the replication cursor — no extra watermark
//!    plumbing is needed, the checkpoint's manifest already records the cut.
//! 2. **Shipping.** [`Replica::catch_up`] asks the primary for every commit-log
//!    record past each shard's cursor. The export runs under the primary's
//!    shard-spanning capture gate (`snapshot::capture_all_shards`), so the
//!    shipped targets form a consistent cross-shard cut: a cross-shard batch
//!    is shipped to all of its shards or to none of them. Defensively, the
//!    shipped records are still run through the same torn-batch detection
//!    recovery uses ([`torn_batch_drops`]) before any of them is applied.
//! 3. **Replay.** Each shard's records are appended — original seqnos and
//!    cross-shard [`BatchStamp`](triad_wal::BatchStamp)s preserved — to the
//!    *replica's own* commit log and inserted into its memtable, exactly the
//!    write path's bookkeeping. A replica that crashes therefore recovers
//!    through the ordinary open path, torn-batch detection included, and can
//!    keep catching up afterwards.
//! 4. **Serving.** Reads go through a rolling [`Snapshot`] that is swapped
//!    only after a whole catch-up round lands, so [`Replica::get`] and
//!    [`Replica::scan`] always see a consistent cross-shard cut of the
//!    primary — never a half-applied shipment.
//!
//! # Log retention
//!
//! Shipping reads the primary's on-disk commit logs. The primary retains the
//! logs a replica still needs only while a shipping hold is armed: call
//! [`Db::hold_wal_for_replication`](crate::Db::hold_wal_for_replication)
//! *before* taking the checkpoint that seeds the replica. Each successful
//! catch-up ratchets the retention floor to the primary's then-active log, so
//! the hold releases storage as the replica advances. A replica that falls
//! behind a released window (hold never armed, or explicitly released via
//! [`Db::release_wal_hold`](crate::Db::release_wal_hold)) may find the records
//! it needs flushed into tables and their logs deleted; its only remedy is to
//! re-bootstrap from a fresh checkpoint.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::Ordering;

use triad_common::lockrank::RankedRwLock;
use triad_common::types::SeqNo;
use triad_common::{Error, Result};
use triad_memtable::LogPosition;
use triad_wal::{parse_log_file_name, LogReader, LogRecord};

use crate::db::{torn_batch_drops, Db, DbInner, WalState};
use crate::iterator::DbIterator;
use crate::options::Options;
use crate::snapshot::{capture_all_shards, Snapshot};

/// Lock rank of the replica's rolling-view lock: below every engine lock, so
/// a view swap (which captures a snapshot and drops the old one) can acquire
/// anything it needs while the view is held.
const VIEW_RANK: u32 = 2;

/// One shard's shipped segment: every commit-log record with
/// `cursor < seqno <= target`, seqno-ascending, stamps preserved.
pub(crate) struct ShardShipment {
    records: Vec<LogRecord>,
}

/// A read replica: a database bootstrapped from a checkpoint and kept fresh
/// by replaying the primary's shipped commit-log records. See the module
/// docs for the protocol and its retention contract.
pub struct Replica {
    db: Db,
    /// The rolling serving view, swapped atomically after each catch-up
    /// round; reads never observe a half-applied shipment.
    view: RankedRwLock<Snapshot>,
}

impl std::fmt::Debug for Replica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replica").field("path", &self.db.path()).finish()
    }
}

impl Replica {
    /// Opens the database at `dir` — typically a
    /// [`Db::checkpoint`](crate::Db::checkpoint) directory — as a replica.
    ///
    /// The directory is opened exactly like a normal database (a partial
    /// checkpoint is refused, a sharded checkpoint's persisted shard count
    /// wins over `options`), and the recovered per-shard sequence numbers
    /// become the replication cursors.
    pub fn bootstrap(dir: impl AsRef<Path>, options: Options) -> Result<Replica> {
        let db = Db::open(dir, options)?;
        let view = RankedRwLock::new(VIEW_RANK, "replica.view", db.snapshot());
        Ok(Replica { db, view })
    }

    /// Ships and applies every primary record past this replica's cursors,
    /// then swaps the serving view to the new (consistent, cross-shard) cut.
    /// Returns the number of records applied; `Ok(0)` means the replica was
    /// already caught up. After a successful call, `lag(primary)` is `0`
    /// unless the primary committed more writes in the meantime.
    pub fn catch_up(&self, primary: &Db) -> Result<u64> {
        if primary.shard_count() != self.db.shard_count() {
            return Err(Error::InvalidArgument(format!(
                "replica has {} shard(s) but the primary has {}",
                self.db.shard_count(),
                primary.shard_count()
            )));
        }
        let cursors: Vec<SeqNo> = self
            .db
            .shards
            .iter()
            .map(|shard| shard.inner.last_seqno.load(Ordering::Acquire))
            .collect();
        let mut shipments = primary.export_wal_shipment(&cursors)?;

        // The export's gate makes tears impossible, but replay reuses
        // recovery's detection anyway: a foreign or hand-damaged shipment
        // must degrade to a consistent cut, not a silently torn one.
        if shipments.len() > 1 {
            let per_shard: Vec<Vec<&LogRecord>> =
                shipments.iter().map(|shipment| shipment.records.iter().collect()).collect();
            let (drops, torn) = torn_batch_drops(&per_shard);
            if torn > 0 {
                self.db.shards[0].inner.stats.add_recovery_torn_batches(torn);
                for (shipment, drop_set) in shipments.iter_mut().zip(&drops) {
                    shipment.records.retain(|record| !drop_set.contains(&record.seqno));
                }
            }
        }

        let mut applied = 0;
        for (shard, shipment) in self.db.shards.iter().zip(&shipments) {
            applied += apply_replicated(&shard.inner, &shipment.records)?;
        }
        // Swap the serving view only now: every shard of the shipped cut is
        // applied, so the fresh snapshot observes the cut (or newer) on all
        // shards at once.
        let fresh = self.db.snapshot();
        *self.view.write() = fresh;
        Ok(applied)
    }

    /// How far this replica trails `primary`: the sum over shards of the
    /// primary's published seqno minus the replica's. `0` means fully caught
    /// up. Advisory under concurrent writes — the primary keeps moving.
    pub fn lag(&self, primary: &Db) -> u64 {
        assert_eq!(
            primary.shard_count(),
            self.db.shard_count(),
            "replica and primary shard counts must match"
        );
        self.db
            .shards
            .iter()
            .zip(&primary.shards)
            .map(|(ours, theirs)| {
                theirs
                    .inner
                    .last_seqno
                    .load(Ordering::Acquire)
                    .saturating_sub(ours.inner.last_seqno.load(Ordering::Acquire))
            })
            .sum()
    }

    /// Point lookup through the rolling view: the value `key` had at the last
    /// completed catch-up cut (or the bootstrap cut), or `None`.
    pub fn get(&self, key: impl AsRef<[u8]>) -> Result<Option<Vec<u8>>> {
        self.view.read().get(key)
    }

    /// Iterates every live key/value pair of the rolling view in key order.
    pub fn scan(&self) -> Result<DbIterator> {
        self.view.read().scan()
    }

    /// The sequence number of the rolling view (largest per-shard cut seqno).
    pub fn view_seqno(&self) -> SeqNo {
        self.view.read().seqno()
    }

    /// The replica's underlying database handle (for stats, file-lifetime
    /// assertions and diagnostics). Writing to it directly would fork the
    /// replica from the primary; don't.
    pub fn db(&self) -> &Db {
        &self.db
    }

    /// Closes the underlying database. Idempotent; dropping does the same.
    pub fn close(&self) -> Result<()> {
        self.db.close()
    }
}

impl Db {
    /// Exports, per shard, every commit-log record past `cursors[shard]`, up
    /// to a target cut captured under the shard-spanning gate — the primary
    /// half of WAL shipping. Cross-shard consistency of the cut comes from
    /// the gate; completeness past the cursor comes from the shipping hold
    /// ([`Db::hold_wal_for_replication`]), which keeps the covering logs on
    /// disk. The per-shard record lists are seqno-ascending and deduplicated
    /// (TRIAD's hot write-back and small-flush rewrites can leave the same
    /// record in two logs).
    pub(crate) fn export_wal_shipment(&self, cursors: &[SeqNo]) -> Result<Vec<ShardShipment>> {
        let (snapshot, shipments) =
            capture_all_shards(&self.shards, &self.router, |index, shard, wal| {
                export_shard_locked(&shard.inner, wal, cursors[index])
            })?;
        // The capture's snapshot was only needed to drain the pipelines; the
        // shipment itself carries the cut.
        drop(snapshot);
        Ok(shipments)
    }
}

/// One shard's export, under its WAL lock with the pipeline drained: flush
/// the active log so its file covers every published record, then read every
/// on-disk commit log and keep the records in `(cursor, target]`. Holding
/// the WAL lock keeps the log set stable — rotation and the collector both
/// need it. Finally the shipping hold is ratcheted to the active log: the
/// next round's records (seqno > target) can only live there or later.
fn export_shard_locked(
    inner: &DbInner,
    wal: &mut WalState,
    cursor: SeqNo,
) -> Result<ShardShipment> {
    wal.writer.flush()?;
    let target = inner.last_seqno.load(Ordering::Acquire);
    let mut records: BTreeMap<SeqNo, LogRecord> = BTreeMap::new();
    if target > cursor {
        let mut log_ids: Vec<u64> = Vec::new();
        let entries = std::fs::read_dir(&inner.path)
            .map_err(|e| Error::io("listing shard directory for WAL shipping", e))?;
        for entry in entries {
            let entry = entry.map_err(|e| Error::io("listing shard directory", e))?;
            if let Some(id) = parse_log_file_name(&entry.file_name().to_string_lossy()) {
                log_ids.push(id);
            }
        }
        log_ids.sort_unstable();
        for id in log_ids {
            let reader = LogReader::open(triad_wal::log_file_path(&inner.path, id))?;
            let (recovered, _tail) = reader.recover()?;
            for recovered in recovered {
                let record = recovered.record;
                if record.seqno > cursor && record.seqno <= target {
                    // Later logs win ties; a rewrite carries identical bytes.
                    records.insert(record.seqno, record);
                }
            }
        }
    }
    // Ratchet the shipping hold forward (never past disarming `u64::MAX`,
    // never backwards): logs below the now-active one are covered by this
    // shipment and may be collected once the replica applies it.
    let active = wal.id;
    let _ = inner.ship_floor.fetch_update(Ordering::AcqRel, Ordering::Acquire, |floor| {
        (floor != u64::MAX && floor < active).then_some(active)
    });
    Ok(ShardShipment { records: records.into_values().collect() })
}

/// Applies one shard's shipped records on the replica: append to the
/// replica's own commit log (seqnos and stamps preserved), insert into its
/// memtable, fsync once for the round, publish, and rotate if the usual
/// thresholds trip — the serialized write path, minus seqno allocation.
fn apply_replicated(inner: &DbInner, records: &[LogRecord]) -> Result<u64> {
    if records.is_empty() {
        return Ok(0);
    }
    let mut wal = inner.wal.lock();
    let mem = inner.mem.read().clone();
    let mut last = inner.last_seqno.load(Ordering::Acquire);
    let mut applied = 0u64;
    for record in records {
        // Idempotency: a re-shipped overlap (e.g. a retried round) lands as
        // a no-op rather than a duplicate insert.
        if record.seqno <= last {
            continue;
        }
        if let Some(stamp) = &record.stamp {
            // The replica re-persists the slice's stamped record in its own
            // log; track it like the primary does so the replica's GC keeps
            // the evidence until every shard's slice graduates there too.
            inner.stamps.note_slice(inner.shard_index, wal.id, stamp);
        }
        let offset = wal.writer.append(record)?;
        inner.stats.add_wal_appends(1);
        inner.stats.add_wal_bytes_written(
            triad_wal::RECORD_HEADER_LEN as u64 + record.encoded_len() as u64,
        );
        mem.insert(
            &record.key,
            &record.value,
            record.seqno,
            record.kind,
            LogPosition { log_id: wal.id, offset },
        );
        last = record.seqno;
        applied += 1;
    }
    if applied == 0 {
        return Ok(0);
    }
    // One fsync per round: the replica's own recovery point must not run
    // ahead of what it would re-ship anyway, but acknowledged rounds should
    // survive a replica crash without re-shipping the world.
    wal.writer.sync()?;
    inner.stats.add_wal_syncs(1);
    wal.writes_since_sync = 0;
    wal.next_seqno = wal.next_seqno.max(last + 1);
    inner.last_seqno.store(last, Ordering::Release);
    inner.stats.add_replica_records_applied(applied);

    let mem_size = mem.approximate_size();
    if mem_size >= inner.options.memtable_size
        || wal.writer.size() as usize >= inner.options.max_log_size
    {
        inner.rotate_locked(&mut wal, &mem, mem_size)?;
    }
    Ok(applied)
}
