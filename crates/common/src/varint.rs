//! Variable-length integer encoding (unsigned LEB128).
//!
//! Used throughout the on-disk formats (commit log records, SSTable blocks,
//! manifest edits) to keep small lengths small.

use crate::error::{Error, Result};

/// Maximum number of bytes a varint-encoded `u64` can occupy.
pub const MAX_VARINT64_LEN: usize = 10;

/// Appends `value` to `out` using unsigned LEB128 encoding.
pub fn encode_u64(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends a `u32` to `out` using unsigned LEB128 encoding.
pub fn encode_u32(out: &mut Vec<u8>, value: u32) {
    encode_u64(out, u64::from(value));
}

/// Decodes a varint `u64` from the front of `input`.
///
/// Returns the decoded value and the number of bytes consumed.
pub fn decode_u64(input: &[u8]) -> Result<(u64, usize)> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    for (idx, byte) in input.iter().enumerate() {
        if idx >= MAX_VARINT64_LEN {
            return Err(Error::corruption("varint longer than 10 bytes"));
        }
        let part = u64::from(byte & 0x7f);
        value |=
            part.checked_shl(shift).ok_or_else(|| Error::corruption("varint overflows u64"))?;
        if byte & 0x80 == 0 {
            return Ok((value, idx + 1));
        }
        shift += 7;
        if shift >= 64 {
            return Err(Error::corruption("varint shift overflows u64"));
        }
    }
    Err(Error::corruption("truncated varint"))
}

/// Decodes a varint `u32` from the front of `input`.
pub fn decode_u32(input: &[u8]) -> Result<(u32, usize)> {
    let (value, read) = decode_u64(input)?;
    let value =
        u32::try_from(value).map_err(|_| Error::corruption("varint does not fit in u32"))?;
    Ok((value, read))
}

/// Appends a length-prefixed byte slice to `out`.
pub fn encode_length_prefixed(out: &mut Vec<u8>, bytes: &[u8]) {
    encode_u64(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

/// Decodes a length-prefixed byte slice from the front of `input`.
///
/// Returns the slice and the total number of bytes consumed (prefix + payload).
pub fn decode_length_prefixed(input: &[u8]) -> Result<(&[u8], usize)> {
    let (len, prefix) = decode_u64(input)?;
    let len =
        usize::try_from(len).map_err(|_| Error::corruption("length prefix overflows usize"))?;
    let end = prefix
        .checked_add(len)
        .ok_or_else(|| Error::corruption("length prefix overflows usize"))?;
    if input.len() < end {
        return Err(Error::corruption("length-prefixed slice is truncated"));
    }
    Ok((&input[prefix..end], end))
}

/// Returns the number of bytes [`encode_u64`] would emit for `value`.
pub fn encoded_len_u64(value: u64) -> usize {
    if value == 0 {
        1
    } else {
        (64 - value.leading_zeros() as usize).div_ceil(7)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_small_values() {
        for value in 0u64..1000 {
            let mut buf = Vec::new();
            encode_u64(&mut buf, value);
            assert_eq!(buf.len(), encoded_len_u64(value));
            let (decoded, read) = decode_u64(&buf).expect("decodes");
            assert_eq!(decoded, value);
            assert_eq!(read, buf.len());
        }
    }

    #[test]
    fn round_trip_boundary_values() {
        for value in [0, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            encode_u64(&mut buf, value);
            let (decoded, read) = decode_u64(&buf).expect("decodes");
            assert_eq!(decoded, value);
            assert_eq!(read, buf.len());
            assert_eq!(buf.len(), encoded_len_u64(value));
        }
    }

    #[test]
    fn decode_rejects_truncation() {
        let mut buf = Vec::new();
        encode_u64(&mut buf, u64::MAX);
        for cut in 0..buf.len() {
            assert!(decode_u64(&buf[..cut]).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn decode_rejects_overlong_encoding() {
        let overlong = [0x80u8; 11];
        assert!(decode_u64(&overlong).is_err());
    }

    #[test]
    fn u32_round_trip_and_range_check() {
        let mut buf = Vec::new();
        encode_u32(&mut buf, u32::MAX);
        let (value, _) = decode_u32(&buf).expect("decodes");
        assert_eq!(value, u32::MAX);

        let mut too_big = Vec::new();
        encode_u64(&mut too_big, u64::from(u32::MAX) + 1);
        assert!(decode_u32(&too_big).is_err());
    }

    #[test]
    fn length_prefixed_round_trip() {
        let payloads: [&[u8]; 4] = [b"", b"x", b"hello world", &[0xffu8; 300]];
        for payload in payloads {
            let mut buf = Vec::new();
            encode_length_prefixed(&mut buf, payload);
            let (decoded, consumed) = decode_length_prefixed(&buf).expect("decodes");
            assert_eq!(decoded, payload);
            assert_eq!(consumed, buf.len());
        }
    }

    #[test]
    fn length_prefixed_rejects_truncated_payload() {
        let mut buf = Vec::new();
        encode_length_prefixed(&mut buf, b"hello");
        buf.truncate(buf.len() - 1);
        assert!(decode_length_prefixed(&buf).is_err());
    }
}
