//! Figure 9A: throughput and write amplification on the production workloads.

use triad_core::TriadConfig;
use triad_workload::{OperationMix, ProductionProfile, ProductionWorkload};

use crate::experiments::{bench_options, fig7_profiles::scale_down_factor, ops_per_thread};
use crate::report::{print_table, Table};
use crate::runner::{run_experiment, ExperimentConfig, Scale};

/// Runs RocksDB-baseline and TRIAD on each production-like workload profile.
pub fn run(scale: Scale) -> triad_common::Result<Table> {
    let factor = scale_down_factor(scale);
    let mut table = Table::new(&[
        "workload",
        "RocksDB KOPS",
        "TRIAD KOPS",
        "speedup",
        "RocksDB WA",
        "TRIAD WA",
        "WA reduction",
    ]);
    for workload in ProductionWorkload::all() {
        let profile = ProductionProfile::new(workload, factor);
        // The production workloads are metadata update streams; drive them write-only
        // as the paper's throughput numbers are for applying the workload.
        let spec = profile.to_spec(OperationMix::new(0.0, 1.0, 0.0));
        let ops = ops_per_thread(scale).min(profile.num_updates / 8 + 1);

        let run_one = |label: &str, triad: TriadConfig| -> triad_common::Result<_> {
            let config = ExperimentConfig::new(
                format!("fig9a-{label}-{}", profile.workload.label()),
                bench_options(scale, triad),
                spec.clone(),
            )
            .with_threads(8)
            .with_ops_per_thread(ops);
            run_experiment(&config)
        };
        let baseline = run_one("rocksdb", TriadConfig::baseline())?;
        let triad = run_one("triad", TriadConfig::all_enabled())?;
        table.add_row(vec![
            profile.workload.label().to_string(),
            format!("{:.1}", baseline.kops),
            format!("{:.1}", triad.kops),
            format!("{:.0}%", (triad.kops / baseline.kops.max(1e-9) - 1.0) * 100.0),
            format!("{:.2}", baseline.write_amplification),
            format!("{:.2}", triad.write_amplification),
            format!("{:.2}x", baseline.write_amplification / triad.write_amplification.max(1e-9)),
        ]);
    }
    print_table(
        "Figure 9A: production workloads, throughput and write amplification (8 threads)",
        &table,
        "TRIAD improves throughput by up to 193% and reduces WA by up to 4x; its WA is \
         uniform across workloads while RocksDB's WA is higher for the less-skewed W1/W3",
    );
    Ok(table)
}
