// lint-fixture: crates/core/src/flush.rs
// Every engine failpoint is armed by a test and every test-side name exists.

fn flush_one(&self) {
    self.failpoints.check("flush.fixture_point");
}
