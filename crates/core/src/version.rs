//! Versions: immutable snapshots of the LSM tree's file layout.
//!
//! A [`Version`] records which table files live on which level. Flushes and
//! compactions never mutate a version in place; they produce a [`VersionEdit`]
//! (files added, files deleted, counters advanced) that is first appended to the
//! manifest for durability and then applied to yield the next version. Reads grab an
//! `Arc<Version>` and are therefore never blocked by background work.
//!
//! Versions also govern *file lifetime*: a table file (or the commit log backing a
//! CL-SSTable) may be physically deleted only once no live version references it.
//! The [`VersionSet`](crate::manifest::VersionSet) keeps a weak-reference registry of
//! every installed version, so the strong count of an `Arc<Version>` — held by the
//! engine for the current version and by readers for pinned older ones — *is* the
//! reference count that garbage collection consults.

use std::collections::{BTreeSet, HashSet};
use std::sync::Arc;

use triad_common::types::InternalKey;
use triad_common::varint;
use triad_common::{Error, Result};
use triad_hll::HyperLogLog;
use triad_sstable::TableKind;

/// Metadata describing one on-disk table file.
#[derive(Debug, Clone, PartialEq)]
pub struct FileMetadata {
    /// Unique file id (also determines the file name).
    pub id: u64,
    /// Level the file belongs to.
    pub level: u32,
    /// Whether the file is a regular SSTable or a CL-SSTable index.
    pub kind: TableKind,
    /// On-disk size in bytes of the table (for CL-SSTables, the index file only).
    pub size: u64,
    /// Number of entries in the table.
    pub num_entries: u64,
    /// Smallest internal key in the table.
    pub smallest: InternalKey,
    /// Largest internal key in the table.
    pub largest: InternalKey,
    /// HyperLogLog sketch of the table's user keys (TRIAD-DISK).
    pub hll: HyperLogLog,
    /// For CL-SSTables, the id of the commit log holding the values.
    pub backing_log_id: Option<u64>,
}

impl FileMetadata {
    /// Returns `true` if the file's user-key range overlaps `[start, end]`.
    pub fn overlaps_user_range(&self, start: &[u8], end: &[u8]) -> bool {
        self.smallest.user_key.as_slice() <= end && start <= self.largest.user_key.as_slice()
    }

    /// Returns `true` if `user_key` falls inside the file's key range.
    pub fn may_contain_user_key(&self, user_key: &[u8]) -> bool {
        self.overlaps_user_range(user_key, user_key)
    }

    /// Serializes the metadata for inclusion in a [`VersionEdit`].
    pub fn encode(&self, out: &mut Vec<u8>) {
        varint::encode_u64(out, self.id);
        varint::encode_u32(out, self.level);
        out.push(self.kind.as_u8());
        varint::encode_u64(out, self.size);
        varint::encode_u64(out, self.num_entries);
        varint::encode_length_prefixed(out, &self.smallest.encode());
        varint::encode_length_prefixed(out, &self.largest.encode());
        varint::encode_length_prefixed(out, &self.hll.to_bytes());
        match self.backing_log_id {
            Some(id) => {
                out.push(1);
                varint::encode_u64(out, id);
            }
            None => out.push(0),
        }
    }

    /// Parses metadata previously produced by [`encode`](Self::encode), returning the
    /// metadata and the number of bytes consumed.
    pub fn decode(bytes: &[u8]) -> Result<(FileMetadata, usize)> {
        let mut pos = 0usize;
        let (id, read) = varint::decode_u64(&bytes[pos..])?;
        pos += read;
        let (level, read) = varint::decode_u32(&bytes[pos..])?;
        pos += read;
        let kind_tag =
            *bytes.get(pos).ok_or_else(|| Error::corruption("file metadata truncated at kind"))?;
        let kind = TableKind::from_u8(kind_tag).ok_or_else(|| {
            Error::corruption(format!("invalid table kind {kind_tag} in manifest"))
        })?;
        pos += 1;
        let (size, read) = varint::decode_u64(&bytes[pos..])?;
        pos += read;
        let (num_entries, read) = varint::decode_u64(&bytes[pos..])?;
        pos += read;
        let (smallest_bytes, read) = varint::decode_length_prefixed(&bytes[pos..])?;
        let smallest = InternalKey::decode(smallest_bytes)
            .ok_or_else(|| Error::corruption("invalid smallest key in manifest"))?;
        pos += read;
        let (largest_bytes, read) = varint::decode_length_prefixed(&bytes[pos..])?;
        let largest = InternalKey::decode(largest_bytes)
            .ok_or_else(|| Error::corruption("invalid largest key in manifest"))?;
        pos += read;
        let (hll_bytes, read) = varint::decode_length_prefixed(&bytes[pos..])?;
        let hll = HyperLogLog::from_bytes(hll_bytes)?;
        pos += read;
        let tag = *bytes
            .get(pos)
            .ok_or_else(|| Error::corruption("file metadata truncated at log id"))?;
        pos += 1;
        let backing_log_id = match tag {
            0 => None,
            1 => {
                let (id, read) = varint::decode_u64(&bytes[pos..])?;
                pos += read;
                Some(id)
            }
            other => {
                return Err(Error::corruption(format!(
                    "invalid backing-log tag {other} in manifest"
                )))
            }
        };
        Ok((
            FileMetadata {
                id,
                level,
                kind,
                size,
                num_entries,
                smallest,
                largest,
                hll,
                backing_log_id,
            },
            pos,
        ))
    }
}

/// A set of changes taking one [`Version`] to the next.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VersionEdit {
    /// Files added by this edit.
    pub added: Vec<FileMetadata>,
    /// Files removed by this edit, as `(level, file id)` pairs.
    pub deleted: Vec<(u32, u64)>,
    /// New value of the next-file-number counter, if advanced.
    pub next_file_number: Option<u64>,
    /// New value of the last sequence number, if advanced.
    pub last_seqno: Option<u64>,
    /// Id of the oldest commit log whose contents are *not* yet reflected in the
    /// tables of this version (i.e. logs with smaller ids are safe to ignore during
    /// recovery unless a CL-SSTable references them).
    pub log_number: Option<u64>,
}

impl VersionEdit {
    /// Returns `true` when the edit changes nothing.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty()
            && self.deleted.is_empty()
            && self.next_file_number.is_none()
            && self.last_seqno.is_none()
            && self.log_number.is_none()
    }

    /// Serializes the edit.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        varint::encode_u64(&mut out, self.added.len() as u64);
        for file in &self.added {
            file.encode(&mut out);
        }
        varint::encode_u64(&mut out, self.deleted.len() as u64);
        for (level, id) in &self.deleted {
            varint::encode_u32(&mut out, *level);
            varint::encode_u64(&mut out, *id);
        }
        encode_option(&mut out, self.next_file_number);
        encode_option(&mut out, self.last_seqno);
        encode_option(&mut out, self.log_number);
        out
    }

    /// Parses an edit previously produced by [`encode`](Self::encode).
    pub fn decode(bytes: &[u8]) -> Result<VersionEdit> {
        let mut pos = 0usize;
        let (added_count, read) = varint::decode_u64(&bytes[pos..])?;
        pos += read;
        let mut added = Vec::with_capacity(added_count as usize);
        for _ in 0..added_count {
            let (file, read) = FileMetadata::decode(&bytes[pos..])?;
            pos += read;
            added.push(file);
        }
        let (deleted_count, read) = varint::decode_u64(&bytes[pos..])?;
        pos += read;
        let mut deleted = Vec::with_capacity(deleted_count as usize);
        for _ in 0..deleted_count {
            let (level, read) = varint::decode_u32(&bytes[pos..])?;
            pos += read;
            let (id, read) = varint::decode_u64(&bytes[pos..])?;
            pos += read;
            deleted.push((level, id));
        }
        let (next_file_number, read) = decode_option(&bytes[pos..])?;
        pos += read;
        let (last_seqno, read) = decode_option(&bytes[pos..])?;
        pos += read;
        let (log_number, read) = decode_option(&bytes[pos..])?;
        pos += read;
        if pos != bytes.len() {
            return Err(Error::corruption("version edit has trailing bytes"));
        }
        Ok(VersionEdit { added, deleted, next_file_number, last_seqno, log_number })
    }
}

fn encode_option(out: &mut Vec<u8>, value: Option<u64>) {
    match value {
        Some(v) => {
            out.push(1);
            varint::encode_u64(out, v);
        }
        None => out.push(0),
    }
}

fn decode_option(bytes: &[u8]) -> Result<(Option<u64>, usize)> {
    let tag = *bytes.first().ok_or_else(|| Error::corruption("truncated optional field"))?;
    match tag {
        0 => Ok((None, 1)),
        1 => {
            let (value, read) = varint::decode_u64(&bytes[1..])?;
            Ok((Some(value), 1 + read))
        }
        other => Err(Error::corruption(format!("invalid option tag {other}"))),
    }
}

/// An immutable snapshot of the table layout.
#[derive(Debug, Clone, Default)]
pub struct Version {
    /// `levels[i]` holds the files of level `i`. L0 is ordered newest-first (by file
    /// id, descending); deeper levels are ordered by smallest user key.
    pub levels: Vec<Vec<Arc<FileMetadata>>>,
}

impl Version {
    /// Creates an empty version with `num_levels` levels.
    pub fn empty(num_levels: usize) -> Self {
        Version { levels: vec![Vec::new(); num_levels] }
    }

    /// Number of levels.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Number of files on `level`.
    pub fn num_files(&self, level: usize) -> usize {
        self.levels.get(level).map_or(0, Vec::len)
    }

    /// Total on-disk bytes of `level`.
    pub fn level_size(&self, level: usize) -> u64 {
        self.levels.get(level).map_or(0, |files| files.iter().map(|f| f.size).sum())
    }

    /// Total number of files across all levels.
    pub fn total_files(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// The deepest level that currently holds any file, if the tree is non-empty.
    pub fn deepest_populated_level(&self) -> Option<usize> {
        (0..self.levels.len()).rev().find(|&level| !self.levels[level].is_empty())
    }

    /// Files on `level` whose key range overlaps `[start, end]` (user keys).
    pub fn overlapping_files(
        &self,
        level: usize,
        start: &[u8],
        end: &[u8],
    ) -> Vec<Arc<FileMetadata>> {
        self.levels
            .get(level)
            .map(|files| {
                files.iter().filter(|f| f.overlaps_user_range(start, end)).cloned().collect()
            })
            .unwrap_or_default()
    }

    /// Files that a point lookup of `user_key` must consult on `level`, in the order
    /// they must be consulted (newest first for L0, the single candidate for deeper
    /// levels).
    pub fn files_for_key(&self, level: usize, user_key: &[u8]) -> Vec<Arc<FileMetadata>> {
        if level == 0 {
            return self.overlapping_files(0, user_key, user_key);
        }
        // Deeper levels have disjoint ranges sorted by smallest key: binary search.
        let files = match self.levels.get(level) {
            Some(files) if !files.is_empty() => files,
            _ => return Vec::new(),
        };
        let idx = files.partition_point(|f| f.largest.user_key.as_slice() < user_key);
        match files.get(idx) {
            Some(file) if file.may_contain_user_key(user_key) => vec![Arc::clone(file)],
            _ => Vec::new(),
        }
    }

    /// Applies `edit`, producing the next version.
    pub fn apply(&self, edit: &VersionEdit) -> Result<Version> {
        let mut levels = self.levels.clone();
        for (level, id) in &edit.deleted {
            let level = *level as usize;
            if level >= levels.len() {
                return Err(Error::corruption(format!(
                    "edit deletes file {id} on unknown level {level}"
                )));
            }
            let before = levels[level].len();
            levels[level].retain(|f| f.id != *id);
            if levels[level].len() == before {
                return Err(Error::corruption(format!(
                    "edit deletes unknown file {id} on level {level}"
                )));
            }
        }
        for file in &edit.added {
            let level = file.level as usize;
            while levels.len() <= level {
                levels.push(Vec::new());
            }
            if levels.iter().flatten().any(|f| f.id == file.id) {
                return Err(Error::corruption(format!("edit adds duplicate file id {}", file.id)));
            }
            levels[level].push(Arc::new(file.clone()));
        }
        // Restore level ordering invariants.
        if let Some(l0) = levels.get_mut(0) {
            l0.sort_by_key(|file| std::cmp::Reverse(file.id));
        }
        for level in levels.iter_mut().skip(1) {
            level.sort_by(|a, b| a.smallest.user_key.cmp(&b.smallest.user_key));
        }
        Ok(Version { levels })
    }

    /// Ids of every live table file.
    pub fn live_file_ids(&self) -> HashSet<u64> {
        self.levels.iter().flatten().map(|f| f.id).collect()
    }

    /// Ids of every commit log referenced by a live CL-SSTable.
    pub fn live_backing_logs(&self) -> HashSet<u64> {
        self.levels.iter().flatten().filter_map(|f| f.backing_log_id).collect()
    }

    /// Names of every on-disk file this version references: table files, CL index
    /// files and the commit logs backing them. Used by garbage collection and by
    /// the disk-consistency diagnostics.
    pub fn referenced_file_names(&self) -> BTreeSet<String> {
        let mut names = BTreeSet::new();
        for file in self.levels.iter().flatten() {
            match file.kind {
                TableKind::Block => {
                    names.insert(triad_sstable::sst_file_name(file.id));
                }
                TableKind::CommitLogIndex => {
                    names.insert(triad_sstable::cl_index_file_name(file.id));
                }
            }
            if let Some(log_id) = file.backing_log_id {
                names.insert(triad_wal::log_file_name(log_id));
            }
        }
        names
    }

    /// Checks the structural invariants of the version (levels ≥ 1 sorted and
    /// non-overlapping). Used by tests and debug assertions.
    pub fn check_invariants(&self) -> Result<()> {
        for (level, files) in self.levels.iter().enumerate().skip(1) {
            for pair in files.windows(2) {
                if pair[0].largest.user_key >= pair[1].smallest.user_key {
                    return Err(Error::corruption(format!(
                        "level {level} files {} and {} overlap",
                        pair[0].id, pair[1].id
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triad_common::types::ValueKind;

    fn file(id: u64, level: u32, smallest: &str, largest: &str) -> FileMetadata {
        let mut hll = HyperLogLog::new();
        hll.add(smallest.as_bytes());
        hll.add(largest.as_bytes());
        FileMetadata {
            id,
            level,
            kind: TableKind::Block,
            size: 1_000 + id,
            num_entries: 10,
            smallest: InternalKey::new(smallest.as_bytes().to_vec(), 100, ValueKind::Put),
            largest: InternalKey::new(largest.as_bytes().to_vec(), 1, ValueKind::Put),
            hll,
            backing_log_id: None,
        }
    }

    #[test]
    fn file_metadata_round_trip() {
        let mut original = file(7, 2, "aaa", "mmm");
        original.backing_log_id = Some(42);
        original.kind = TableKind::CommitLogIndex;
        let mut bytes = Vec::new();
        original.encode(&mut bytes);
        let (decoded, consumed) = FileMetadata::decode(&bytes).unwrap();
        assert_eq!(decoded, original);
        assert_eq!(consumed, bytes.len());
    }

    #[test]
    fn version_edit_round_trip() {
        let edit = VersionEdit {
            added: vec![file(3, 0, "a", "z"), file(4, 1, "b", "c")],
            deleted: vec![(0, 1), (1, 2)],
            next_file_number: Some(5),
            last_seqno: Some(999),
            log_number: Some(7),
        };
        let decoded = VersionEdit::decode(&edit.encode()).unwrap();
        assert_eq!(decoded, edit);
        assert!(!edit.is_empty());
        assert!(VersionEdit::default().is_empty());
    }

    #[test]
    fn version_edit_decode_rejects_corruption() {
        let edit = VersionEdit { added: vec![file(1, 0, "a", "b")], ..Default::default() };
        let bytes = edit.encode();
        assert!(VersionEdit::decode(&bytes[..bytes.len() - 2]).is_err());
        let mut trailing = bytes.clone();
        trailing.push(9);
        assert!(VersionEdit::decode(&trailing).is_err());
    }

    #[test]
    fn apply_adds_and_removes_files() {
        let version = Version::empty(3);
        let edit = VersionEdit {
            added: vec![
                file(1, 0, "a", "m"),
                file(2, 0, "c", "z"),
                file(3, 1, "a", "f"),
                file(4, 1, "g", "z"),
            ],
            ..Default::default()
        };
        let next = version.apply(&edit).unwrap();
        assert_eq!(next.num_files(0), 2);
        assert_eq!(next.num_files(1), 2);
        assert_eq!(next.total_files(), 4);
        // L0 is newest-first.
        assert_eq!(next.levels[0][0].id, 2);
        // L1 is sorted by smallest key.
        assert_eq!(next.levels[1][0].id, 3);
        next.check_invariants().unwrap();

        let removal = VersionEdit { deleted: vec![(0, 1), (1, 4)], ..Default::default() };
        let after = next.apply(&removal).unwrap();
        assert_eq!(after.num_files(0), 1);
        assert_eq!(after.num_files(1), 1);
        assert_eq!(after.deepest_populated_level(), Some(1));
    }

    #[test]
    fn apply_rejects_bad_edits() {
        let version = Version::empty(2);
        let unknown_delete = VersionEdit { deleted: vec![(0, 99)], ..Default::default() };
        assert!(version.apply(&unknown_delete).is_err());

        let with_file = version
            .apply(&VersionEdit { added: vec![file(1, 0, "a", "b")], ..Default::default() })
            .unwrap();
        let duplicate = VersionEdit { added: vec![file(1, 1, "c", "d")], ..Default::default() };
        assert!(with_file.apply(&duplicate).is_err());
    }

    #[test]
    fn lookup_consults_all_overlapping_l0_but_one_deeper_file() {
        let version = Version::empty(3)
            .apply(&VersionEdit {
                added: vec![
                    file(1, 0, "a", "m"),
                    file(2, 0, "k", "z"),
                    file(3, 1, "a", "f"),
                    file(4, 1, "g", "p"),
                    file(5, 1, "q", "z"),
                ],
                ..Default::default()
            })
            .unwrap();
        // "l" falls in both L0 files but only one L1 file.
        let l0 = version.files_for_key(0, b"l");
        assert_eq!(l0.len(), 2);
        assert!(l0[0].id > l0[1].id, "newest L0 file first");
        let l1 = version.files_for_key(1, b"l");
        assert_eq!(l1.len(), 1);
        assert_eq!(l1[0].id, 4);
        // A key outside every range.
        assert!(version.files_for_key(1, b"zz").is_empty());
        assert!(version.files_for_key(2, b"l").is_empty());
    }

    #[test]
    fn overlapping_files_matches_ranges() {
        let version = Version::empty(2)
            .apply(&VersionEdit {
                added: vec![file(1, 1, "a", "f"), file(2, 1, "g", "p"), file(3, 1, "q", "z")],
                ..Default::default()
            })
            .unwrap();
        let overlap = version.overlapping_files(1, b"e", b"h");
        let ids: Vec<u64> = overlap.iter().map(|f| f.id).collect();
        assert_eq!(ids, vec![1, 2]);
        assert!(version.overlapping_files(1, b"zz", b"zzz").is_empty());
        assert_eq!(version.overlapping_files(1, b"a", b"z").len(), 3);
    }

    #[test]
    fn live_sets_track_files_and_backing_logs() {
        let mut cl_file = file(9, 0, "a", "b");
        cl_file.kind = TableKind::CommitLogIndex;
        cl_file.backing_log_id = Some(77);
        let version = Version::empty(2)
            .apply(&VersionEdit {
                added: vec![file(1, 1, "a", "b"), cl_file],
                ..Default::default()
            })
            .unwrap();
        assert_eq!(version.live_file_ids(), HashSet::from([1, 9]));
        assert_eq!(version.live_backing_logs(), HashSet::from([77]));
        assert_eq!(
            version.referenced_file_names(),
            BTreeSet::from([
                "000001.sst".to_string(),
                "000009.clidx".to_string(),
                "000077.log".to_string(),
            ])
        );
    }

    #[test]
    fn invariant_check_detects_overlap() {
        // Build a bad version by hand: two overlapping files on L1.
        let version = Version {
            levels: vec![
                vec![],
                vec![Arc::new(file(1, 1, "a", "m")), Arc::new(file(2, 1, "k", "z"))],
            ],
        };
        assert!(version.check_invariants().is_err());
    }

    #[test]
    fn level_sizes_sum_file_sizes() {
        let version = Version::empty(2)
            .apply(&VersionEdit {
                added: vec![file(1, 1, "a", "b"), file(2, 1, "c", "d")],
                ..Default::default()
            })
            .unwrap();
        assert_eq!(version.level_size(1), 1_001 + 1_002);
        assert_eq!(version.level_size(0), 0);
        assert_eq!(version.level_size(9), 0);
    }
}
