// lint-fixture: crates/core/src/flush.rs
// Engine code locks through parking_lot (or the ranked wrappers); std::sync
// atomics and Arc remain fine.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn state() {
    let guard = parking_lot::RwLock::new(());
}
