//! The sorted key/value block format.
//!
//! Blocks are the unit of I/O inside an SSTable. Both data blocks (internal key →
//! value) and index blocks (last internal key of a data block → encoded block
//! handle) share this format:
//!
//! ```text
//! entry*   := varint(key_len) varint(value_len) key value
//! trailer  := u32-LE entry_offset * num_entries, u32-LE num_entries
//! ```
//!
//! The offset array in the trailer enables binary search by internal key without
//! decoding the whole block.

use std::cmp::Ordering;

use triad_common::types::compare_encoded_internal_keys;
use triad_common::varint;
use triad_common::{Error, Result};

/// Builds a block by appending keys in sorted order.
#[derive(Debug, Default)]
pub struct BlockBuilder {
    buf: Vec<u8>,
    offsets: Vec<u32>,
    last_key: Vec<u8>,
}

impl BlockBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an entry. Keys must be added in non-decreasing encoded-internal-key order.
    pub fn add(&mut self, key: &[u8], value: &[u8]) {
        debug_assert!(
            self.offsets.is_empty()
                || compare_encoded_internal_keys(&self.last_key, key) != Ordering::Greater,
            "block entries must be added in sorted order"
        );
        self.offsets.push(self.buf.len() as u32);
        varint::encode_u64(&mut self.buf, key.len() as u64);
        varint::encode_u64(&mut self.buf, value.len() as u64);
        self.buf.extend_from_slice(key);
        self.buf.extend_from_slice(value);
        self.last_key.clear();
        self.last_key.extend_from_slice(key);
    }

    /// Number of entries added so far.
    pub fn num_entries(&self) -> usize {
        self.offsets.len()
    }

    /// Returns `true` when no entries have been added.
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// Estimated size of the finished block in bytes.
    pub fn size_estimate(&self) -> usize {
        self.buf.len() + self.offsets.len() * 4 + 4
    }

    /// The last key added, if any.
    pub fn last_key(&self) -> Option<&[u8]> {
        if self.offsets.is_empty() {
            None
        } else {
            Some(&self.last_key)
        }
    }

    /// Finishes the block and returns its serialized bytes, resetting the builder.
    pub fn finish(&mut self) -> Vec<u8> {
        let mut out = std::mem::take(&mut self.buf);
        for offset in &self.offsets {
            out.extend_from_slice(&offset.to_le_bytes());
        }
        out.extend_from_slice(&(self.offsets.len() as u32).to_le_bytes());
        self.offsets.clear();
        self.last_key.clear();
        out
    }
}

/// A decoded, immutable block supporting binary search and iteration.
#[derive(Debug, Clone)]
pub struct Block {
    data: Vec<u8>,
    offsets: Vec<u32>,
}

impl Block {
    /// Parses a block produced by [`BlockBuilder::finish`].
    pub fn new(bytes: Vec<u8>) -> Result<Block> {
        if bytes.len() < 4 {
            return Err(Error::corruption("block shorter than its trailer"));
        }
        let count_pos = bytes.len() - 4;
        let count = u32::from_le_bytes(bytes[count_pos..].try_into().expect("4 bytes")) as usize;
        let offsets_len =
            count.checked_mul(4).ok_or_else(|| Error::corruption("block entry count overflows"))?;
        if count_pos < offsets_len {
            return Err(Error::corruption("block trailer larger than block"));
        }
        let offsets_start = count_pos - offsets_len;
        let mut offsets = Vec::with_capacity(count);
        for i in 0..count {
            let at = offsets_start + i * 4;
            let offset = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"));
            if offset as usize >= offsets_start && !(offset == 0 && offsets_start == 0) {
                return Err(Error::corruption("block entry offset out of range"));
            }
            offsets.push(offset);
        }
        let mut data = bytes;
        data.truncate(offsets_start);
        Ok(Block { data, offsets })
    }

    /// Number of entries in the block.
    pub fn num_entries(&self) -> usize {
        self.offsets.len()
    }

    /// Resident size of the decoded block in bytes — what a block cache
    /// charges against its byte budget.
    pub fn size_bytes(&self) -> usize {
        self.data.len() + self.offsets.len() * 4
    }

    /// Returns `true` when the block holds no entries.
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// Returns the `(key, value)` pair at `index`.
    pub fn entry(&self, index: usize) -> Result<(&[u8], &[u8])> {
        let start =
            *self.offsets.get(index).ok_or_else(|| {
                Error::corruption(format!("block entry index {index} out of range"))
            })? as usize;
        let slice = &self.data[start..];
        let (key_len, read1) = varint::decode_u64(slice)?;
        let (value_len, read2) = varint::decode_u64(&slice[read1..])?;
        let key_start = read1 + read2;
        let key_end = key_start + key_len as usize;
        let value_end = key_end + value_len as usize;
        if value_end > slice.len() {
            return Err(Error::corruption("block entry extends past block data"));
        }
        Ok((&slice[key_start..key_end], &slice[key_end..value_end]))
    }

    /// Returns the index of the first entry whose key is `>= target` (encoded internal
    /// key comparison), or `num_entries()` if every key is smaller.
    pub fn seek(&self, target: &[u8]) -> Result<usize> {
        let mut lo = 0usize;
        let mut hi = self.offsets.len();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let (key, _) = self.entry(mid)?;
            match compare_encoded_internal_keys(key, target) {
                Ordering::Less => lo = mid + 1,
                _ => hi = mid,
            }
        }
        Ok(lo)
    }

    /// Iterates over every `(key, value)` pair in order.
    pub fn iter(&self) -> BlockIter<'_> {
        BlockIter { block: self, index: 0 }
    }
}

/// Iterator over the entries of a [`Block`].
#[derive(Debug)]
pub struct BlockIter<'a> {
    block: &'a Block,
    index: usize,
}

impl<'a> Iterator for BlockIter<'a> {
    type Item = Result<(&'a [u8], &'a [u8])>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.index >= self.block.num_entries() {
            return None;
        }
        let item = self.block.entry(self.index);
        self.index += 1;
        Some(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triad_common::types::{InternalKey, ValueKind};

    fn encoded(user_key: &str, seqno: u64) -> Vec<u8> {
        InternalKey::new(user_key.as_bytes().to_vec(), seqno, ValueKind::Put).encode()
    }

    #[test]
    fn build_and_read_back() {
        let mut builder = BlockBuilder::new();
        assert!(builder.is_empty());
        let keys: Vec<Vec<u8>> = (0..100).map(|i| encoded(&format!("key-{i:03}"), 1)).collect();
        for (i, key) in keys.iter().enumerate() {
            builder.add(key, format!("value-{i}").as_bytes());
        }
        assert_eq!(builder.num_entries(), 100);
        assert!(builder.size_estimate() > 0);
        let block = Block::new(builder.finish()).unwrap();
        assert_eq!(block.num_entries(), 100);
        for (i, key) in keys.iter().enumerate() {
            let (k, v) = block.entry(i).unwrap();
            assert_eq!(k, key.as_slice());
            assert_eq!(v, format!("value-{i}").as_bytes());
        }
    }

    #[test]
    fn empty_block_round_trip() {
        let mut builder = BlockBuilder::new();
        let block = Block::new(builder.finish()).unwrap();
        assert!(block.is_empty());
        assert_eq!(block.seek(&encoded("anything", 1)).unwrap(), 0);
        assert!(block.iter().next().is_none());
    }

    #[test]
    fn seek_finds_first_not_less_entry() {
        let mut builder = BlockBuilder::new();
        for i in (0..50).map(|i| i * 2) {
            builder.add(&encoded(&format!("key-{i:03}"), 5), b"v");
        }
        let block = Block::new(builder.finish()).unwrap();
        // Exact hit.
        let idx = block.seek(&encoded("key-010", 5)).unwrap();
        let (key, _) = block.entry(idx).unwrap();
        assert_eq!(InternalKey::decode(key).unwrap().user_key, b"key-010");
        // Between two keys: lands on the next larger one.
        let idx = block.seek(&encoded("key-011", 5)).unwrap();
        let (key, _) = block.entry(idx).unwrap();
        assert_eq!(InternalKey::decode(key).unwrap().user_key, b"key-012");
        // Before the first key.
        assert_eq!(block.seek(&encoded("key-", 5)).unwrap(), 0);
        // Past the last key.
        assert_eq!(block.seek(&encoded("zzz", 5)).unwrap(), block.num_entries());
    }

    #[test]
    fn seek_respects_seqno_ordering_within_a_user_key() {
        let mut builder = BlockBuilder::new();
        // Newest (seqno 9) sorts before older (seqno 3) for the same user key.
        builder.add(&encoded("dup", 9), b"new");
        builder.add(&encoded("dup", 3), b"old");
        let block = Block::new(builder.finish()).unwrap();
        // A lookup at snapshot 100 must find the newest version first.
        let idx = block.seek(&InternalKey::for_lookup(b"dup".to_vec(), 100).encode()).unwrap();
        let (_, value) = block.entry(idx).unwrap();
        assert_eq!(value, b"new");
        // A lookup at snapshot 5 must skip the version with seqno 9.
        let idx = block.seek(&InternalKey::for_lookup(b"dup".to_vec(), 5).encode()).unwrap();
        let (_, value) = block.entry(idx).unwrap();
        assert_eq!(value, b"old");
    }

    #[test]
    fn iterator_yields_everything_in_order() {
        let mut builder = BlockBuilder::new();
        let keys: Vec<Vec<u8>> = (0..20).map(|i| encoded(&format!("{i:02}"), 1)).collect();
        for key in &keys {
            builder.add(key, b"x");
        }
        let block = Block::new(builder.finish()).unwrap();
        let collected: Vec<Vec<u8>> = block.iter().map(|r| r.unwrap().0.to_vec()).collect();
        assert_eq!(collected, keys);
    }

    #[test]
    fn corrupt_blocks_are_rejected() {
        assert!(Block::new(vec![1, 2]).is_err(), "shorter than trailer");
        // Claim more entries than could possibly fit.
        let mut bytes = vec![0u8; 8];
        bytes.extend_from_slice(&1000u32.to_le_bytes());
        assert!(Block::new(bytes).is_err());
        // Entry offset pointing into the trailer.
        let mut builder = BlockBuilder::new();
        builder.add(&encoded("a", 1), b"v");
        let mut good = builder.finish();
        let len = good.len();
        // Overwrite the single offset (4 bytes before the count) with a huge value.
        good[len - 8..len - 4].copy_from_slice(&0xffff_0000u32.to_le_bytes());
        assert!(Block::new(good).is_err());
    }

    #[test]
    fn builder_resets_after_finish() {
        let mut builder = BlockBuilder::new();
        builder.add(&encoded("a", 1), b"1");
        let first = builder.finish();
        assert!(builder.is_empty());
        builder.add(&encoded("b", 1), b"2");
        let second = builder.finish();
        let first_block = Block::new(first).unwrap();
        let second_block = Block::new(second).unwrap();
        assert_eq!(first_block.num_entries(), 1);
        assert_eq!(second_block.num_entries(), 1);
        let (key, _) = second_block.entry(0).unwrap();
        assert_eq!(InternalKey::decode(key).unwrap().user_key, b"b");
    }
}
