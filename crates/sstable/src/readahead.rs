//! A small fixed-size I/O worker pool for sequential readahead.
//!
//! Scan and compaction iterators walk a table's data blocks in order, so the
//! next block each iterator needs is known one step in advance. When a table
//! is opened with a [`FetchContext`](crate::FetchContext) whose `readahead`
//! pool is set, [`TableIterator`](crate::reader::TableIterator) hands the
//! *next* block's read to this pool while the merge consumes the current one,
//! overlapping disk (or page-cache syscall) latency with merging. Prefetched
//! blocks land in the shared block cache through the same single-flight
//! [`BlockFetch`](crate::BlockFetch) path as foreground reads, so a prefetch
//! and a foreground probe for the same block still do one read between them.
//!
//! Jobs are best-effort: they run soon, in submission order, and any I/O
//! error is swallowed (the foreground read will surface it). The vendored
//! crossbeam-channel stand-in is not a dependency of this crate, so the pool
//! distributes work over a `std::sync::mpsc` channel whose receiver the
//! workers share behind a `parking_lot::Mutex` — a worker holds the lock only
//! to dequeue, never while running a job.

use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;

/// A prefetch task. Boxed so callers can capture whatever table handle and
/// block coordinates they need.
type Job = Box<dyn FnOnce() + Send>;

/// A fixed pool of named worker threads draining a shared job queue.
///
/// Dropping the pool closes the queue and joins every worker; queued jobs
/// still run before shutdown completes (they only touch the cache, so
/// finishing them is cheaper than tracking cancellation).
pub struct IoPool {
    sender: Mutex<Option<mpsc::Sender<Job>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl IoPool {
    /// Spawns `threads` workers (clamped to at least one).
    pub fn new(threads: usize) -> IoPool {
        let (sender, receiver) = mpsc::channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..threads.max(1))
            .map(|index| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("triad-io-{index}"))
                    .spawn(move || loop {
                        // Dequeue under the lock, run outside it: the other
                        // workers only wait while this one is *receiving*,
                        // not while it is executing a job.
                        let job = {
                            let guard = receiver.lock();
                            guard.recv()
                        };
                        match job {
                            Ok(job) => job(),
                            // Channel closed: the pool is shutting down.
                            Err(_) => return,
                        }
                    })
                    .expect("spawn io pool worker")
            })
            .collect();
        IoPool { sender: Mutex::new(Some(sender)), workers: Mutex::new(workers) }
    }

    /// Enqueues a job. Silently ignored if the pool is already shutting down
    /// — readahead is an optimization, never a correctness dependency.
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        if let Some(sender) = self.sender.lock().as_ref() {
            let _ = sender.send(Box::new(job));
        }
    }
}

impl Drop for IoPool {
    fn drop(&mut self) {
        // Dropping the sender closes the channel; workers drain what is
        // queued and exit on the resulting `RecvError`.
        *self.sender.lock() = None;
        for worker in self.workers.lock().drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn jobs_run_and_drop_joins_cleanly() {
        let counter = Arc::new(AtomicUsize::new(0));
        let pool = IoPool::new(3);
        for _ in 0..64 {
            let counter = Arc::clone(&counter);
            pool.spawn(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        // Drop closes the queue only after every queued job has been drained.
        drop(pool);
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn zero_threads_is_clamped_to_one() {
        let pool = IoPool::new(0);
        let counter = Arc::new(AtomicUsize::new(0));
        let counter_clone = Arc::clone(&counter);
        pool.spawn(move || {
            counter_clone.fetch_add(1, Ordering::Relaxed);
        });
        drop(pool);
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }
}
