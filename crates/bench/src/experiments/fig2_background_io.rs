//! Figure 2: the throughput cost of background I/O.
//!
//! The paper compares stock RocksDB against a modified build in which background
//! flushing and compaction are disabled (full memtables are simply discarded),
//! showing up to a 3× throughput gap. We reproduce the setup with
//! [`BackgroundIoMode::Disabled`].

use triad_core::{BackgroundIoMode, TriadConfig};
use triad_workload::OperationMix;

use crate::experiments::{bench_options, ops_per_thread, synthetic_workload, SkewProfile};
use crate::report::{print_table, Table};
use crate::runner::{run_experiment, ExperimentConfig, Scale};

/// Runs the four workload points of Figure 2 and prints the comparison.
pub fn run(scale: Scale) -> triad_common::Result<Table> {
    let mut table = Table::new(&["workload", "RocksDB KOPS", "No BG I/O KOPS", "no-BG / baseline"]);
    let points = [
        (SkewProfile::None, OperationMix::balanced(), "Uniform 50r-50w"),
        (SkewProfile::None, OperationMix::write_intensive(), "Uniform 10r-90w"),
        (SkewProfile::High, OperationMix::balanced(), "Skewed 50r-50w"),
        (SkewProfile::High, OperationMix::write_intensive(), "Skewed 10r-90w"),
    ];
    for (skew, mix, label) in points {
        let workload = synthetic_workload(scale, skew, mix);

        let baseline = ExperimentConfig::new(
            format!("fig2-baseline-{label}"),
            bench_options(scale, TriadConfig::baseline()),
            workload.clone(),
        )
        .with_threads(8)
        .with_ops_per_thread(ops_per_thread(scale));
        let baseline_result = run_experiment(&baseline)?;

        let mut no_bg_options = bench_options(scale, TriadConfig::baseline());
        no_bg_options.background_io = BackgroundIoMode::Disabled;
        let no_bg = ExperimentConfig::new(format!("fig2-nobg-{label}"), no_bg_options, workload)
            .with_threads(8)
            .with_ops_per_thread(ops_per_thread(scale));
        let no_bg_result = run_experiment(&no_bg)?;

        let ratio = no_bg_result.kops / baseline_result.kops.max(1e-9);
        table.add_row(vec![
            label.to_string(),
            format!("{:.1}", baseline_result.kops),
            format!("{:.1}", no_bg_result.kops),
            format!("{ratio:.2}x"),
        ]);
    }
    print_table(
        "Figure 2: background I/O impact on throughput",
        &table,
        "disabling background I/O yields up to ~3x higher throughput than stock RocksDB",
    );
    Ok(table)
}
