// lint-fixture: crates/core/src/db.rs
// Both mandatory db.rs regions present exactly once, begin before end, plus a
// balanced generic region.

// PIPELINE-APPEND-STAGE-BEGIN
fn append_stage(&self) {
    let written = wal.writer.append_batch(encoder);
}
// PIPELINE-APPEND-STAGE-END

// HOT-READ-NEWEST-BEGIN
fn hot_read(&self, key: &[u8]) {
    let hit = memtable.get(key, u64::MAX);
}
// HOT-READ-NEWEST-END

// LINT-REGION: custom-invariant
fn custom(&self) {}
// LINT-REGION-END: custom-invariant
