// lint-fixture: crates/core/src/db.rs
// The hot read path probes with the unbounded u64::MAX ceiling.

// PIPELINE-APPEND-STAGE-BEGIN
fn append_stage(&self) {
    let start = wal.writer.append_batch(encoder);
}
// PIPELINE-APPEND-STAGE-END

// HOT-READ-NEWEST-BEGIN
fn hot_read(&self, key: &[u8]) {
    let hit = memtable.get(key, u64::MAX);
    let table_hit = table.get(key, u64::MAX);
}
// HOT-READ-NEWEST-END
