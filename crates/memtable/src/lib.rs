//! The memory component (`Cm`) of the TRIAD LSM tree.
//!
//! The memtable absorbs updates in place: a key overwritten ten times occupies one
//! slot whose value is the latest version, whose `updates` counter is 10, and whose
//! commit-log position points at the newest record for that key (TRIAD's Algorithm 1
//! `CLUpdateOffset`). That per-entry metadata is exactly what the three TRIAD
//! techniques consume:
//!
//! * TRIAD-MEM ranks entries by `updates` to split hot from cold keys at flush time
//!   (see [`hotcold`]).
//! * TRIAD-LOG uses the `(log id, offset)` pair to build CL-SSTable indexes without
//!   rewriting values.
//!
//! In-place absorption is at odds with MVCC snapshots — a snapshot must read the
//! version a key had when the snapshot was taken, even after ten overwrites. The
//! memtable reconciles the two through a [`SnapshotRetention`] registry: when an
//! overwrite would shadow a version some open snapshot can still see, the shadowed
//! version moves to the slot's *prior list* instead of being discarded, and
//! seqno-bounded probes ([`Memtable::get_at`], [`Memtable::snapshot_entries_at`])
//! consult it. With no snapshot open (the common case) the prior list stays empty
//! and the write path pays a single relaxed atomic load.
//!
//! The table is sharded internally; point operations lock a single shard while
//! snapshots for flushing lock all shards briefly and merge their sorted contents.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod hotcold;

pub use adaptive::{FlushObservation, HotKeyTuner};
pub use hotcold::{separate_keys, HotColdPolicy, HotColdSplit};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use triad_common::lockrank::RankedRwLock;
use triad_common::types::{Entry, InternalKey, SeqNo, ValueKind};
use triad_common::SnapshotRetention;

/// Where the newest update of a key lives in the commit log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LogPosition {
    /// The id of the commit log file.
    pub log_id: u64,
    /// Byte offset of the record within that file.
    pub offset: u64,
}

/// The in-memory state kept for one user key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemEntry {
    /// The latest value; empty for tombstones.
    pub value: Vec<u8>,
    /// Sequence number of the latest update.
    pub seqno: SeqNo,
    /// Whether the latest update was a put or a delete.
    pub kind: ValueKind,
    /// Number of updates absorbed by this entry since it entered the memtable
    /// (TRIAD-MEM's hotness signal).
    pub updates: u32,
    /// Commit-log position of the latest update (TRIAD-LOG's flush-avoidance handle).
    pub log_position: LogPosition,
}

impl MemEntry {
    /// Converts the entry into the engine-wide [`Entry`] representation.
    pub fn to_entry(&self, user_key: &[u8]) -> Entry {
        Entry::new(InternalKey::new(user_key.to_vec(), self.seqno, self.kind), self.value.clone())
    }

    /// Approximate heap footprint of this entry (key accounted separately).
    fn approximate_size(&self, key_len: usize) -> usize {
        key_len + self.value.len() + std::mem::size_of::<MemEntry>()
    }
}

/// One key's slot: the live (newest) version plus any superseded versions an
/// open snapshot can still see, ascending by seqno. The prior list is empty
/// unless a snapshot was open when the key was overwritten, and it is pruned on
/// every subsequent overwrite against the current snapshot registry.
#[derive(Debug, Clone)]
struct Slot {
    live: MemEntry,
    prior: Vec<MemEntry>,
}

/// Number of shards; a power of two so shard selection is a mask.
const SHARD_COUNT: usize = 16;

/// Rank of every shard lock in the engine-wide lock order (see
/// `triad_common::lockrank` and docs/ARCHITECTURE.md): above all engine locks,
/// because shard locks are leaves — nothing else is ever acquired while one is
/// held, and multi-shard walks take one shard at a time. All shards share the
/// rank, so holding two shard locks simultaneously panics in debug builds.
pub const SHARD_LOCK_RANK: u32 = 70;

/// The memory component: a sorted, sharded map from user key to its version slot.
#[derive(Debug)]
pub struct Memtable {
    shards: Vec<RankedRwLock<BTreeMap<Vec<u8>, Slot>>>,
    approximate_size: AtomicUsize,
    entry_count: AtomicUsize,
    /// Total updates absorbed (including overwrites); used to compute the mean
    /// update frequency for the hot/cold policy.
    total_updates: AtomicU64,
    /// Which superseded versions open MVCC snapshots can still see. Shared with
    /// the engine's snapshot registry; a memtable created with [`Memtable::new`]
    /// gets a private, always-empty registry and never retains anything.
    retention: Arc<SnapshotRetention>,
}

impl Default for Memtable {
    fn default() -> Self {
        Self::new()
    }
}

impl Memtable {
    /// Creates an empty memtable with no snapshot retention (no registry is
    /// shared, so overwrites always discard the shadowed version).
    pub fn new() -> Self {
        Self::with_retention(Arc::new(SnapshotRetention::new()))
    }

    /// Creates an empty memtable wired to the engine's snapshot registry:
    /// overwrites preserve versions that registered snapshots can still see.
    pub fn with_retention(retention: Arc<SnapshotRetention>) -> Self {
        Memtable {
            shards: (0..SHARD_COUNT)
                .map(|_| RankedRwLock::new(SHARD_LOCK_RANK, "memtable.shard", BTreeMap::new()))
                .collect(),
            approximate_size: AtomicUsize::new(0),
            entry_count: AtomicUsize::new(0),
            total_updates: AtomicU64::new(0),
            retention,
        }
    }

    fn shard_for(&self, key: &[u8]) -> usize {
        (triad_hll::hash64(key) as usize) & (SHARD_COUNT - 1)
    }

    /// Called with the shard lock held, immediately before `slot.live` is
    /// overwritten by a strictly newer version: preserves the live version on
    /// the prior list when an open snapshot can still see it.
    fn retain_shadowed(&self, key_len: usize, slot: &mut Slot) {
        let max_open = self.retention.max_open();
        if max_open > 0 && slot.live.seqno <= max_open {
            let retained = slot.live.clone();
            self.approximate_size.fetch_add(retained.approximate_size(key_len), Ordering::Relaxed);
            slot.prior.push(retained);
        }
    }

    /// Called with the shard lock held, after `slot.live` was updated: drops
    /// prior versions no open snapshot can read any more. A prior version `p`
    /// is readable iff some open snapshot `S` satisfies
    /// `p.seqno <= S < successor(p).seqno`; the check below is the conservative
    /// relaxation using the registry's min/max bounds (it may keep a version a
    /// precise check would drop, never the reverse).
    fn prune_priors(&self, key_len: usize, slot: &mut Slot) {
        if slot.prior.is_empty() {
            return;
        }
        let max_open = self.retention.max_open();
        let oldest_open = self.retention.oldest_open();
        let mut idx = 0;
        while idx < slot.prior.len() {
            let successor = slot.prior.get(idx + 1).map_or(slot.live.seqno, |next| next.seqno);
            let p = &slot.prior[idx];
            let needed = p.seqno <= max_open && successor > oldest_open;
            if needed {
                idx += 1;
            } else {
                let dropped = slot.prior.remove(idx);
                self.approximate_size
                    .fetch_sub(dropped.approximate_size(key_len), Ordering::Relaxed);
            }
        }
    }

    /// Overwrites `slot.live` in place, keeping the size accounting straight.
    fn overwrite_live(&self, key_len: usize, slot: &mut Slot, new: MemEntry) {
        let old_size = slot.live.approximate_size(key_len);
        let new_size = new.approximate_size(key_len);
        slot.live = new;
        if new_size >= old_size {
            self.approximate_size.fetch_add(new_size - old_size, Ordering::Relaxed);
        } else {
            self.approximate_size.fetch_sub(old_size - new_size, Ordering::Relaxed);
        }
    }

    fn insert_new_slot(&self, map: &mut BTreeMap<Vec<u8>, Slot>, key: &[u8], entry: MemEntry) {
        let size = entry.approximate_size(key.len());
        map.insert(key.to_vec(), Slot { live: entry, prior: Vec::new() });
        self.approximate_size.fetch_add(size, Ordering::Relaxed);
        self.entry_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Called with the shard lock held: replaces `slot.live` with `entry`,
    /// retaining the shadowed version for open snapshots when `entry` is
    /// strictly newer, then pruning priors no snapshot can read. The single
    /// implementation of the retention protocol; every overwrite path above
    /// the slot level goes through here.
    fn absorb_into_slot(&self, key_len: usize, slot: &mut Slot, entry: MemEntry) {
        if entry.seqno > slot.live.seqno {
            self.retain_shadowed(key_len, slot);
        }
        self.overwrite_live(key_len, slot, entry);
        self.prune_priors(key_len, slot);
    }

    /// Inserts or overwrites `key`, absorbing the update in place (superseded
    /// versions visible to an open snapshot are preserved on the prior list).
    ///
    /// Returns the new approximate size of the memtable in bytes.
    pub fn insert(
        &self,
        key: &[u8],
        value: &[u8],
        seqno: SeqNo,
        kind: ValueKind,
        log_position: LogPosition,
    ) -> usize {
        let shard = &self.shards[self.shard_for(key)];
        let mut map = shard.write();
        self.total_updates.fetch_add(1, Ordering::Relaxed);
        match map.get_mut(key) {
            Some(slot) => {
                let updates = slot.live.updates.saturating_add(1);
                let entry = MemEntry { value: value.to_vec(), seqno, kind, updates, log_position };
                self.absorb_into_slot(key.len(), slot, entry);
            }
            None => {
                let entry =
                    MemEntry { value: value.to_vec(), seqno, kind, updates: 1, log_position };
                self.insert_new_slot(&mut map, key, entry);
            }
        }
        self.approximate_size.load(Ordering::Relaxed)
    }

    /// Inserts or overwrites `key` unless the memtable already holds a *newer*
    /// version of it.
    ///
    /// The group-commit write path applies the batches of one commit group from
    /// several threads concurrently, so two updates of the same key can reach the
    /// memtable out of sequence-number order; the older one must not clobber the
    /// newer. A skipped update still bumps the per-key update counter — the write
    /// happened, and TRIAD-MEM's hotness signal counts writes, not winners (the
    /// serialized path bumps it too, by overwriting and being overwritten). A
    /// skipped update is never a snapshot-visible version either: the seqnos
    /// between it and the winner belong to the same commit group, and snapshot
    /// seqnos always sit on group boundaries.
    ///
    /// Returns the new approximate size of the memtable in bytes.
    pub fn insert_versioned(
        &self,
        key: &[u8],
        value: &[u8],
        seqno: SeqNo,
        kind: ValueKind,
        log_position: LogPosition,
    ) -> usize {
        let shard = &self.shards[self.shard_for(key)];
        let mut map = shard.write();
        self.total_updates.fetch_add(1, Ordering::Relaxed);
        match map.get_mut(key) {
            Some(slot) if slot.live.seqno > seqno => {
                slot.live.updates = slot.live.updates.saturating_add(1);
            }
            Some(slot) => {
                let updates = slot.live.updates.saturating_add(1);
                let entry = MemEntry { value: value.to_vec(), seqno, kind, updates, log_position };
                self.absorb_into_slot(key.len(), slot, entry);
            }
            None => {
                let entry =
                    MemEntry { value: value.to_vec(), seqno, kind, updates: 1, log_position };
                self.insert_new_slot(&mut map, key, entry);
            }
        }
        self.approximate_size.load(Ordering::Relaxed)
    }

    /// Re-inserts a complete [`MemEntry`] (used when TRIAD-MEM retains hot keys in
    /// the new memtable after a flush), preserving its update counter.
    pub fn insert_entry(&self, key: &[u8], entry: MemEntry) {
        let shard = &self.shards[self.shard_for(key)];
        let mut map = shard.write();
        self.total_updates.fetch_add(u64::from(entry.updates), Ordering::Relaxed);
        match map.get_mut(key) {
            Some(slot) => self.absorb_into_slot(key.len(), slot, entry),
            None => self.insert_new_slot(&mut map, key, entry),
        }
    }

    /// Inserts `entry` only if the memtable holds no newer version of `key`.
    ///
    /// This is the write-back path of TRIAD-MEM: hot entries from the memtable being
    /// flushed are re-inserted into the new active memtable, but they must never
    /// overwrite an update the application performed in the meantime. Returns `true`
    /// if the entry was installed.
    pub fn insert_entry_if_older(&self, key: &[u8], entry: MemEntry) -> bool {
        let shard = &self.shards[self.shard_for(key)];
        let mut map = shard.write();
        match map.get_mut(key) {
            Some(slot) if slot.live.seqno >= entry.seqno => false,
            Some(slot) => {
                // Preserve the update counter the newer writes accumulated plus the
                // hotness the entry carried over.
                let mut entry = entry;
                entry.updates = slot.live.updates.saturating_add(entry.updates);
                self.absorb_into_slot(key.len(), slot, entry);
                true
            }
            None => {
                self.total_updates.fetch_add(u64::from(entry.updates), Ordering::Relaxed);
                self.insert_new_slot(&mut map, key, entry);
                true
            }
        }
    }

    /// Updates the commit-log position of `key` if its current version still has
    /// sequence number `expected_seqno` (TRIAD's `CLUpdateOffset` during log
    /// rotation). Returns `true` if the position was updated.
    pub fn update_log_position(
        &self,
        key: &[u8],
        expected_seqno: SeqNo,
        position: LogPosition,
    ) -> bool {
        let shard = &self.shards[self.shard_for(key)];
        let mut map = shard.write();
        match map.get_mut(key) {
            Some(slot) if slot.live.seqno == expected_seqno => {
                slot.live.log_position = position;
                true
            }
            _ => false,
        }
    }

    /// Returns the live (newest) version of `key` if its seqno is `<= snapshot`.
    ///
    /// This probe does *not* consult the prior-version list: it is the
    /// read-newest fast path (callers pass `u64::MAX`). Snapshot reads use
    /// [`get_at`](Memtable::get_at), which does.
    pub fn get(&self, key: &[u8], snapshot: SeqNo) -> Option<Entry> {
        let shard = &self.shards[self.shard_for(key)];
        let map = shard.read();
        map.get(key).and_then(|slot| {
            if slot.live.seqno <= snapshot {
                Some(slot.live.to_entry(key))
            } else {
                None
            }
        })
    }

    /// Returns the newest version of `key` visible at `snapshot`, consulting
    /// the retained prior versions. This is the snapshot read path: with the
    /// snapshot registered in the shared [`SnapshotRetention`] before `snapshot`
    /// was chosen, every version it can see is either the live one or preserved
    /// on the prior list, so a bounded probe can never miss a key that existed
    /// at the snapshot point.
    pub fn get_at(&self, key: &[u8], snapshot: SeqNo) -> Option<Entry> {
        let shard = &self.shards[self.shard_for(key)];
        let map = shard.read();
        let slot = map.get(key)?;
        if slot.live.seqno <= snapshot {
            return Some(slot.live.to_entry(key));
        }
        slot.prior.iter().rev().find(|entry| entry.seqno <= snapshot).map(|e| e.to_entry(key))
    }

    /// Number of distinct keys currently held.
    pub fn len(&self) -> usize {
        self.entry_count.load(Ordering::Relaxed)
    }

    /// Returns `true` when no keys are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate memory footprint in bytes (snapshot-retained prior versions
    /// included).
    pub fn approximate_size(&self) -> usize {
        self.approximate_size.load(Ordering::Relaxed)
    }

    /// Total number of updates absorbed (including in-place overwrites).
    pub fn total_updates(&self) -> u64 {
        self.total_updates.load(Ordering::Relaxed)
    }

    /// Takes a sorted snapshot of every `(key, live entry)` pair.
    ///
    /// Used by flushes; the memtable keeps serving reads while the snapshot is
    /// processed because the caller holds the snapshot by value. Prior versions
    /// are deliberately absent: a flush persists the newest version of each key,
    /// and open snapshots keep reading the retained versions through their own
    /// `Arc` of this memtable.
    pub fn snapshot_entries(&self) -> Vec<(Vec<u8>, MemEntry)> {
        let mut all: Vec<(Vec<u8>, MemEntry)> = Vec::with_capacity(self.len());
        for shard in &self.shards {
            let map = shard.read();
            all.extend(map.iter().map(|(k, slot)| (k.clone(), slot.live.clone())));
        }
        all.sort_by(|a, b| a.0.cmp(&b.0));
        all
    }

    /// Takes a sorted snapshot of the newest version of each key visible at
    /// `snapshot`, consulting retained prior versions. Keys whose oldest
    /// retained version is still newer than `snapshot` are absent (they did not
    /// exist at the snapshot point). Tombstones are included — the merge layers
    /// above decide what a delete shadows.
    pub fn snapshot_entries_at(&self, snapshot: SeqNo) -> Vec<(Vec<u8>, MemEntry)> {
        let mut all: Vec<(Vec<u8>, MemEntry)> = Vec::new();
        for shard in &self.shards {
            let map = shard.read();
            for (key, slot) in map.iter() {
                let visible = if slot.live.seqno <= snapshot {
                    Some(&slot.live)
                } else {
                    slot.prior.iter().rev().find(|entry| entry.seqno <= snapshot)
                };
                if let Some(entry) = visible {
                    all.push((key.clone(), entry.clone()));
                }
            }
        }
        all.sort_by(|a, b| a.0.cmp(&b.0));
        all
    }

    /// Returns the entries as the engine-wide [`Entry`] type, sorted by internal key.
    pub fn snapshot_as_entries(&self) -> Vec<Entry> {
        self.snapshot_entries().into_iter().map(|(key, entry)| entry.to_entry(&key)).collect()
    }

    /// Like [`snapshot_as_entries`](Memtable::snapshot_as_entries), but bounded
    /// at `snapshot` (the seqno-bounded source a snapshot scan merges).
    pub fn snapshot_as_entries_at(&self, snapshot: SeqNo) -> Vec<Entry> {
        self.snapshot_entries_at(snapshot)
            .into_iter()
            .map(|(key, entry)| entry.to_entry(&key))
            .collect()
    }

    /// Returns the raw live [`MemEntry`] for `key`, regardless of snapshot.
    pub fn get_raw(&self, key: &[u8]) -> Option<MemEntry> {
        let shard = &self.shards[self.shard_for(key)];
        shard.read().get(key).map(|slot| slot.live.clone())
    }

    /// Sweeps every slot's prior list against the current retention bounds,
    /// dropping versions no open snapshot can read any more.
    ///
    /// Overwrites prune their own slot lazily, but an *idle* key's stale prior
    /// would otherwise be held until the slot's next overwrite or the flush.
    /// The engine calls this when a snapshot's deregistration moves the
    /// registry bounds, so release is prompt for idle keys too. Slots with an
    /// empty prior list (the overwhelmingly common case) cost one branch; the
    /// sweep takes one shard lock at a time.
    pub fn prune_retained(&self) {
        for shard in &self.shards {
            let mut map = shard.write();
            for (key, slot) in map.iter_mut() {
                self.prune_priors(key.len(), slot);
            }
        }
    }

    /// Total number of snapshot-retained prior versions currently held
    /// (diagnostics and tests).
    pub fn retained_versions(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| shard.read().values().map(|slot| slot.prior.len()).sum::<usize>())
            .sum()
    }

    /// Largest sequence number stored, if any.
    pub fn max_seqno(&self) -> Option<SeqNo> {
        let mut max = None;
        for shard in &self.shards {
            let map = shard.read();
            for slot in map.values() {
                max = Some(max.map_or(slot.live.seqno, |m: SeqNo| m.max(slot.live.seqno)));
            }
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    fn pos(log_id: u64, offset: u64) -> LogPosition {
        LogPosition { log_id, offset }
    }

    #[test]
    fn insert_and_get() {
        let memtable = Memtable::new();
        assert!(memtable.is_empty());
        memtable.insert(b"k1", b"v1", 1, ValueKind::Put, pos(1, 0));
        memtable.insert(b"k2", b"v2", 2, ValueKind::Put, pos(1, 32));
        assert_eq!(memtable.len(), 2);
        assert!(!memtable.is_empty());
        let entry = memtable.get(b"k1", u64::MAX).unwrap();
        assert_eq!(entry.value, b"v1");
        assert_eq!(entry.key.seqno, 1);
        assert!(memtable.get(b"missing", u64::MAX).is_none());
    }

    #[test]
    fn updates_are_absorbed_in_place() {
        let memtable = Memtable::new();
        for i in 0..10u64 {
            memtable.insert(
                b"hot",
                format!("v{i}").as_bytes(),
                i + 1,
                ValueKind::Put,
                pos(1, i * 40),
            );
        }
        assert_eq!(memtable.len(), 1, "in-place absorption keeps one slot per key");
        let raw = memtable.get_raw(b"hot").unwrap();
        assert_eq!(raw.updates, 10);
        assert_eq!(raw.value, b"v9");
        assert_eq!(raw.seqno, 10);
        assert_eq!(raw.log_position, pos(1, 9 * 40), "log position tracks the newest record");
        assert_eq!(memtable.total_updates(), 10);
        assert_eq!(memtable.retained_versions(), 0, "no snapshot open: nothing retained");
    }

    #[test]
    fn insert_versioned_never_lets_an_older_update_win() {
        let memtable = Memtable::new();
        memtable.insert_versioned(b"k", b"newer", 9, ValueKind::Put, pos(1, 80));
        // The straggler of the same commit group arrives late: value ignored,
        // hotness still counted.
        memtable.insert_versioned(b"k", b"older", 5, ValueKind::Put, pos(1, 0));
        let raw = memtable.get_raw(b"k").unwrap();
        assert_eq!(raw.value, b"newer");
        assert_eq!(raw.seqno, 9);
        assert_eq!(raw.log_position, pos(1, 80));
        assert_eq!(raw.updates, 2, "the losing update still counts as a write");
        assert_eq!(memtable.total_updates(), 2);
        // In order it behaves exactly like `insert`.
        memtable.insert_versioned(b"k", b"newest", 12, ValueKind::Delete, pos(2, 0));
        let raw = memtable.get_raw(b"k").unwrap();
        assert_eq!(raw.seqno, 12);
        assert_eq!(raw.kind, ValueKind::Delete);
        assert_eq!(raw.updates, 3);
    }

    #[test]
    fn snapshot_visibility_respects_seqno() {
        let memtable = Memtable::new();
        memtable.insert(b"k", b"v", 10, ValueKind::Put, pos(1, 0));
        assert!(memtable.get(b"k", 9).is_none());
        assert!(memtable.get(b"k", 10).is_some());
        assert!(memtable.get(b"k", 11).is_some());
    }

    #[test]
    fn deletes_are_recorded_as_tombstones() {
        let memtable = Memtable::new();
        memtable.insert(b"k", b"v", 1, ValueKind::Put, pos(1, 0));
        memtable.insert(b"k", b"", 2, ValueKind::Delete, pos(1, 40));
        let entry = memtable.get(b"k", u64::MAX).unwrap();
        assert_eq!(entry.key.kind, ValueKind::Delete);
        assert!(entry.value.is_empty());
        assert_eq!(memtable.len(), 1);
    }

    #[test]
    fn approximate_size_grows_and_tracks_value_sizes() {
        let memtable = Memtable::new();
        let initial = memtable.approximate_size();
        memtable.insert(b"key", &[0u8; 1000], 1, ValueKind::Put, pos(1, 0));
        let after_large = memtable.approximate_size();
        assert!(after_large > initial + 1000);
        // Overwriting with a smaller value shrinks the accounted size.
        memtable.insert(b"key", &[0u8; 10], 2, ValueKind::Put, pos(1, 40));
        let after_small = memtable.approximate_size();
        assert!(after_small < after_large);
        assert!(after_small > 0);
    }

    #[test]
    fn snapshot_entries_are_sorted_and_complete() {
        let memtable = Memtable::new();
        let mut keys: Vec<String> =
            (0..500).map(|i| format!("key-{:04}", (i * 7919) % 1000)).collect();
        for (i, key) in keys.iter().enumerate() {
            memtable.insert(key.as_bytes(), b"v", i as u64 + 1, ValueKind::Put, pos(1, 0));
        }
        keys.sort();
        keys.dedup();
        let snapshot = memtable.snapshot_entries();
        assert_eq!(snapshot.len(), keys.len());
        for (got, want) in snapshot.iter().zip(keys.iter()) {
            assert_eq!(got.0, want.as_bytes());
        }
        for window in snapshot.windows(2) {
            assert!(window[0].0 < window[1].0);
        }
        let as_entries = memtable.snapshot_as_entries();
        assert_eq!(as_entries.len(), keys.len());
        for window in as_entries.windows(2) {
            assert!(window[0].key < window[1].key);
        }
    }

    #[test]
    fn insert_entry_preserves_update_counter() {
        let memtable = Memtable::new();
        let entry = MemEntry {
            value: b"hot-value".to_vec(),
            seqno: 77,
            kind: ValueKind::Put,
            updates: 42,
            log_position: pos(3, 160),
        };
        memtable.insert_entry(b"hot", entry.clone());
        let raw = memtable.get_raw(b"hot").unwrap();
        assert_eq!(raw, entry);
        assert_eq!(memtable.total_updates(), 42);
        // Overwriting via insert_entry replaces the whole record.
        let replacement = MemEntry { updates: 1, ..entry };
        memtable.insert_entry(b"hot", replacement.clone());
        assert_eq!(memtable.get_raw(b"hot").unwrap(), replacement);
        assert_eq!(memtable.len(), 1);
    }

    #[test]
    fn max_seqno_tracks_newest_update() {
        let memtable = Memtable::new();
        assert_eq!(memtable.max_seqno(), None);
        memtable.insert(b"a", b"1", 5, ValueKind::Put, pos(1, 0));
        memtable.insert(b"b", b"2", 17, ValueKind::Put, pos(1, 40));
        memtable.insert(b"a", b"3", 20, ValueKind::Put, pos(1, 80));
        assert_eq!(memtable.max_seqno(), Some(20));
    }

    #[test]
    fn insert_if_older_respects_newer_writes() {
        let memtable = Memtable::new();
        memtable.insert(b"k", b"newer", 10, ValueKind::Put, pos(2, 0));
        let stale = MemEntry {
            value: b"stale".to_vec(),
            seqno: 5,
            kind: ValueKind::Put,
            updates: 30,
            log_position: pos(1, 0),
        };
        assert!(!memtable.insert_entry_if_older(b"k", stale), "older entry must not overwrite");
        assert_eq!(memtable.get(b"k", u64::MAX).unwrap().value, b"newer");

        let fresher = MemEntry {
            value: b"fresher".to_vec(),
            seqno: 20,
            kind: ValueKind::Put,
            updates: 3,
            log_position: pos(2, 80),
        };
        assert!(memtable.insert_entry_if_older(b"k", fresher));
        let raw = memtable.get_raw(b"k").unwrap();
        assert_eq!(raw.value, b"fresher");
        assert_eq!(raw.updates, 4, "hotness carried over is combined with newer activity");

        // Inserting into an empty slot works too.
        let new_key = MemEntry {
            value: b"x".to_vec(),
            seqno: 1,
            kind: ValueKind::Put,
            updates: 7,
            log_position: pos(2, 120),
        };
        assert!(memtable.insert_entry_if_older(b"other", new_key));
        assert_eq!(memtable.len(), 2);
    }

    #[test]
    fn update_log_position_only_applies_to_matching_seqno() {
        let memtable = Memtable::new();
        memtable.insert(b"k", b"v", 7, ValueKind::Put, pos(1, 100));
        assert!(memtable.update_log_position(b"k", 7, pos(2, 0)));
        assert_eq!(memtable.get_raw(b"k").unwrap().log_position, pos(2, 0));
        // A stale expectation does nothing.
        assert!(!memtable.update_log_position(b"k", 6, pos(3, 0)));
        assert_eq!(memtable.get_raw(b"k").unwrap().log_position, pos(2, 0));
        // Unknown keys do nothing.
        assert!(!memtable.update_log_position(b"missing", 1, pos(3, 0)));
    }

    #[test]
    fn concurrent_writers_do_not_lose_updates() {
        let memtable = Arc::new(Memtable::new());
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let memtable = Arc::clone(&memtable);
            handles.push(thread::spawn(move || {
                for i in 0..1_000u64 {
                    let key = format!("key-{:03}", i % 100);
                    memtable.insert(
                        key.as_bytes(),
                        b"value",
                        t * 1_000 + i + 1,
                        ValueKind::Put,
                        pos(1, i),
                    );
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(memtable.len(), 100);
        assert_eq!(memtable.total_updates(), 8_000);
        let snapshot = memtable.snapshot_entries();
        let total_updates: u64 = snapshot.iter().map(|(_, e)| u64::from(e.updates)).sum();
        assert_eq!(total_updates, 8_000, "every insert bumps exactly one entry's counter");
    }

    // ---- Snapshot retention ----

    fn retained_memtable() -> (Memtable, Arc<SnapshotRetention>) {
        let retention = Arc::new(SnapshotRetention::new());
        (Memtable::with_retention(Arc::clone(&retention)), retention)
    }

    #[test]
    fn overwrite_with_open_snapshot_preserves_the_shadowed_version() {
        let (memtable, retention) = retained_memtable();
        memtable.insert(b"k", b"v1", 5, ValueKind::Put, pos(1, 0));
        retention.register(5);
        memtable.insert(b"k", b"v2", 9, ValueKind::Put, pos(1, 40));
        assert_eq!(memtable.retained_versions(), 1);
        // The live probe sees the newest version; the bounded probe the old one.
        assert_eq!(memtable.get(b"k", u64::MAX).unwrap().value, b"v2");
        let at = memtable.get_at(b"k", 5).unwrap();
        assert_eq!(at.value, b"v1");
        assert_eq!(at.key.seqno, 5);
        assert!(memtable.get_at(b"k", 4).is_none(), "nothing visible before seqno 5");
        assert_eq!(memtable.get_at(b"k", 9).unwrap().value, b"v2");
    }

    #[test]
    fn no_open_snapshot_means_no_retention() {
        let (memtable, _retention) = retained_memtable();
        memtable.insert(b"k", b"v1", 5, ValueKind::Put, pos(1, 0));
        memtable.insert(b"k", b"v2", 9, ValueKind::Put, pos(1, 40));
        assert_eq!(memtable.retained_versions(), 0);
        assert!(memtable.get_at(b"k", 5).is_none(), "the shadowed version was discarded");
    }

    #[test]
    fn closing_the_snapshot_lets_the_next_overwrite_prune() {
        let (memtable, retention) = retained_memtable();
        memtable.insert(b"k", b"v1", 5, ValueKind::Put, pos(1, 0));
        retention.register(5);
        memtable.insert(b"k", b"v2", 9, ValueKind::Put, pos(1, 40));
        assert_eq!(memtable.retained_versions(), 1);
        let with_prior = memtable.approximate_size();
        retention.deregister(5);
        // Nothing prunes eagerly on close…
        assert_eq!(memtable.retained_versions(), 1);
        // …but the next overwrite of the slot sweeps the dead version.
        memtable.insert(b"k", b"v3", 12, ValueKind::Put, pos(1, 80));
        assert_eq!(memtable.retained_versions(), 0);
        assert!(memtable.approximate_size() <= with_prior);
    }

    #[test]
    fn multiple_snapshots_keep_their_own_versions() {
        let (memtable, retention) = retained_memtable();
        memtable.insert(b"k", b"v1", 2, ValueKind::Put, pos(1, 0));
        retention.register(2);
        memtable.insert(b"k", b"v2", 6, ValueKind::Put, pos(1, 40));
        retention.register(6);
        memtable.insert(b"k", b"v3", 9, ValueKind::Put, pos(1, 80));
        assert_eq!(memtable.get_at(b"k", 2).unwrap().value, b"v1");
        assert_eq!(memtable.get_at(b"k", 6).unwrap().value, b"v2");
        assert_eq!(memtable.get_at(b"k", u64::MAX).unwrap().value, b"v3");
        // Dropping the older snapshot lets v1 go on the next overwrite; v2 stays.
        retention.deregister(2);
        memtable.insert(b"k", b"v4", 12, ValueKind::Put, pos(1, 120));
        assert!(memtable.get_at(b"k", 2).is_none());
        assert_eq!(memtable.get_at(b"k", 6).unwrap().value, b"v2");
        assert_eq!(memtable.retained_versions(), 1);
    }

    #[test]
    fn snapshot_sees_tombstones_and_pre_delete_values() {
        let (memtable, retention) = retained_memtable();
        memtable.insert(b"k", b"v1", 3, ValueKind::Put, pos(1, 0));
        retention.register(3);
        memtable.insert(b"k", b"", 7, ValueKind::Delete, pos(1, 40));
        retention.register(7);
        memtable.insert(b"k", b"v2", 11, ValueKind::Put, pos(1, 80));
        assert_eq!(memtable.get_at(b"k", 3).unwrap().key.kind, ValueKind::Put);
        assert_eq!(memtable.get_at(b"k", 7).unwrap().key.kind, ValueKind::Delete);
        assert_eq!(memtable.get_at(b"k", 11).unwrap().value, b"v2");
    }

    #[test]
    fn snapshot_entries_at_returns_the_bounded_view() {
        let (memtable, retention) = retained_memtable();
        memtable.insert(b"a", b"a1", 1, ValueKind::Put, pos(1, 0));
        memtable.insert(b"b", b"b1", 2, ValueKind::Put, pos(1, 40));
        retention.register(2);
        memtable.insert(b"a", b"a2", 5, ValueKind::Put, pos(1, 80));
        memtable.insert(b"c", b"c1", 6, ValueKind::Put, pos(1, 120));
        let at2 = memtable.snapshot_entries_at(2);
        let keys: Vec<&[u8]> = at2.iter().map(|(k, _)| k.as_slice()).collect();
        assert_eq!(keys, vec![b"a".as_slice(), b"b"]);
        assert_eq!(at2[0].1.value, b"a1", "snapshot view has the pre-overwrite value");
        // A later bound sees everything at its newest version.
        let now = memtable.snapshot_entries_at(u64::MAX);
        assert_eq!(now.len(), 3);
        assert_eq!(now[0].1.value, b"a2");
        // The unbounded flush snapshot still carries only live versions.
        assert_eq!(memtable.snapshot_entries().len(), 3);
    }

    #[test]
    fn prune_retained_sweeps_idle_keys_after_the_bounds_move() {
        let (memtable, retention) = retained_memtable();
        memtable.insert(b"idle", b"v1", 5, ValueKind::Put, pos(1, 0));
        retention.register(5);
        memtable.insert(b"idle", b"v2", 9, ValueKind::Put, pos(1, 40));
        assert_eq!(memtable.retained_versions(), 1);
        let with_prior = memtable.approximate_size();
        assert!(retention.deregister(5), "the registry emptied: bounds moved");
        // The key is never touched again; the sweep alone must free the prior.
        memtable.prune_retained();
        assert_eq!(memtable.retained_versions(), 0);
        assert!(memtable.approximate_size() < with_prior);
        assert_eq!(memtable.get(b"idle", u64::MAX).unwrap().value, b"v2");
    }

    #[test]
    fn prune_retained_keeps_versions_live_snapshots_can_see() {
        let (memtable, retention) = retained_memtable();
        memtable.insert(b"k", b"v1", 2, ValueKind::Put, pos(1, 0));
        retention.register(2);
        memtable.insert(b"k", b"v2", 6, ValueKind::Put, pos(1, 40));
        retention.register(6);
        memtable.insert(b"k", b"v3", 9, ValueKind::Put, pos(1, 80));
        assert_eq!(memtable.retained_versions(), 2);
        retention.deregister(2);
        memtable.prune_retained();
        assert_eq!(memtable.retained_versions(), 1, "snapshot 6 still needs v2");
        assert_eq!(memtable.get_at(b"k", 6).unwrap().value, b"v2");
        retention.deregister(6);
        memtable.prune_retained();
        assert_eq!(memtable.retained_versions(), 0);
    }

    #[test]
    fn retained_versions_are_counted_in_the_approximate_size() {
        let (memtable, retention) = retained_memtable();
        memtable.insert(b"k", &[0u8; 512], 1, ValueKind::Put, pos(1, 0));
        let before = memtable.approximate_size();
        retention.register(1);
        memtable.insert(b"k", &[0u8; 512], 2, ValueKind::Put, pos(1, 40));
        assert!(
            memtable.approximate_size() >= before + 512,
            "the retained 512-byte version must be accounted"
        );
    }
}
