//! Workspace file discovery.

use std::path::Path;

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "node_modules"];

/// Path fragments excluded even when reachable: lint fixtures are
/// deliberately-violating snippets and must not fail the real workspace.
const SKIP_FRAGMENTS: &[&str] = &["tests/fixtures"];

/// Collects every `.rs` file under `root` (skipping `target/`, `vendor/`,
/// `.git/` and lint fixtures), returning `(relative_path, contents)` pairs
/// sorted by path for deterministic reports.
pub fn collect_sources(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut out = Vec::new();
    walk(root, root, &mut out)?;
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<(String, String)>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
            if SKIP_FRAGMENTS.iter().any(|frag| rel.contains(frag)) {
                continue;
            }
            let contents = std::fs::read_to_string(&path)?;
            out.push((rel, contents));
        }
    }
    Ok(())
}
