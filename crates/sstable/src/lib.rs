//! SSTables for the TRIAD engine.
//!
//! This crate implements the on-disk sorted-table formats used by the LSM tree:
//!
//! * [`bloom`] — a bloom filter over user keys, consulted before touching data blocks.
//! * [`block`] — the sorted key/value block format shared by data and index blocks.
//! * [`mod@format`] — block handles, checksummed block I/O and the table footer.
//! * [`properties`] — per-table metadata (entry counts, key range, HyperLogLog sketch).
//! * [`builder`] / [`reader`] — the regular block-based SSTable, equivalent to the
//!   tables RocksDB writes on flush and compaction.
//! * [`cl_table`] — the TRIAD-LOG *CL-SSTable*: a sorted key→offset index over a
//!   sealed commit log, so flushes write only the index instead of re-writing values.
//! * [`iter`] — the k-way merging iterator and the version-resolving iterator used by
//!   compaction and scans.
//! * [`readahead`] — the small I/O worker pool scan iterators use to prefetch the
//!   next data block into the shared cache while the merge consumes the current one.
//!
//! All tables expose the same [`SortedTable`] interface so the engine's read path and
//! compaction treat regular SSTables and CL-SSTables uniformly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod bloom;
pub mod builder;
pub mod cl_table;
pub mod format;
pub mod iter;
pub mod properties;
pub mod readahead;
pub mod reader;

pub use bloom::BloomFilter;
pub use builder::{TableBuilder, TableBuilderOptions};
pub use cl_table::{ClTable, ClTableBuilder};
pub use iter::{bounded_to_seqno, DedupIterator, EntryIter, MergingIterator};
pub use properties::{TableKind, TableProperties};
pub use readahead::IoPool;
pub use reader::Table;

use std::path::{Path, PathBuf};
use std::sync::Arc;

use block::Block;
use triad_common::types::Entry;
use triad_common::{Result, Stats};

/// Returns the canonical file name for SSTable `id`, e.g. `000042.sst`.
pub fn sst_file_name(id: u64) -> String {
    format!("{id:06}.sst")
}

/// Returns the full path of SSTable `id` inside `dir`.
pub fn sst_file_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(sst_file_name(id))
}

/// Returns the canonical file name for the CL-SSTable index of table `id`.
pub fn cl_index_file_name(id: u64) -> String {
    format!("{id:06}.clidx")
}

/// Returns the full path of CL-SSTable index `id` inside `dir`.
pub fn cl_index_file_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(cl_index_file_name(id))
}

/// Parses a table id out of a `.sst` or `.clidx` file name.
pub fn parse_table_file_name(name: &str) -> Option<(u64, TableKind)> {
    if let Some(stem) = name.strip_suffix(".sst") {
        if !stem.is_empty() && stem.bytes().all(|b| b.is_ascii_digit()) {
            return Some((stem.parse().ok()?, TableKind::Block));
        }
    }
    if let Some(stem) = name.strip_suffix(".clidx") {
        if !stem.is_empty() && stem.bytes().all(|b| b.is_ascii_digit()) {
            return Some((stem.parse().ok()?, TableKind::CommitLogIndex));
        }
    }
    None
}

/// A provider of decoded data blocks for table readers — in practice the
/// engine's shared block cache. `reader.rs` stays cache-agnostic: a [`Table`]
/// opened with a [`FetchContext`] routes every data-block read through this
/// trait, and the provider calls back into `load` (the checksum-verified
/// decode path) only on a miss.
pub trait BlockFetch: Send + Sync {
    /// Returns the block at `(table_id, offset)`, loading it via `load` on a
    /// miss. `load` must decode from a checksum-verified read; concurrent
    /// probes for the same key should coalesce into a single load. `stats`,
    /// when present, receives the hit/miss accounting for this probe.
    fn get_or_load(
        &self,
        table_id: u64,
        offset: u64,
        stats: Option<&Stats>,
        load: &dyn Fn() -> Result<Block>,
    ) -> Result<Arc<Block>>;
}

/// Everything a table reader needs to serve block reads through a shared
/// cache: its identity in the cache keyspace, the cache itself, and an
/// optional I/O pool for sequential readahead during scans.
#[derive(Clone)]
pub struct FetchContext {
    /// The table's globally unique id in the cache keyspace. Engine file ids
    /// are a per-keyspace-shard namespace, so the cache allocates its own.
    pub table_id: u64,
    /// The shared block cache.
    pub fetch: Arc<dyn BlockFetch>,
    /// Worker pool that scan iterators use to prefetch the next data block.
    /// `None` disables readahead; point lookups never use it.
    pub readahead: Option<Arc<IoPool>>,
}

/// The uniform interface that the engine's read path and compaction use for any
/// on-disk table, regardless of whether it is a regular SSTable or a CL-SSTable.
pub trait SortedTable: Send + Sync {
    /// Returns the freshest entry for `user_key` visible at `snapshot`, if the table
    /// contains one. The returned entry may be a tombstone.
    fn get(&self, user_key: &[u8], snapshot: u64) -> Result<Option<Entry>>;

    /// Returns an iterator over every entry in internal-key order.
    fn entries(&self) -> Result<EntryIter>;

    /// Like [`entries`](Self::entries), but takes the table by `Arc` so
    /// implementations can return an iterator that streams blocks on demand
    /// (and prefetches ahead of the merge) instead of materializing the whole
    /// table up front. The default falls back to the eager path.
    fn entries_arc(self: Arc<Self>) -> Result<EntryIter> {
        self.entries()
    }

    /// The table's metadata.
    fn properties(&self) -> &TableProperties;

    /// The on-disk size of the table in bytes (index + data it owns).
    fn size_bytes(&self) -> u64;
}

/// A reference-counted trait object over any sorted table.
pub type TableRef = Arc<dyn SortedTable>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_name_round_trip() {
        assert_eq!(sst_file_name(7), "000007.sst");
        assert_eq!(parse_table_file_name("000007.sst"), Some((7, TableKind::Block)));
        assert_eq!(cl_index_file_name(12), "000012.clidx");
        assert_eq!(parse_table_file_name("000012.clidx"), Some((12, TableKind::CommitLogIndex)));
    }

    #[test]
    fn parse_rejects_other_names() {
        assert_eq!(parse_table_file_name("000001.log"), None);
        assert_eq!(parse_table_file_name("x.sst"), None);
        assert_eq!(parse_table_file_name(".clidx"), None);
        assert_eq!(parse_table_file_name("MANIFEST"), None);
    }

    #[test]
    fn paths_are_inside_dir() {
        let dir = Path::new("/data/db");
        assert_eq!(sst_file_path(dir, 3), PathBuf::from("/data/db/000003.sst"));
        assert_eq!(cl_index_file_path(dir, 3), PathBuf::from("/data/db/000003.clidx"));
    }
}
