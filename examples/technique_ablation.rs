//! Ablation of the three TRIAD techniques on one workload.
//!
//! Runs the same skewed, write-heavy workload against five configurations —
//! baseline, each technique alone, and full TRIAD — and prints a side-by-side table
//! of the I/O metrics each configuration produces. This is a miniature, single-run
//! version of Figures 10 and 11; the full sweeps live in `crates/bench`.
//!
//! Run with:
//! ```text
//! cargo run --release --example technique_ablation
//! ```

use triad::workload::{KeyDistribution, Operation, OperationMix, WorkloadGenerator, WorkloadSpec};
use triad::{Db, Options, StatSnapshot, TriadConfig};

const NUM_KEYS: u64 = 20_000;
const NUM_OPS: u64 = 120_000;

fn run_one(triad: TriadConfig) -> triad::Result<(String, StatSnapshot, f64)> {
    let label = triad.label();
    let dir = std::env::temp_dir().join(format!("triad-ablation-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut options = Options {
        memtable_size: 512 * 1024,
        max_log_size: 1024 * 1024,
        l1_target_size: 4 * 1024 * 1024,
        target_file_size: 1024 * 1024,
        triad,
        ..Options::default()
    };
    options.triad.flush_skip_threshold_bytes = options.memtable_size / 2;
    let db = Db::open(&dir, options)?;

    let spec = WorkloadSpec::synthetic(
        KeyDistribution::ws2_medium_skew(NUM_KEYS),
        OperationMix::write_intensive(),
    );
    let mut generator = WorkloadGenerator::new(spec, 11);
    let started = std::time::Instant::now();
    for _ in 0..NUM_OPS {
        match generator.next_op() {
            Operation::Put { key, value } => db.put(&key, &value)?,
            Operation::Get { key } => {
                db.get(&key)?;
            }
            Operation::Delete { key } => db.delete(&key)?,
        }
    }
    let kops = NUM_OPS as f64 / started.elapsed().as_secs_f64() / 1e3;
    db.flush()?;
    db.wait_for_compactions()?;
    let stats = db.stats();
    db.close()?;
    std::fs::remove_dir_all(&dir).ok();
    Ok((label, stats, kops))
}

fn main() -> triad::Result<()> {
    println!(
        "Ablation on a 20%/80% skewed, 90%-write workload ({NUM_OPS} ops over {NUM_KEYS} keys)\n"
    );
    println!(
        "{:<12} {:>10} {:>14} {:>16} {:>8} {:>12} {:>12}",
        "config", "KOPS", "flushed bytes", "compacted bytes", "WA", "flushes", "compactions"
    );
    for triad in [
        TriadConfig::baseline(),
        TriadConfig::mem_only(),
        TriadConfig::disk_only(),
        TriadConfig::log_only(),
        TriadConfig::all_enabled(),
    ] {
        let (label, stats, kops) = run_one(triad)?;
        println!(
            "{:<12} {:>10.1} {:>14} {:>16} {:>8.2} {:>12} {:>12}",
            label,
            kops,
            stats.bytes_flushed,
            stats.bytes_compacted_written,
            stats.write_amplification(),
            stats.flush_count,
            stats.compaction_count
        );
    }
    println!(
        "\nExpected shape (paper Figures 10-11): every technique alone improves on the baseline;"
    );
    println!("TRIAD-MEM helps most under skew, TRIAD-DISK and TRIAD-LOG help most without skew.");
    Ok(())
}
