// lint-fixture: crates/workload/src/generator.rs
// Reading the wall clock makes the operation stream irreproducible: the
// bench-smoke stream checksum would drift from run to run.

fn next_op(&mut self) -> Op {
    let started = std::time::Instant::now();
    let stamp = std::time::SystemTime::now();
    Op::Get(key_for(started.elapsed().as_nanos() as u64))
}
