//! Durability and crash recovery walk-through.
//!
//! Writes a dataset, closes the store at an arbitrary point (some data flushed to
//! SSTables / CL-SSTables, some still only in the commit log), corrupts the tail of
//! the newest log to simulate a torn write during a crash, and then reopens the
//! store to show that every acknowledged-and-synced write is still there.
//!
//! Run with:
//! ```text
//! cargo run --release --example durability_recovery
//! ```

use triad::{Db, Options};

fn main() -> triad::Result<()> {
    let dir = std::env::temp_dir().join(format!("triad-durability-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut options =
        Options { memtable_size: 256 * 1024, max_log_size: 512 * 1024, ..Options::default() };
    options.triad.enable_all();

    // Phase 1: write two generations of data; the first is flushed, the second stays
    // in the memory component + commit log.
    {
        let db = Db::open(&dir, options.clone())?;
        for i in 0..5_000u64 {
            db.put(format!("order:{i:06}").into_bytes(), format!("v1-{i}").into_bytes())?;
        }
        db.flush()?;
        // The delete goes in before the updates: the torn-write simulation below
        // destroys the log's final record, and losing an unsynced tombstone would
        // (correctly!) resurrect the key — the assertions tolerate losing only the
        // newest v2 update.
        db.delete(b"order:004999")?;
        for i in 0..1_000u64 {
            db.put(format!("order:{i:06}").into_bytes(), format!("v2-{i}").into_bytes())?;
        }
        db.close()?;
        println!("wrote 5000 orders, deleted one, updated 1000 of them, then shut down");
    }

    // Phase 2: simulate a torn append at the tail of the newest commit log, as a
    // crash in the middle of a write would leave behind.
    let mut logs: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().map(|e| e == "log").unwrap_or(false))
        .collect();
    logs.sort();
    if let Some(newest) = logs.last() {
        let len = std::fs::metadata(newest).unwrap().len();
        if len > 5 {
            std::fs::OpenOptions::new().write(true).open(newest).unwrap().set_len(len - 5).unwrap();
            println!("truncated {} by 5 bytes to simulate a torn write", newest.display());
        }
    }

    // Phase 3: recovery. The torn record is discarded; everything else survives.
    let db = Db::open(&dir, options)?;
    let mut v1 = 0u64;
    let mut v2 = 0u64;
    for i in 0..5_000u64 {
        match db.get(format!("order:{i:06}").into_bytes())? {
            Some(value) if value.starts_with(b"v2-") => v2 += 1,
            Some(value) if value.starts_with(b"v1-") => v1 += 1,
            Some(_) => unreachable!("unexpected value format"),
            None => assert_eq!(i, 4_999, "only the deleted order may be absent"),
        }
    }
    println!(
        "after recovery: {v2} orders at version 2, {v1} at version 1, deleted order still absent"
    );
    assert!(v2 >= 999, "at most the single torn record may be lost");
    assert_eq!(v1 + v2, 4_999);

    db.close()?;
    std::fs::remove_dir_all(&dir).ok();
    println!("recovery successful");
    Ok(())
}
