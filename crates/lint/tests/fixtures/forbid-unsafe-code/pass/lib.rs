// lint-fixture: crates/example/src/lib.rs
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub fn entry() {}
