// lint-fixture: crates/core/src/flush.rs
// A loop acquiring one WAL lock per iteration outside the snapshot gate:
// guards accumulate across shards, the cross-shard deadlock shape.

fn drain_all(shards: &[Shard]) -> Vec<WalGuard> {
    let mut wals = Vec::new();
    for shard in shards {
        wals.push(shard.inner.wal.lock());
    }
    wals
}
