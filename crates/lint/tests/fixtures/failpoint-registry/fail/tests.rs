// lint-fixture: crates/core/tests/engine_fixture.rs
// "flush.ghost_point" does not exist in the engine: the test arms a point
// that can never fire.

fn exercise() {
    failpoints.arm("flush.ghost_point", FailpointAction::ReturnError);
}
