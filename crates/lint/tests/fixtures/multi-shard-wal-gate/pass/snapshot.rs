// lint-fixture: crates/core/src/snapshot.rs
// The one legal multi-shard WAL drain: a loop over shards inside the marked
// SNAPSHOT-GATE region, serialized by the router gate taken just above it.

fn open_multi(shards: &[Shard], router: &RankedRwLock<()>) -> Snapshot {
    let _coord = router.write();
    // SNAPSHOT-GATE-BEGIN: drain every shard under the router gate.
    let mut wals = Vec::new();
    for shard in shards {
        wals.push(shard.inner.wal.lock());
    }
    // SNAPSHOT-GATE-END
    Snapshot::from_parts(wals)
}
