//! Key-popularity distributions.
//!
//! The synthetic workloads of the paper are described as "x% of the data is accessed
//! and updated y% of the time" (hot-set distributions) or as uniform. The production
//! profiles are modelled as Zipfian. [`KeyDistribution`] unifies the three so the
//! generator and benchmark harness can switch between them with one enum.

use rand::Rng;

use crate::zipf::Zipfian;

/// A distribution over key indexes `0..num_keys`.
#[derive(Debug, Clone)]
pub enum KeyDistribution {
    /// Every key is equally likely (the paper's WS3 / "No Skew").
    Uniform {
        /// Number of keys in the key space.
        num_keys: u64,
    },
    /// A fraction of the key space ("hot keys") receives a fixed share of accesses.
    ///
    /// WS1 is `hot_fraction = 0.01, hot_access_share = 0.99`; WS2 is `0.20 / 0.80`.
    HotCold {
        /// Number of keys in the key space.
        num_keys: u64,
        /// Fraction of the key space that is hot, in `(0, 1]`.
        hot_fraction: f64,
        /// Probability that an access targets the hot set, in `[0, 1]`.
        hot_access_share: f64,
    },
    /// Zipf-distributed popularity with exponent `theta`.
    Zipfian {
        /// Number of keys in the key space.
        num_keys: u64,
        /// Skew exponent in `(0, 1)`.
        theta: f64,
        /// Pre-built sampler.
        sampler: Zipfian,
    },
}

impl KeyDistribution {
    /// Creates a uniform distribution over `num_keys` keys.
    pub fn uniform(num_keys: u64) -> Self {
        assert!(num_keys > 0, "key space must be non-empty");
        KeyDistribution::Uniform { num_keys }
    }

    /// Creates a hot/cold distribution: `hot_fraction` of the keys receive
    /// `hot_access_share` of the accesses.
    pub fn hot_cold(num_keys: u64, hot_fraction: f64, hot_access_share: f64) -> Self {
        assert!(num_keys > 0, "key space must be non-empty");
        assert!(hot_fraction > 0.0 && hot_fraction <= 1.0, "hot fraction must be in (0, 1]");
        assert!((0.0..=1.0).contains(&hot_access_share), "hot access share must be in [0, 1]");
        KeyDistribution::HotCold { num_keys, hot_fraction, hot_access_share }
    }

    /// Creates a Zipfian distribution with exponent `theta`.
    pub fn zipfian(num_keys: u64, theta: f64) -> Self {
        KeyDistribution::Zipfian { num_keys, theta, sampler: Zipfian::new(num_keys, theta) }
    }

    /// The paper's WS1: 1% of the data receives 99% of the accesses.
    pub fn ws1_high_skew(num_keys: u64) -> Self {
        Self::hot_cold(num_keys, 0.01, 0.99)
    }

    /// The paper's WS2: 20% of the data receives 80% of the accesses.
    pub fn ws2_medium_skew(num_keys: u64) -> Self {
        Self::hot_cold(num_keys, 0.20, 0.80)
    }

    /// The paper's WS3: uniform popularity.
    pub fn ws3_uniform(num_keys: u64) -> Self {
        Self::uniform(num_keys)
    }

    /// Number of keys in the key space.
    pub fn num_keys(&self) -> u64 {
        match self {
            KeyDistribution::Uniform { num_keys } => *num_keys,
            KeyDistribution::HotCold { num_keys, .. } => *num_keys,
            KeyDistribution::Zipfian { num_keys, .. } => *num_keys,
        }
    }

    /// Samples a key index.
    ///
    /// Key indexes are *scrambled* relative to popularity rank (multiplicative
    /// hashing), so that hot keys are spread across the key space instead of being
    /// clustered at the low end — matching real workloads where popular keys are not
    /// lexicographically adjacent.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        match self {
            KeyDistribution::Uniform { num_keys } => rng.gen_range(0..*num_keys),
            KeyDistribution::HotCold { num_keys, hot_fraction, hot_access_share } => {
                let hot_keys = ((*num_keys as f64) * hot_fraction).ceil().max(1.0) as u64;
                let hot_keys = hot_keys.min(*num_keys);
                let rank = if rng.gen::<f64>() < *hot_access_share {
                    rng.gen_range(0..hot_keys)
                } else if hot_keys < *num_keys {
                    rng.gen_range(hot_keys..*num_keys)
                } else {
                    rng.gen_range(0..*num_keys)
                };
                scramble(rank, *num_keys)
            }
            KeyDistribution::Zipfian { num_keys, sampler, .. } => {
                scramble(sampler.sample(rng), *num_keys)
            }
        }
    }

    /// Returns the set of popularity ranks considered "hot" for analysis purposes
    /// (`None` for uniform distributions).
    pub fn hot_key_count(&self) -> Option<u64> {
        match self {
            KeyDistribution::Uniform { .. } => None,
            KeyDistribution::HotCold { num_keys, hot_fraction, .. } => {
                Some((((*num_keys as f64) * hot_fraction).ceil() as u64).min(*num_keys).max(1))
            }
            KeyDistribution::Zipfian { num_keys, .. } => Some((num_keys / 100).max(1)),
        }
    }
}

/// Maps a popularity rank to a stable, spread-out key index in `0..num_keys`.
///
/// The mapping is a *bijection* on `0..num_keys` (multiplication by a constant
/// coprime with `num_keys`), so the popularity mass assigned to each rank lands on
/// exactly one key — hot keys are spread across the key space without collisions
/// that would distort the configured skew.
fn scramble(rank: u64, num_keys: u64) -> u64 {
    // A large prime; coprime with any num_keys that is not a multiple of it.
    const MULTIPLIER: u64 = 2_147_483_647;
    const FALLBACK: u64 = 1_000_003;
    let multiplier = if num_keys % MULTIPLIER == 0 { FALLBACK } else { MULTIPLIER };
    ((u128::from(rank) * u128::from(multiplier)) % u128::from(num_keys)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn frequency(dist: &KeyDistribution, samples: usize, seed: u64) -> HashMap<u64, u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = HashMap::new();
        for _ in 0..samples {
            *counts.entry(dist.sample(&mut rng)).or_insert(0u64) += 1;
        }
        counts
    }

    #[test]
    fn uniform_spreads_accesses_evenly() {
        let dist = KeyDistribution::ws3_uniform(1_000);
        let counts = frequency(&dist, 200_000, 1);
        assert!(counts.len() > 990, "virtually every key should be touched");
        let max = *counts.values().max().unwrap();
        let min = *counts.values().min().unwrap();
        assert!(
            max < min * 3,
            "uniform counts should be within a small factor (min {min}, max {max})"
        );
        assert_eq!(dist.hot_key_count(), None);
    }

    #[test]
    fn ws1_concentrates_99_percent_on_1_percent_of_keys() {
        let num_keys = 10_000;
        let dist = KeyDistribution::ws1_high_skew(num_keys);
        let counts = frequency(&dist, 300_000, 2);
        let mut sorted: Vec<u64> = counts.values().copied().collect();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let hot_count = dist.hot_key_count().unwrap() as usize;
        assert_eq!(hot_count, 100);
        let hot_share: u64 = sorted.iter().take(hot_count).sum();
        let share = hot_share as f64 / 300_000.0;
        assert!((share - 0.99).abs() < 0.02, "hot share {share} should be ~0.99");
    }

    #[test]
    fn ws2_concentrates_80_percent_on_20_percent_of_keys() {
        let num_keys = 10_000;
        let dist = KeyDistribution::ws2_medium_skew(num_keys);
        let counts = frequency(&dist, 300_000, 3);
        let mut sorted: Vec<u64> = counts.values().copied().collect();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let hot_count = dist.hot_key_count().unwrap() as usize;
        assert_eq!(hot_count, 2_000);
        let hot_share: u64 = sorted.iter().take(hot_count).sum();
        let share = hot_share as f64 / 300_000.0;
        assert!((share - 0.80).abs() < 0.03, "hot share {share} should be ~0.80");
    }

    #[test]
    fn zipfian_distribution_is_skewed_and_in_range() {
        let dist = KeyDistribution::zipfian(5_000, 0.99);
        let counts = frequency(&dist, 100_000, 4);
        for &key in counts.keys() {
            assert!(key < 5_000);
        }
        let mut sorted: Vec<u64> = counts.values().copied().collect();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top_share: u64 = sorted.iter().take(50).sum();
        assert!(top_share as f64 / 100_000.0 > 0.3, "top 1% of keys should take a large share");
    }

    #[test]
    fn hot_keys_are_scattered_across_the_key_space() {
        // The scramble step must prevent all hot keys from being lexicographically
        // adjacent, otherwise flushes would produce unrealistically narrow SSTables.
        let dist = KeyDistribution::ws1_high_skew(10_000);
        let counts = frequency(&dist, 100_000, 5);
        let mut hot: Vec<u64> =
            counts.iter().filter(|(_, &count)| count > 500).map(|(&key, _)| key).collect();
        hot.sort_unstable();
        assert!(hot.len() > 20, "expect a recognisable hot set");
        let span = hot.last().unwrap() - hot.first().unwrap();
        assert!(span > 5_000, "hot keys should span most of the key space, span {span}");
    }

    #[test]
    fn samples_are_deterministic_per_seed() {
        let dist = KeyDistribution::ws2_medium_skew(1_000);
        let a = frequency(&dist, 1_000, 9);
        let b = frequency(&dist, 1_000, 9);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn hot_cold_rejects_zero_fraction() {
        KeyDistribution::hot_cold(100, 0.0, 0.5);
    }

    #[test]
    fn degenerate_full_hot_set_still_works() {
        let dist = KeyDistribution::hot_cold(100, 1.0, 0.5);
        let counts = frequency(&dist, 10_000, 10);
        for &key in counts.keys() {
            assert!(key < 100);
        }
    }
}
