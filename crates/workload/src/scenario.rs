//! Declarative production-traffic scenarios.
//!
//! The paper's claims are about production traffic — skewed, overwrite-heavy,
//! bursty — which a closed-loop, put-only sweep cannot represent. A
//! [`Scenario`] composes the crate's raw pieces ([`KeyDistribution`],
//! Zipfian sampling, operation mixes) into a named, fully deterministic
//! description of such traffic:
//!
//! * **YCSB-style mixes A–F** ([`Scenario::ycsb`]): the standard
//!   read/update/insert/scan/read-modify-write blends over a Zipfian key
//!   popularity. Workload D's "read latest" is approximated with a hot-set
//!   drift whose offset tracks the most recently written region.
//! * **Hot-set drift** ([`HotSetDrift`]): the sampled popularity rank is
//!   shifted by an offset that rotates through the key space every
//!   `period_ops` operations, modelling popularity that moves over time.
//! * **Open-loop arrival** ([`ArrivalProcess`]): every event carries a
//!   deterministic arrival timestamp drawn from a seeded Poisson process
//!   (optionally with diurnal bursts), so a harness can measure latency
//!   *under load* instead of closed-loop backpressure.
//!
//! Everything is seeded: `(scenario, seed, ops)` always produces the same
//! event stream, byte for byte, which [`stream_checksum`] turns into a single
//! comparable fingerprint — the property that makes scenario regressions
//! diffable across machines and runs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dist::KeyDistribution;
use crate::{encode_key, encode_value};

/// The kind of operation a scenario event issues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScenarioOpKind {
    /// A point lookup.
    Get,
    /// A blind insert or update.
    Put,
    /// A short range scan.
    Scan,
    /// A read-modify-write: a get immediately followed by a put of the same
    /// key (YCSB workload F's signature operation).
    ReadModifyWrite,
    /// A delete.
    Delete,
}

impl ScenarioOpKind {
    /// Every kind, in the order reports list them.
    pub fn all() -> [ScenarioOpKind; 5] {
        [
            ScenarioOpKind::Get,
            ScenarioOpKind::Put,
            ScenarioOpKind::Scan,
            ScenarioOpKind::ReadModifyWrite,
            ScenarioOpKind::Delete,
        ]
    }

    /// A short stable label (`"get"`, `"put"`, `"scan"`, `"rmw"`, `"delete"`).
    pub fn label(self) -> &'static str {
        match self {
            ScenarioOpKind::Get => "get",
            ScenarioOpKind::Put => "put",
            ScenarioOpKind::Scan => "scan",
            ScenarioOpKind::ReadModifyWrite => "rmw",
            ScenarioOpKind::Delete => "delete",
        }
    }
}

/// A single operation, fully materialised (keys encoded, values built).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioOp {
    /// Read the current value of `key`.
    Get {
        /// The encoded key.
        key: Vec<u8>,
    },
    /// Insert or update `key`.
    Put {
        /// The encoded key.
        key: Vec<u8>,
        /// The value to write.
        value: Vec<u8>,
    },
    /// Scan `len` live pairs starting at `start` (inclusive).
    Scan {
        /// The encoded inclusive start key.
        start: Vec<u8>,
        /// Maximum number of pairs to read.
        len: u64,
    },
    /// Read `key`, then write `value` back to it.
    ReadModifyWrite {
        /// The encoded key.
        key: Vec<u8>,
        /// The replacement value.
        value: Vec<u8>,
    },
    /// Delete `key`.
    Delete {
        /// The encoded key.
        key: Vec<u8>,
    },
}

impl ScenarioOp {
    /// The kind of this operation.
    pub fn kind(&self) -> ScenarioOpKind {
        match self {
            ScenarioOp::Get { .. } => ScenarioOpKind::Get,
            ScenarioOp::Put { .. } => ScenarioOpKind::Put,
            ScenarioOp::Scan { .. } => ScenarioOpKind::Scan,
            ScenarioOp::ReadModifyWrite { .. } => ScenarioOpKind::ReadModifyWrite,
            ScenarioOp::Delete { .. } => ScenarioOpKind::Delete,
        }
    }
}

/// A probability mix over [`ScenarioOpKind`]s; probabilities must sum to 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioMix {
    /// Probability of a point lookup.
    pub get: f64,
    /// Probability of a blind put.
    pub put: f64,
    /// Probability of a range scan.
    pub scan: f64,
    /// Probability of a read-modify-write.
    pub rmw: f64,
    /// Probability of a delete.
    pub delete: f64,
}

impl ScenarioMix {
    /// Creates a mix, validating non-negativity and that the sum is 1.
    pub fn new(get: f64, put: f64, scan: f64, rmw: f64, delete: f64) -> Self {
        for p in [get, put, scan, rmw, delete] {
            assert!(p >= 0.0, "probabilities must be non-negative, got {p}");
        }
        let sum = get + put + scan + rmw + delete;
        assert!((sum - 1.0).abs() < 1e-9, "probabilities must sum to 1, got {sum}");
        ScenarioMix { get, put, scan, rmw, delete }
    }

    /// The probability assigned to `kind`.
    pub fn probability(&self, kind: ScenarioOpKind) -> f64 {
        match kind {
            ScenarioOpKind::Get => self.get,
            ScenarioOpKind::Put => self.put,
            ScenarioOpKind::Scan => self.scan,
            ScenarioOpKind::ReadModifyWrite => self.rmw,
            ScenarioOpKind::Delete => self.delete,
        }
    }

    /// Samples an operation kind.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> ScenarioOpKind {
        let x: f64 = rng.gen();
        let mut edge = self.get;
        if x < edge {
            return ScenarioOpKind::Get;
        }
        edge += self.put;
        if x < edge {
            return ScenarioOpKind::Put;
        }
        edge += self.scan;
        if x < edge {
            return ScenarioOpKind::Scan;
        }
        edge += self.rmw;
        if x < edge {
            return ScenarioOpKind::ReadModifyWrite;
        }
        ScenarioOpKind::Delete
    }

    /// A short label like `"50g-50p"`, listing only the non-zero shares.
    pub fn label(&self) -> String {
        let mut parts = Vec::new();
        for (p, tag) in [
            (self.get, "g"),
            (self.put, "p"),
            (self.scan, "s"),
            (self.rmw, "m"),
            (self.delete, "d"),
        ] {
            let pct = (p * 100.0).round() as u32;
            if pct > 0 {
                parts.push(format!("{pct}{tag}"));
            }
        }
        parts.join("-")
    }
}

/// Popularity that moves over time: every `period_ops` operations the sampled
/// rank is shifted by a further `step_keys` (modulo the key space), so the hot
/// set rotates through the keys instead of staying pinned to one region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HotSetDrift {
    /// Operations between offset advances.
    pub period_ops: u64,
    /// Keys the offset advances by each period.
    pub step_keys: u64,
}

/// The arrival process of an open-loop run.
///
/// Open-loop means operations arrive on a schedule *independent of service
/// time*: a slow store makes the queue grow (and queueing delay count against
/// latency) instead of silently slowing the generator down, which is how a
/// closed-loop harness hides overload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// No schedule: issue the next operation as soon as the previous one
    /// finishes (what the classic figure benches do). Arrival timestamps are
    /// all zero.
    ClosedLoop,
    /// A Poisson process: exponential inter-arrival times at a fixed rate.
    Poisson {
        /// Mean arrival rate, operations per second.
        ops_per_sec: f64,
    },
    /// A diurnal square wave: a Poisson process whose rate alternates between
    /// `base_ops_per_sec` and `burst_ops_per_sec` every `phase_ns` of virtual
    /// time — quiet phase, burst phase, quiet phase, …
    Burst {
        /// Arrival rate during quiet phases, operations per second.
        base_ops_per_sec: f64,
        /// Arrival rate during burst phases, operations per second.
        burst_ops_per_sec: f64,
        /// Length of each phase in nanoseconds of virtual time.
        phase_ns: u64,
    },
}

impl ArrivalProcess {
    /// A short stable label for tables and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            ArrivalProcess::ClosedLoop => "closed-loop",
            ArrivalProcess::Poisson { .. } => "poisson",
            ArrivalProcess::Burst { .. } => "burst",
        }
    }

    /// The mean offered rate in operations per second (0 for closed loop,
    /// the phase average for bursts).
    pub fn offered_ops_per_sec(&self) -> f64 {
        match self {
            ArrivalProcess::ClosedLoop => 0.0,
            ArrivalProcess::Poisson { ops_per_sec } => *ops_per_sec,
            ArrivalProcess::Burst { base_ops_per_sec, burst_ops_per_sec, .. } => {
                (base_ops_per_sec + burst_ops_per_sec) / 2.0
            }
        }
    }

    /// The arrival rate at virtual time `t_ns`.
    fn rate_at(&self, t_ns: u64) -> f64 {
        match self {
            ArrivalProcess::ClosedLoop => 0.0,
            ArrivalProcess::Poisson { ops_per_sec } => *ops_per_sec,
            ArrivalProcess::Burst { base_ops_per_sec, burst_ops_per_sec, phase_ns } => {
                if (t_ns / (*phase_ns).max(1)) % 2 == 1 {
                    *burst_ops_per_sec
                } else {
                    *base_ops_per_sec
                }
            }
        }
    }
}

/// A declarative description of one production-traffic scenario.
///
/// A scenario owns everything needed to reproduce its operation stream:
/// key-space shape, operation mix, key popularity (plus optional drift), the
/// arrival process, and how scans behave. [`Scenario::stream`] turns it into
/// a deterministic event iterator for a given seed.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Stable scenario name used in tables and JSON (e.g. `"ycsb_a"`).
    pub name: String,
    /// Number of distinct keys in the key space.
    pub num_keys: u64,
    /// Encoded key size in bytes.
    pub key_size: usize,
    /// Value size in bytes.
    pub value_size: usize,
    /// Operation mix.
    pub mix: ScenarioMix,
    /// Key popularity distribution.
    pub distribution: KeyDistribution,
    /// Optional rotation of the hot set over time.
    pub drift: Option<HotSetDrift>,
    /// Arrival process of the open-loop schedule.
    pub arrival: ArrivalProcess,
    /// Maximum pairs read by each scan.
    pub scan_len: u64,
    /// When `true`, scans run against a rolling `Db::snapshot`-style frozen
    /// view instead of the live tree (the harness decides how often to roll).
    pub snapshot_scans: bool,
    /// Fraction of the key space inserted before the timed phase.
    pub prepopulate_fraction: f64,
}

/// The Zipfian exponent YCSB uses by default.
const YCSB_THETA: f64 = 0.99;

impl Scenario {
    /// Builds the YCSB-style workload `which` (`'a'..='f'`) over `num_keys`
    /// keys with the standard Zipfian popularity (theta 0.99):
    ///
    /// * **A** — update heavy: 50% reads, 50% updates.
    /// * **B** — read mostly: 95% reads, 5% updates.
    /// * **C** — read only.
    /// * **D** — read latest: 95% reads, 5% inserts; approximated here by a
    ///   hot-set drift that keeps rotating the popular region, modelling
    ///   popularity that follows the freshest data.
    /// * **E** — short scans: 95% scans, 5% inserts, on a rolling snapshot.
    /// * **F** — read-modify-write: 50% reads, 50% RMW.
    ///
    /// # Panics
    /// Panics if `which` is not in `'a'..='f'`.
    pub fn ycsb(which: char, num_keys: u64) -> Scenario {
        let (mix, drift, snapshot_scans) = match which {
            'a' => (ScenarioMix::new(0.50, 0.50, 0.0, 0.0, 0.0), None, false),
            'b' => (ScenarioMix::new(0.95, 0.05, 0.0, 0.0, 0.0), None, false),
            'c' => (ScenarioMix::new(1.0, 0.0, 0.0, 0.0, 0.0), None, false),
            'd' => (
                ScenarioMix::new(0.95, 0.05, 0.0, 0.0, 0.0),
                // "Read latest": popularity follows the most recently written
                // region, modelled as a steadily rotating hot set.
                Some(HotSetDrift { period_ops: 500, step_keys: (num_keys / 20).max(1) }),
                false,
            ),
            'e' => (ScenarioMix::new(0.0, 0.05, 0.95, 0.0, 0.0), None, true),
            'f' => (ScenarioMix::new(0.50, 0.0, 0.0, 0.50, 0.0), None, false),
            other => panic!("YCSB workloads are 'a'..='f', got {other:?}"),
        };
        Scenario {
            name: format!("ycsb_{which}"),
            num_keys,
            key_size: 8,
            value_size: 255,
            mix,
            distribution: KeyDistribution::zipfian(num_keys, YCSB_THETA),
            drift,
            arrival: ArrivalProcess::Poisson { ops_per_sec: 20_000.0 },
            scan_len: 50,
            snapshot_scans,
            prepopulate_fraction: 0.5,
        }
    }

    /// A diurnal burst scenario: a balanced read/write mix with occasional
    /// scans whose arrival rate alternates between a quiet base and an 8×
    /// burst — the open-loop schedule that makes queueing delay visible.
    pub fn diurnal_burst(num_keys: u64) -> Scenario {
        Scenario {
            name: "diurnal_burst".to_string(),
            num_keys,
            key_size: 8,
            value_size: 255,
            mix: ScenarioMix::new(0.45, 0.45, 0.10, 0.0, 0.0),
            distribution: KeyDistribution::zipfian(num_keys, YCSB_THETA),
            drift: None,
            arrival: ArrivalProcess::Burst {
                base_ops_per_sec: 5_000.0,
                burst_ops_per_sec: 40_000.0,
                phase_ns: 50_000_000, // 50 ms phases
            },
            scan_len: 20,
            snapshot_scans: false,
            prepopulate_fraction: 0.5,
        }
    }

    /// Small-value heavy-overwrite churn — TRIAD's home turf. 90% overwrites
    /// of 64-byte values over a skewed key space, with a trickle of gets and
    /// rolling-snapshot scans so PR 5's retention machinery is exercised while
    /// the hot/cold memtable split and CL-SSTables absorb the churn.
    pub fn overwrite_churn(num_keys: u64) -> Scenario {
        Scenario {
            name: "overwrite_churn".to_string(),
            num_keys,
            key_size: 8,
            value_size: 64,
            mix: ScenarioMix::new(0.08, 0.90, 0.02, 0.0, 0.0),
            distribution: KeyDistribution::ws1_high_skew(num_keys),
            drift: None,
            arrival: ArrivalProcess::Poisson { ops_per_sec: 30_000.0 },
            scan_len: 20,
            snapshot_scans: true,
            prepopulate_fraction: 0.5,
        }
    }

    /// A hot-set drift scenario: write-heavy Zipfian traffic whose popular
    /// region rotates through the key space, defeating any static notion of
    /// "hot" (the stress case for TRIAD-MEM's per-rotation hot/cold split).
    pub fn hot_set_drift(num_keys: u64) -> Scenario {
        Scenario {
            name: "hot_set_drift".to_string(),
            num_keys,
            key_size: 8,
            value_size: 255,
            mix: ScenarioMix::new(0.30, 0.70, 0.0, 0.0, 0.0),
            distribution: KeyDistribution::zipfian(num_keys, YCSB_THETA),
            drift: Some(HotSetDrift { period_ops: 200, step_keys: (num_keys / 10).max(1) }),
            arrival: ArrivalProcess::Poisson { ops_per_sec: 20_000.0 },
            scan_len: 20,
            snapshot_scans: false,
            prepopulate_fraction: 0.5,
        }
    }

    /// Wraps a production profile (paper §5.2) as a closed-loop, write-only
    /// scenario — the shared code path `fig9a_production` drives, so
    /// production numbers and scenario numbers come from one runner.
    pub fn production(profile: &crate::production::ProductionProfile) -> Scenario {
        Scenario {
            name: format!("production_{}", profile.workload.label().replace(' ', "_")),
            num_keys: profile.num_keys,
            key_size: 16,
            value_size: profile.value_size,
            mix: ScenarioMix::new(0.0, 1.0, 0.0, 0.0, 0.0),
            distribution: KeyDistribution::zipfian(profile.num_keys, profile.zipf_theta),
            drift: None,
            arrival: ArrivalProcess::ClosedLoop,
            scan_len: 0,
            snapshot_scans: false,
            prepopulate_fraction: 0.5,
        }
    }

    /// The scenario matrix the `fig_scenarios` binary runs: YCSB A–F plus the
    /// diurnal burst, overwrite churn and hot-set drift scenarios.
    pub fn suite(num_keys: u64) -> Vec<Scenario> {
        let mut scenarios: Vec<Scenario> =
            ['a', 'b', 'c', 'd', 'e', 'f'].iter().map(|&w| Scenario::ycsb(w, num_keys)).collect();
        scenarios.push(Scenario::diurnal_burst(num_keys));
        scenarios.push(Scenario::overwrite_churn(num_keys));
        scenarios.push(Scenario::hot_set_drift(num_keys));
        scenarios
    }

    /// The deterministic event stream for `(self, seed)`, `ops` events long.
    pub fn stream(&self, seed: u64, ops: u64) -> ScenarioStream {
        ScenarioStream {
            scenario: self.clone(),
            rng: StdRng::seed_from_u64(seed),
            remaining: ops,
            issued: 0,
            t_ns: 0,
            next_version: 0,
        }
    }

    /// The keys and values inserted before the timed phase (an evenly spaced
    /// subset covering `prepopulate_fraction` of the key space).
    pub fn prepopulation(&self) -> Vec<(Vec<u8>, Vec<u8>)> {
        let count = ((self.num_keys as f64) * self.prepopulate_fraction.clamp(0.0, 1.0)) as u64;
        if count == 0 {
            return Vec::new();
        }
        let step = (self.num_keys / count).max(1);
        let mut pairs = Vec::with_capacity(count as usize);
        let mut index = 0u64;
        while index < self.num_keys && (pairs.len() as u64) < count {
            pairs.push((encode_key(index, self.key_size), encode_value(index, 0, self.value_size)));
            index += step;
        }
        pairs
    }
}

/// One scheduled operation: what to do and when it arrives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioEvent {
    /// Arrival offset from the start of the run, in nanoseconds of virtual
    /// time (0 for every event of a closed-loop scenario).
    pub arrival_ns: u64,
    /// The operation to execute.
    pub op: ScenarioOp,
}

/// The deterministic event iterator produced by [`Scenario::stream`].
#[derive(Debug)]
pub struct ScenarioStream {
    scenario: Scenario,
    rng: StdRng,
    remaining: u64,
    issued: u64,
    t_ns: u64,
    next_version: u64,
}

impl ScenarioStream {
    /// Samples a key index: popularity rank from the distribution, shifted by
    /// the current drift offset (if any), then kept in range.
    fn sample_key_index(&mut self) -> u64 {
        let base = self.scenario.distribution.sample(&mut self.rng);
        match self.scenario.drift {
            None => base,
            Some(drift) => {
                let offset = (self.issued / drift.period_ops.max(1)).wrapping_mul(drift.step_keys)
                    % self.scenario.num_keys;
                (base + offset) % self.scenario.num_keys
            }
        }
    }

    /// Advances virtual time by one exponential inter-arrival step.
    fn advance_arrival(&mut self) -> u64 {
        let rate = self.scenario.arrival.rate_at(self.t_ns);
        if rate <= 0.0 {
            return 0; // Closed loop: no schedule.
        }
        // Inverse-CDF exponential sampling; clamp u away from 1 so ln stays
        // finite. The draw is part of the seeded stream, so arrivals are as
        // reproducible as the operations themselves.
        let u: f64 = self.rng.gen::<f64>().min(1.0 - 1e-12);
        let dt_sec = -(1.0 - u).ln() / rate;
        self.t_ns += (dt_sec * 1e9) as u64;
        self.t_ns
    }
}

impl Iterator for ScenarioStream {
    type Item = ScenarioEvent;

    fn next(&mut self) -> Option<ScenarioEvent> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let arrival_ns = self.advance_arrival();
        let kind = self.scenario.mix.sample(&mut self.rng);
        let key_index = self.sample_key_index();
        let key = encode_key(key_index, self.scenario.key_size);
        let op = match kind {
            ScenarioOpKind::Get => ScenarioOp::Get { key },
            ScenarioOpKind::Put => {
                self.next_version += 1;
                let value = encode_value(key_index, self.next_version, self.scenario.value_size);
                ScenarioOp::Put { key, value }
            }
            ScenarioOpKind::Scan => {
                ScenarioOp::Scan { start: key, len: self.scenario.scan_len.max(1) }
            }
            ScenarioOpKind::ReadModifyWrite => {
                self.next_version += 1;
                let value = encode_value(key_index, self.next_version, self.scenario.value_size);
                ScenarioOp::ReadModifyWrite { key, value }
            }
            ScenarioOpKind::Delete => ScenarioOp::Delete { key },
        };
        self.issued += 1;
        Some(ScenarioEvent { arrival_ns, op })
    }
}

/// FNV-1a fingerprint of the full event stream `(scenario, seed, ops)`.
///
/// Two runs with the same inputs produce the same checksum on any machine;
/// the figure binary records it in `BENCH_scenarios.json` so a reviewer can
/// verify that two result files measured *identical* op streams.
pub fn stream_checksum(scenario: &Scenario, seed: u64, ops: u64) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x1000_0000_01b3;
    let mut hash = FNV_OFFSET;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
    };
    for event in scenario.stream(seed, ops) {
        mix(&event.arrival_ns.to_le_bytes());
        match &event.op {
            ScenarioOp::Get { key } => {
                mix(b"g");
                mix(key);
            }
            ScenarioOp::Put { key, value } => {
                mix(b"p");
                mix(key);
                mix(value);
            }
            ScenarioOp::Scan { start, len } => {
                mix(b"s");
                mix(start);
                mix(&len.to_le_bytes());
            }
            ScenarioOp::ReadModifyWrite { key, value } => {
                mix(b"m");
                mix(key);
                mix(value);
            }
            ScenarioOp::Delete { key } => {
                mix(b"d");
                mix(key);
            }
        }
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ycsb_mixes_match_the_standard_shapes() {
        let a = Scenario::ycsb('a', 1_000);
        assert_eq!(a.mix.label(), "50g-50p");
        let b = Scenario::ycsb('b', 1_000);
        assert_eq!(b.mix.label(), "95g-5p");
        let c = Scenario::ycsb('c', 1_000);
        assert_eq!(c.mix.label(), "100g");
        let d = Scenario::ycsb('d', 1_000);
        assert!(d.drift.is_some(), "D approximates read-latest with drift");
        let e = Scenario::ycsb('e', 1_000);
        assert!(e.snapshot_scans, "E scans a rolling snapshot");
        assert!((e.mix.scan - 0.95).abs() < 1e-9);
        let f = Scenario::ycsb('f', 1_000);
        assert!((f.mix.rmw - 0.50).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn unknown_ycsb_letter_panics() {
        Scenario::ycsb('z', 1_000);
    }

    #[test]
    fn suite_covers_the_required_scenarios() {
        let suite = Scenario::suite(1_000);
        let names: Vec<&str> = suite.iter().map(|s| s.name.as_str()).collect();
        assert!(names.len() >= 5);
        assert!(names.contains(&"ycsb_e"), "rolling-snapshot scan scenario");
        assert!(names.contains(&"diurnal_burst"), "open-loop burst scenario");
        assert!(names.contains(&"overwrite_churn"));
        // Every suite member arrives open-loop (the point of the harness).
        for scenario in &suite {
            assert_ne!(scenario.arrival, ArrivalProcess::ClosedLoop, "{}", scenario.name);
        }
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let scenario = Scenario::ycsb('a', 2_000);
        let a: Vec<ScenarioEvent> = scenario.stream(7, 500).collect();
        let b: Vec<ScenarioEvent> = scenario.stream(7, 500).collect();
        assert_eq!(a, b);
        let c: Vec<ScenarioEvent> = scenario.stream(8, 500).collect();
        assert_ne!(a, c, "different seeds must differ");
        assert_eq!(stream_checksum(&scenario, 7, 500), stream_checksum(&scenario, 7, 500));
        assert_ne!(stream_checksum(&scenario, 7, 500), stream_checksum(&scenario, 8, 500));
    }

    #[test]
    fn arrivals_are_monotone_and_rate_scaled() {
        let scenario = Scenario::ycsb('b', 2_000);
        let events: Vec<ScenarioEvent> = scenario.stream(3, 2_000).collect();
        let mut last = 0;
        for event in &events {
            assert!(event.arrival_ns >= last, "arrivals must be monotone");
            last = event.arrival_ns;
        }
        // 2000 events at 20k ops/s should take ~0.1 s of virtual time.
        let total_sec = last as f64 / 1e9;
        assert!((0.05..0.3).contains(&total_sec), "virtual duration {total_sec}s");
    }

    #[test]
    fn burst_schedule_alternates_rates() {
        let scenario = Scenario::diurnal_burst(2_000);
        let events: Vec<ScenarioEvent> = scenario.stream(5, 4_000).collect();
        let phase_ns = match scenario.arrival {
            ArrivalProcess::Burst { phase_ns, .. } => phase_ns,
            _ => unreachable!(),
        };
        // Count arrivals per phase parity: burst phases must be denser.
        let (mut quiet, mut burst) = (0u64, 0u64);
        for event in &events {
            if (event.arrival_ns / phase_ns) % 2 == 1 {
                burst += 1;
            } else {
                quiet += 1;
            }
        }
        assert!(
            burst > quiet * 2,
            "burst phases should carry most arrivals (quiet {quiet}, burst {burst})"
        );
        assert!(scenario.arrival.offered_ops_per_sec() > 0.0);
    }

    #[test]
    fn drift_rotates_the_hot_set() {
        let scenario = Scenario::hot_set_drift(10_000);
        // Compare the hottest key early vs late in the stream: with drift the
        // popular region must move.
        let events: Vec<ScenarioEvent> = scenario.stream(11, 20_000).collect();
        let hottest = |slice: &[ScenarioEvent]| -> u64 {
            let mut counts = std::collections::HashMap::new();
            for event in slice {
                let key = match &event.op {
                    ScenarioOp::Get { key }
                    | ScenarioOp::Put { key, .. }
                    | ScenarioOp::ReadModifyWrite { key, .. }
                    | ScenarioOp::Delete { key } => key,
                    ScenarioOp::Scan { start, .. } => start,
                };
                *counts.entry(crate::decode_key(key).unwrap()).or_insert(0u64) += 1;
            }
            counts.into_iter().max_by_key(|&(_, n)| n).map(|(k, _)| k).unwrap()
        };
        let early = hottest(&events[..2_000]);
        let late = hottest(&events[18_000..]);
        assert_ne!(early, late, "the hottest key must move as the hot set drifts");
    }

    #[test]
    fn mix_sampling_converges_and_scan_ops_carry_length() {
        let scenario = Scenario::ycsb('e', 2_000);
        let mut scans = 0u64;
        let mut puts = 0u64;
        let total = 20_000;
        for event in scenario.stream(1, total) {
            match event.op {
                ScenarioOp::Scan { len, .. } => {
                    assert_eq!(len, scenario.scan_len);
                    scans += 1;
                }
                ScenarioOp::Put { .. } => puts += 1,
                other => panic!("unexpected op in YCSB-E: {other:?}"),
            }
        }
        let scan_share = scans as f64 / total as f64;
        assert!((scan_share - 0.95).abs() < 0.01, "scan share {scan_share}");
        assert!(puts > 0);
    }

    #[test]
    fn production_scenario_is_closed_loop_write_only() {
        let profile = crate::production::ProductionProfile::new(
            crate::production::ProductionWorkload::W2,
            10_000,
        );
        let scenario = Scenario::production(&profile);
        assert_eq!(scenario.arrival, ArrivalProcess::ClosedLoop);
        assert!((scenario.mix.put - 1.0).abs() < 1e-9);
        assert_eq!(scenario.num_keys, profile.num_keys);
        for event in scenario.stream(2, 200) {
            assert_eq!(event.arrival_ns, 0, "closed loop carries no schedule");
            assert!(matches!(event.op, ScenarioOp::Put { .. }));
        }
    }

    #[test]
    fn prepopulation_covers_the_fraction() {
        let scenario = Scenario::ycsb('a', 10_000);
        let pairs = scenario.prepopulation();
        assert!((pairs.len() as i64 - 5_000).abs() <= 1, "got {}", pairs.len());
        for window in pairs.windows(2) {
            assert!(window[0].0 < window[1].0, "prepopulation keys sorted and distinct");
        }
    }

    #[test]
    #[should_panic]
    fn mix_must_sum_to_one() {
        ScenarioMix::new(0.5, 0.4, 0.0, 0.0, 0.0);
    }
}
