// lint-fixture: crates/workload/src/generator.rs
// Deterministic generation: time is an input, never read from the clock.

fn next_op(&mut self, now_nanos: u64) -> Op {
    let r = self.rng.gen_range(0..self.keyspace);
    Op::Get(key_for(r))
}
