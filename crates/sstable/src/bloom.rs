//! Bloom filter over user keys.
//!
//! Each SSTable (and CL-SSTable index) embeds a bloom filter built from the user
//! keys it contains, so that point lookups can skip tables — in particular the many
//! L0 tables TRIAD-DISK tolerates — without touching their data blocks. The filter
//! uses the standard double-hashing construction: `k` probe positions derived from
//! two independent 64-bit hashes.

use triad_common::{Error, Result};
use triad_hll::hash64;

/// A space-efficient approximate set membership structure.
///
/// False positives are possible (tuned by `bits_per_key`); false negatives are not.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u8>,
    num_probes: u8,
    num_keys: u64,
}

impl BloomFilter {
    /// Builds a filter for `keys` using roughly `bits_per_key` bits per key.
    ///
    /// `bits_per_key` of 10 gives a ~1% false-positive rate, matching common LSM
    /// store defaults.
    pub fn build<'a, I>(keys: I, bits_per_key: usize) -> BloomFilter
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        let hashes: Vec<u64> = keys.into_iter().map(hash64).collect();
        Self::build_from_hashes(&hashes, bits_per_key)
    }

    /// Builds a filter from pre-computed 64-bit key hashes.
    pub fn build_from_hashes(hashes: &[u64], bits_per_key: usize) -> BloomFilter {
        let bits_per_key = bits_per_key.max(1);
        // k = ln(2) * bits_per_key, clamped to a sensible range.
        let num_probes = ((bits_per_key as f64 * 0.69) as u8).clamp(1, 30);
        let nbits = (hashes.len() * bits_per_key).max(64);
        let nbytes = nbits.div_ceil(8);
        let mut bits = vec![0u8; nbytes];
        let nbits = nbytes * 8;
        for &hash in hashes {
            Self::set_probes(&mut bits, nbits, hash, num_probes);
        }
        BloomFilter { bits, num_probes, num_keys: hashes.len() as u64 }
    }

    fn probe_positions(nbits: usize, hash: u64, num_probes: u8) -> impl Iterator<Item = usize> {
        // Double hashing: h1 + i*h2, as used by LevelDB/RocksDB bloom filters.
        let h1 = hash;
        let h2 = hash.rotate_right(17) | 1;
        (0..num_probes).map(move |i| {
            let combined = h1.wrapping_add(u64::from(i).wrapping_mul(h2));
            (combined % nbits as u64) as usize
        })
    }

    fn set_probes(bits: &mut [u8], nbits: usize, hash: u64, num_probes: u8) {
        for pos in Self::probe_positions(nbits, hash, num_probes) {
            bits[pos / 8] |= 1 << (pos % 8);
        }
    }

    /// Returns `false` only if `key` was definitely not added to the filter.
    pub fn may_contain(&self, key: &[u8]) -> bool {
        self.may_contain_hash(hash64(key))
    }

    /// Hash-based variant of [`may_contain`](Self::may_contain).
    pub fn may_contain_hash(&self, hash: u64) -> bool {
        if self.num_keys == 0 {
            return false;
        }
        let nbits = self.bits.len() * 8;
        Self::probe_positions(nbits, hash, self.num_probes)
            .all(|pos| self.bits[pos / 8] & (1 << (pos % 8)) != 0)
    }

    /// Number of keys the filter was built from.
    pub fn num_keys(&self) -> u64 {
        self.num_keys
    }

    /// Size of the filter's bit array in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bits.len()
    }

    /// Serializes the filter: `[num_probes][num_keys: u64 LE][bits...]`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(9 + self.bits.len());
        out.push(self.num_probes);
        out.extend_from_slice(&self.num_keys.to_le_bytes());
        out.extend_from_slice(&self.bits);
        out
    }

    /// Deserializes a filter produced by [`to_bytes`](Self::to_bytes).
    pub fn from_bytes(bytes: &[u8]) -> Result<BloomFilter> {
        if bytes.len() < 9 {
            return Err(Error::corruption("bloom filter payload too short"));
        }
        let num_probes = bytes[0];
        if num_probes == 0 || num_probes > 30 {
            return Err(Error::corruption(format!("invalid bloom probe count {num_probes}")));
        }
        let num_keys = u64::from_le_bytes(bytes[1..9].try_into().expect("8 bytes"));
        let bits = bytes[9..].to_vec();
        if bits.is_empty() {
            return Err(Error::corruption("bloom filter has no bit array"));
        }
        Ok(BloomFilter { bits, num_probes, num_keys })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("user-key-{i:08}").into_bytes()).collect()
    }

    #[test]
    fn no_false_negatives() {
        let keys = keys(10_000);
        let filter = BloomFilter::build(keys.iter().map(|k| k.as_slice()), 10);
        for key in &keys {
            assert!(filter.may_contain(key), "key {key:?} must be reported present");
        }
        assert_eq!(filter.num_keys(), 10_000);
    }

    #[test]
    fn false_positive_rate_is_reasonable() {
        let present = keys(10_000);
        let filter = BloomFilter::build(present.iter().map(|k| k.as_slice()), 10);
        let mut false_positives = 0;
        let trials = 20_000;
        for i in 0..trials {
            let absent = format!("absent-key-{i:08}");
            if filter.may_contain(absent.as_bytes()) {
                false_positives += 1;
            }
        }
        let rate = f64::from(false_positives) / f64::from(trials);
        assert!(rate < 0.03, "false positive rate {rate} too high for 10 bits/key");
    }

    #[test]
    fn empty_filter_rejects_everything() {
        let filter = BloomFilter::build(std::iter::empty(), 10);
        assert!(!filter.may_contain(b"anything"));
        assert_eq!(filter.num_keys(), 0);
    }

    #[test]
    fn single_key_filter() {
        let filter = BloomFilter::build([b"only".as_slice()], 10);
        assert!(filter.may_contain(b"only"));
        assert_eq!(filter.num_keys(), 1);
    }

    #[test]
    fn more_bits_means_fewer_false_positives() {
        let present = keys(5_000);
        let small = BloomFilter::build(present.iter().map(|k| k.as_slice()), 4);
        let large = BloomFilter::build(present.iter().map(|k| k.as_slice()), 16);
        let count = |filter: &BloomFilter| {
            (0..20_000).filter(|i| filter.may_contain(format!("missing-{i}").as_bytes())).count()
        };
        let small_fp = count(&small);
        let large_fp = count(&large);
        assert!(
            large_fp < small_fp,
            "16 bits/key ({large_fp}) should beat 4 bits/key ({small_fp})"
        );
        assert!(large.size_bytes() > small.size_bytes());
    }

    #[test]
    fn serialization_round_trip() {
        let present = keys(1_000);
        let filter = BloomFilter::build(present.iter().map(|k| k.as_slice()), 10);
        let restored = BloomFilter::from_bytes(&filter.to_bytes()).expect("round trips");
        assert_eq!(restored, filter);
        for key in &present {
            assert!(restored.may_contain(key));
        }
    }

    #[test]
    fn from_bytes_rejects_corruption() {
        let filter = BloomFilter::build([b"k".as_slice()], 10);
        let bytes = filter.to_bytes();
        assert!(BloomFilter::from_bytes(&bytes[..4]).is_err());
        let mut zero_probes = bytes.clone();
        zero_probes[0] = 0;
        assert!(BloomFilter::from_bytes(&zero_probes).is_err());
        assert!(BloomFilter::from_bytes(&bytes[..9]).is_err(), "missing bit array");
    }
}
