// lint-fixture: crates/core/src/manifest.rs
// Manifest rotation cleanup is one of the two modules allowed to delete
// files directly.

fn rotate(&self) {
    std::fs::remove_file(&old_manifest_path);
}
