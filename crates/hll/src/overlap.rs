//! The TRIAD-DISK overlap ratio.
//!
//! Given the HyperLogLog sketches of the files that would participate in an L0→L1
//! compaction, the overlap ratio is defined (paper §4.2) as
//!
//! ```text
//! overlap = 1 - UniqueKeys(f1, ..., fn) / Σ Keys(fi)
//! ```
//!
//! A ratio near 0 means the files share almost no keys, so compacting them now would
//! mostly rewrite bytes without discarding duplicates; a ratio near 1 means most keys
//! are duplicated and compaction will shrink the data substantially.

use crate::HyperLogLog;
use triad_common::Result;

/// The result of an overlap computation, retaining the intermediate estimates so
/// callers (and tests) can inspect how the decision was made.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverlapEstimate {
    /// Estimated number of unique keys across all files.
    pub estimated_unique: f64,
    /// Sum of the per-file key counts (exact when `additions` is exact).
    pub total_keys: f64,
    /// The overlap ratio in `[0, 1]`.
    pub ratio: f64,
}

impl OverlapEstimate {
    /// Returns `true` when the ratio meets or exceeds `threshold`.
    pub fn exceeds(&self, threshold: f64) -> bool {
        self.ratio >= threshold
    }
}

/// Computes the overlap ratio of a set of files described by `(sketch, key_count)`
/// pairs. `key_count` should be the exact number of keys in the file (TRIAD keeps it
/// in the table properties); the merged unique count is estimated with HLL.
///
/// Returns an estimate with ratio 0 when the input is empty or contains no keys.
pub fn overlap_ratio<'a, I>(files: I) -> Result<OverlapEstimate>
where
    I: IntoIterator<Item = (&'a HyperLogLog, u64)>,
{
    let mut sketches = Vec::new();
    let mut total_keys = 0u64;
    for (sketch, keys) in files {
        total_keys += keys;
        sketches.push(sketch);
    }
    if sketches.is_empty() || total_keys == 0 {
        return Ok(OverlapEstimate { estimated_unique: 0.0, total_keys: 0.0, ratio: 0.0 });
    }
    let estimated_unique = HyperLogLog::merged_estimate(sketches.iter().copied())?;
    let total = total_keys as f64;
    // Estimation noise can push the unique estimate slightly above the true total;
    // clamp so the ratio stays within [0, 1].
    let ratio = (1.0 - estimated_unique / total).clamp(0.0, 1.0);
    Ok(OverlapEstimate { estimated_unique, total_keys: total, ratio })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sketch_of_range(range: std::ops::Range<u64>) -> (HyperLogLog, u64) {
        let mut hll = HyperLogLog::new();
        let count = range.end - range.start;
        for i in range {
            hll.add(&i.to_le_bytes());
        }
        (hll, count)
    }

    #[test]
    fn empty_input_has_zero_ratio() {
        let estimate = overlap_ratio(std::iter::empty()).unwrap();
        assert_eq!(estimate.ratio, 0.0);
        assert!(!estimate.exceeds(0.1));
    }

    #[test]
    fn disjoint_files_have_low_overlap() {
        let (a, ca) = sketch_of_range(0..10_000);
        let (b, cb) = sketch_of_range(10_000..20_000);
        let estimate = overlap_ratio([(&a, ca), (&b, cb)]).unwrap();
        assert!(estimate.ratio < 0.05, "ratio {} should be near 0", estimate.ratio);
    }

    #[test]
    fn identical_files_have_high_overlap() {
        let (a, ca) = sketch_of_range(0..10_000);
        let (b, cb) = sketch_of_range(0..10_000);
        let estimate = overlap_ratio([(&a, ca), (&b, cb)]).unwrap();
        assert!(estimate.ratio > 0.45, "ratio {} should be near 0.5", estimate.ratio);
        assert!(estimate.exceeds(0.4));
    }

    #[test]
    fn paper_example_small_overlap() {
        // Figure 5, upper half: L0 = {2,15,19}, L1 files = {1,2,5,10}, {11,12,19,20}.
        // Unique = 9 of 11 total keys -> ratio 0.18, below the 0.2 threshold.
        let mut l0 = HyperLogLog::new();
        for k in [2u64, 15, 19] {
            l0.add(&k.to_le_bytes());
        }
        let mut l1a = HyperLogLog::new();
        for k in [1u64, 2, 5, 10] {
            l1a.add(&k.to_le_bytes());
        }
        let mut l1b = HyperLogLog::new();
        for k in [11u64, 12, 19, 20] {
            l1b.add(&k.to_le_bytes());
        }
        let estimate = overlap_ratio([(&l0, 3), (&l1a, 4), (&l1b, 4)]).unwrap();
        // At these tiny cardinalities HLL with linear counting is essentially exact.
        assert!((estimate.ratio - (1.0 - 9.0 / 11.0)).abs() < 0.02, "ratio {}", estimate.ratio);
        assert!(!estimate.exceeds(0.2), "paper defers compaction in this scenario");
    }

    #[test]
    fn paper_example_larger_overlap() {
        // Figure 5, lower half: adding L0 file {1,10,13} raises the ratio to 0.28.
        let mut l0a = HyperLogLog::new();
        for k in [2u64, 15, 19] {
            l0a.add(&k.to_le_bytes());
        }
        let mut l0b = HyperLogLog::new();
        for k in [1u64, 10, 13] {
            l0b.add(&k.to_le_bytes());
        }
        let mut l1a = HyperLogLog::new();
        for k in [1u64, 2, 5, 10] {
            l1a.add(&k.to_le_bytes());
        }
        let mut l1b = HyperLogLog::new();
        for k in [11u64, 12, 19, 20] {
            l1b.add(&k.to_le_bytes());
        }
        let estimate = overlap_ratio([(&l0a, 3), (&l0b, 3), (&l1a, 4), (&l1b, 4)]).unwrap();
        assert!((estimate.ratio - (1.0 - 10.0 / 14.0)).abs() < 0.02, "ratio {}", estimate.ratio);
        assert!(estimate.exceeds(0.2), "paper proceeds with compaction in this scenario");
    }

    #[test]
    fn ratio_is_clamped_to_unit_interval() {
        // A single file can only have ratio 0 (all keys unique relative to itself),
        // even if HLL noise nudges the estimate above the true count.
        let (a, ca) = sketch_of_range(0..50_000);
        let estimate = overlap_ratio([(&a, ca)]).unwrap();
        assert!(estimate.ratio >= 0.0 && estimate.ratio <= 1.0);
        assert!(estimate.ratio < 0.05);
    }
}
