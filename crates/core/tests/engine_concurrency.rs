//! Concurrent access: multiple writers and readers sharing one database.

mod common;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use common::{key_for, open_small};
use triad_core::{Db, SyncMode, TriadConfig, WriteBatch, WriteOptions};

fn concurrent_workload(db: Arc<Db>, threads: u64, ops_per_thread: u64) {
    let mut handles = Vec::new();
    for t in 0..threads {
        let db = Arc::clone(&db);
        handles.push(thread::spawn(move || {
            // Each thread owns a disjoint slice of the key space so the final value of
            // every key is deterministic.
            for i in 0..ops_per_thread {
                let key_index = t * 1_000_000 + (i % 200);
                let key = key_for(key_index);
                let value = format!("t{t}-v{i}-{}", "p".repeat(64));
                db.put(&key, value.as_bytes()).unwrap();
                if i % 7 == 0 {
                    // Read-your-writes within a thread.
                    let got = db.get(&key).unwrap().expect("just-written key must exist");
                    assert!(got.starts_with(format!("t{t}-").as_bytes()));
                }
            }
        }));
    }
    for handle in handles {
        handle.join().unwrap();
    }
}

#[test]
fn concurrent_writers_with_baseline_config() {
    let (db, _dir) = open_small("concurrent-baseline", |options| {
        options.l0_compaction_trigger = 2;
    });
    let db = Arc::new(db);
    concurrent_workload(Arc::clone(&db), 4, 2_000);
    db.flush().unwrap();
    db.wait_for_compactions().unwrap();
    // Every key's final value is the last write of its owning thread.
    for t in 0..4u64 {
        for k in 0..200u64 {
            let key = key_for(t * 1_000_000 + k);
            let value = db.get(&key).unwrap().expect("key must exist");
            assert!(value.starts_with(format!("t{t}-").as_bytes()));
        }
    }
    db.close().unwrap();
}

#[test]
fn concurrent_writers_with_full_triad_config() {
    let (db, _dir) = open_small("concurrent-triad", |options| {
        options.l0_compaction_trigger = 2;
        options.triad = TriadConfig::all_enabled();
    });
    let db = Arc::new(db);
    concurrent_workload(Arc::clone(&db), 4, 2_000);
    db.flush().unwrap();
    db.wait_for_compactions().unwrap();
    let total_keys = db.scan().unwrap().count();
    assert_eq!(total_keys, 4 * 200, "each thread owns 200 distinct keys");
    db.close().unwrap();
}

#[test]
fn readers_run_concurrently_with_writers_and_background_work() {
    let (db, _dir) = open_small("readers-vs-writers", |options| {
        options.l0_compaction_trigger = 2;
        options.triad = TriadConfig::all_enabled();
    });
    let db = Arc::new(db);
    // Seed the key space so readers always find something.
    for i in 0..500u64 {
        db.put(key_for(i), b"seed-value").unwrap();
    }
    let stop = Arc::new(AtomicBool::new(false));

    let mut handles = Vec::new();
    for t in 0..2u64 {
        let db = Arc::clone(&db);
        handles.push(thread::spawn(move || {
            for i in 0..5_000u64 {
                let key = key_for((t * 7 + i * 13) % 500);
                db.put(&key, format!("writer-{t}-{i}").into_bytes()).unwrap();
            }
        }));
    }
    let mut reader_handles = Vec::new();
    for _ in 0..3 {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        reader_handles.push(thread::spawn(move || {
            let mut hits = 0u64;
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let key = key_for(i % 500);
                if let Some(value) = db.get(&key).unwrap() {
                    // Values are always one of the formats writers produce.
                    assert!(value.starts_with(b"seed-value") || value.starts_with(b"writer-"));
                    hits += 1;
                }
                i += 1;
            }
            hits
        }));
    }
    for handle in handles {
        handle.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let mut total_hits = 0;
    for handle in reader_handles {
        total_hits += handle.join().unwrap();
    }
    assert!(total_hits > 0, "readers should observe live data");
    // All 500 keys exist and carry a valid value.
    for i in 0..500u64 {
        assert!(db.get(key_for(i)).unwrap().is_some());
    }
    db.close().unwrap();
}

/// The core group-commit contract, audited end to end: N threads interleave
/// multi-op batches; (a) every acknowledged batch owns a contiguous seqno range,
/// the ranges are globally dense (no gaps, no duplicates) and per-thread ordered;
/// (b) a reopened database recovers every acknowledged write.
#[test]
fn group_commit_seqnos_are_dense_ordered_and_recoverable() {
    let threads = 8u64;
    let batches_per_thread = 250u64;
    let (db, dir) = open_small("group-seqnos", |options| {
        common::single_shard(options); // seqno density is a per-shard property
        options.l0_compaction_trigger = 2;
    });
    let options = db.options().clone();
    assert!(options.group_commit.enabled, "the grouped pipeline must be the default");
    let db = Arc::new(db);

    // Each thread issues batches of varying size over its own key slice and
    // records (last_seqno, batch_len, final value per key) for every Ok.
    let mut handles = Vec::new();
    for t in 0..threads {
        let db = Arc::clone(&db);
        handles.push(thread::spawn(move || {
            let mut acked: Vec<(u64, u64)> = Vec::new();
            let mut expected: std::collections::BTreeMap<Vec<u8>, Vec<u8>> = Default::default();
            for i in 0..batches_per_thread {
                let len = 1 + (t + i) % 4;
                let mut batch = WriteBatch::new();
                for op in 0..len {
                    let key = key_for(t * 1_000_000 + (i * 4 + op) % 500);
                    let value = format!("t{t}-b{i}-o{op}");
                    batch.put(key.clone(), value.clone().into_bytes());
                    expected.insert(key, value.into_bytes());
                }
                let end = db.write_committed(batch, WriteOptions::default()).unwrap();
                acked.push((end, len));
            }
            (acked, expected)
        }));
    }
    let mut all_ranges: Vec<(u64, u64)> = Vec::new();
    let mut expected_values: std::collections::BTreeMap<Vec<u8>, Vec<u8>> = Default::default();
    for handle in handles {
        let (acked, expected) = handle.join().unwrap();
        // (a) per-thread ordering: a thread's later batch commits with a larger
        // sequence number than its earlier one.
        for window in acked.windows(2) {
            assert!(
                window[1].0 > window[0].0,
                "per-thread seqnos must be monotonically increasing: {window:?}"
            );
        }
        all_ranges.extend(acked.iter().copied());
        // Threads own disjoint key slices and write them in program order, so
        // each thread's last value per key is the globally expected one.
        expected_values.extend(expected);
    }
    // (a) global density: the ranges [end-len+1, end] partition 1..=total exactly.
    let total_ops: u64 = all_ranges.iter().map(|(_, len)| len).sum();
    all_ranges.sort_unstable();
    let mut next_expected = 1u64;
    for (end, len) in &all_ranges {
        let first = end + 1 - len;
        assert_eq!(
            first, next_expected,
            "seqno ranges must be contiguous and non-overlapping across the whole run"
        );
        next_expected = end + 1;
    }
    assert_eq!(next_expected - 1, total_ops, "every op consumed exactly one seqno");
    assert_eq!(db.last_seqno(), total_ops, "published last_seqno covers every acknowledged op");

    let stats = db.stats();
    assert_eq!(stats.user_writes, total_ops);
    assert_eq!(
        stats.write_group_batches,
        threads * batches_per_thread,
        "every acknowledged batch rode in exactly one commit group"
    );
    assert!(stats.write_groups >= 1);
    assert!(stats.write_group_max_size >= 1);

    // (b) every acknowledged write survives a reopen.
    db.close().unwrap();
    drop(db);
    let db = Db::open(&dir, options).unwrap();
    for (key, value) in &expected_values {
        assert_eq!(
            db.get(key).unwrap().as_ref(),
            Some(value),
            "acknowledged key {:?} lost or stale across restart",
            String::from_utf8_lossy(key)
        );
    }
    let recovered = db.last_seqno();
    assert!(
        recovered >= total_ops,
        "recovered last_seqno {recovered} must cover all {total_ops} acknowledged ops"
    );
    db.close().unwrap();
}

/// Under a synced concurrent workload, group commit must acknowledge writes with
/// strictly fewer fsyncs than batches: one fsync covers the whole group, and the
/// amortization shows up in the dedicated counters.
#[test]
fn grouped_writers_amortize_fsyncs_under_sync_every_write() {
    let threads = 8u64;
    let batches_per_thread = 200u64;
    let (db, _dir) = open_small("group-fsync-amortize", |options| {
        options.sync_mode = SyncMode::SyncEveryWrite;
        // Keep rotations out of the run so every fsync belongs to a commit group.
        options.memtable_size = 64 * 1024 * 1024;
        options.max_log_size = 64 * 1024 * 1024;
    });
    let db = Arc::new(db);
    // Whether a group with more than one batch forms is up to thread timing; on
    // a host where an fsync is nearly free the first round could conceivably
    // group nothing. Re-run the workload (bounded) until grouping is observed —
    // the accounting assertions below then hold deterministically.
    let mut rounds = 0u64;
    loop {
        rounds += 1;
        let mut handles = Vec::new();
        for t in 0..threads {
            let db = Arc::clone(&db);
            handles.push(thread::spawn(move || {
                for i in 0..batches_per_thread {
                    db.put(key_for(t * 1_000 + i % 100), format!("v{i}").into_bytes()).unwrap();
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        if db.stats().write_group_max_size >= 2 || rounds == 5 {
            break;
        }
    }
    let stats = db.stats();
    let total_batches = threads * batches_per_thread * rounds;
    assert_eq!(stats.write_group_batches, total_batches);
    assert!(
        stats.wal_syncs < total_batches,
        "group commit must issue strictly fewer fsyncs ({}) than acknowledged batches ({})",
        stats.wal_syncs,
        total_batches
    );
    // With SyncEveryWrite every group syncs exactly once, so the books balance:
    // syncs issued + syncs amortized away = batches acknowledged.
    assert_eq!(
        stats.wal_syncs + stats.wal_syncs_amortized,
        total_batches,
        "sync accounting must balance (syncs={}, amortized={})",
        stats.wal_syncs,
        stats.wal_syncs_amortized
    );
    assert!(
        stats.write_group_max_size >= 2,
        "at least one group must have carried more than one batch"
    );
    assert!(stats.fsyncs_per_grouped_batch() < 1.0);
    db.close().unwrap();
}

/// The pipelined commit's acceptance contract, observed end to end: with small
/// commit groups and many synced writers, group N+1 must append while group N's
/// fsync is in flight (pipeline depth > 1) and at least one group must retire on
/// a neighbour's fsync without issuing its own (`wal_syncs_overlapped`). The
/// sync-accounting books must still balance, publication must stay in group
/// order, and every acknowledged write must survive a reopen.
#[test]
fn pipelined_sync_writers_overlap_fsyncs_and_publish_in_order() {
    let threads = 8u64;
    let batches_per_thread = 60u64;
    let (db, dir) = open_small("pipelined-overlap", |options| {
        common::single_shard(options); // fsync counting assumes one commit log
        options.sync_mode = SyncMode::SyncEveryWrite;
        // Small groups force several groups into flight at once instead of one
        // group absorbing every writer; rotations stay out of the run.
        options.group_commit.max_group_batches = 2;
        options.memtable_size = 64 * 1024 * 1024;
        options.max_log_size = 64 * 1024 * 1024;
    });
    let options = db.options().clone();
    assert!(options.group_commit.pipelined, "the pipelined commit must be the default");
    let db = Arc::new(db);

    // Overlap needs two groups racing through append↔fsync at the right moment;
    // repeat the workload (bounded) until the counter proves it happened.
    let mut rounds = 0u64;
    loop {
        rounds += 1;
        let mut handles = Vec::new();
        for t in 0..threads {
            let db = Arc::clone(&db);
            handles.push(thread::spawn(move || {
                for i in 0..batches_per_thread {
                    db.put(key_for(t * 1_000 + i % 64), format!("r{i}").into_bytes()).unwrap();
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        if db.stats().wal_syncs_overlapped >= 1 || rounds == 30 {
            break;
        }
    }
    let stats = db.stats();
    let total_batches = threads * batches_per_thread * rounds;
    assert_eq!(stats.write_group_batches, total_batches);
    assert!(
        stats.wal_syncs_overlapped >= 1,
        "at least one group must have retired on a neighbour's fsync \
         (syncs={}, overlapped={}, rounds={rounds})",
        stats.wal_syncs,
        stats.wal_syncs_overlapped
    );
    assert!(
        stats.wal_pipeline_max_depth >= 2,
        "overlap requires at least two groups in flight, saw depth {}",
        stats.wal_pipeline_max_depth
    );
    assert!(stats.wal_syncs < total_batches, "fsyncs must amortize across groups");
    // Every sync-required batch either triggered the group fsync or rode one:
    // syncs issued + syncs amortized away = batches acknowledged.
    assert_eq!(
        stats.wal_syncs + stats.wal_syncs_amortized,
        total_batches,
        "sync accounting must balance (syncs={}, amortized={}, overlapped={})",
        stats.wal_syncs,
        stats.wal_syncs_amortized,
        stats.wal_syncs_overlapped
    );
    // Publication stayed in group order: after quiescing, the published seqno
    // covers exactly every acknowledged operation.
    assert_eq!(db.last_seqno(), total_batches, "last_seqno must cover all acked ops in order");

    // Acknowledged ⇒ fsynced: every key survives a reopen.
    db.close().unwrap();
    drop(db);
    let db = Db::open(&dir, options).unwrap();
    for t in 0..threads {
        for k in 0..64u64.min(batches_per_thread) {
            assert!(
                db.get(key_for(t * 1_000 + k)).unwrap().is_some(),
                "acked key {t}/{k} lost across restart"
            );
        }
    }
    db.close().unwrap();
}

/// The non-pipelined grouped path (PR 3's serial commit) stays selectable as the
/// in-run baseline and keeps its invariants: batches ride groups, fsyncs
/// amortize, and — because append and fsync share one lock hold — nothing ever
/// overlaps.
#[test]
fn grouped_mode_without_pipelining_stays_serial_and_correct() {
    let threads = 4u64;
    let batches_per_thread = 100u64;
    let (db, _dir) = open_small("grouped-serial", |options| {
        common::single_shard(options); // fsync counting assumes one commit log
        options.sync_mode = SyncMode::SyncEveryWrite;
        options.group_commit.pipelined = false;
        options.memtable_size = 64 * 1024 * 1024;
        options.max_log_size = 64 * 1024 * 1024;
    });
    let db = Arc::new(db);
    let mut handles = Vec::new();
    for t in 0..threads {
        let db = Arc::clone(&db);
        handles.push(thread::spawn(move || {
            for i in 0..batches_per_thread {
                db.put(key_for(t * 1_000 + i % 50), format!("v{i}").into_bytes()).unwrap();
            }
        }));
    }
    for handle in handles {
        handle.join().unwrap();
    }
    let stats = db.stats();
    let total_batches = threads * batches_per_thread;
    assert_eq!(stats.write_group_batches, total_batches);
    assert_eq!(stats.wal_syncs + stats.wal_syncs_amortized, total_batches);
    assert_eq!(
        stats.wal_syncs_overlapped, 0,
        "the serial grouped commit can never overlap an fsync"
    );
    assert_eq!(db.last_seqno(), total_batches);
    db.close().unwrap();
}

#[test]
fn close_during_heavy_write_traffic_is_clean() {
    let (db, _dir) = open_small("close-race", |options| {
        options.triad = TriadConfig::all_enabled();
        options.l0_compaction_trigger = 2;
    });
    let db = Arc::new(db);
    let writer = {
        let db = Arc::clone(&db);
        thread::spawn(move || {
            let mut completed = 0u64;
            for i in 0..100_000u64 {
                if db.put(key_for(i % 300), format!("v{i}").into_bytes()).is_err() {
                    break;
                }
                completed += 1;
            }
            completed
        })
    };
    thread::sleep(std::time::Duration::from_millis(100));
    db.close().unwrap();
    let completed = writer.join().unwrap();
    assert!(completed > 0, "some writes must have completed before shutdown");
}

#[test]
fn scans_under_compaction_churn_never_hit_missing_files() {
    let (db, dir) = open_small("scan-under-compaction", |options| {
        options.l0_compaction_trigger = 2;
        options.triad = TriadConfig::all_enabled();
        // Never defer L0 compaction and never absorb a rotation with the
        // small-flush rule, so the churn deterministically flushes and compacts
        // (and therefore retires files) while the scans are running.
        options.triad.overlap_ratio_threshold = 0.0;
        options.triad.flush_skip_threshold_bytes = 0;
    });
    let db = Arc::new(db);
    for i in 0..400u64 {
        db.put(key_for(i), b"seed-value").unwrap();
    }
    let stop = Arc::new(AtomicBool::new(false));

    // Writers churn the key space hard enough to force flushes and compactions
    // while scans and point reads run against pinned (and quickly stale) versions.
    let mut writers = Vec::new();
    for t in 0..2u64 {
        let db = Arc::clone(&db);
        writers.push(thread::spawn(move || {
            for i in 0..4_000u64 {
                let key = key_for((t * 31 + i * 7) % 400);
                db.put(&key, format!("writer-{t}-{i}-{}", "p".repeat(80)).into_bytes()).unwrap();
            }
        }));
    }
    let mut scanners = Vec::new();
    for s in 0..2u64 {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        scanners.push(thread::spawn(move || {
            let mut scans = 0u64;
            while !stop.load(Ordering::Relaxed) {
                // With version-pinned GC a scan must never surface an error: every
                // file of its snapshot outlives the iterator, so a NotFound would
                // be real corruption.
                let mut entries = 0u64;
                for result in db
                    .scan()
                    .unwrap_or_else(|e| panic!("scanner {s}: building the scan failed: {e}"))
                {
                    result.unwrap_or_else(|e| panic!("scanner {s}: scan entry failed: {e}"));
                    entries += 1;
                }
                assert!(entries >= 400, "scans must see every seeded key, got {entries}");
                scans += 1;
            }
            scans
        }));
    }
    let reader = {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let got = db.get(key_for(i % 400)).unwrap().expect("seeded key must exist");
                assert!(got.starts_with(b"seed-value") || got.starts_with(b"writer-"));
                i += 1;
            }
        })
    };
    for handle in writers {
        handle.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let mut total_scans = 0;
    for handle in scanners {
        total_scans += handle.join().unwrap();
    }
    reader.join().unwrap();
    assert!(total_scans > 0, "scanners should have completed at least one scan");

    db.flush().unwrap();
    db.wait_for_compactions().unwrap();
    let stats = db.stats();
    assert!(stats.compaction_count >= 1, "the churn must have compacted");
    assert!(stats.gc_files_deleted >= 1, "compactions must have retired table files");
    assert_eq!(stats.gc_delete_failures, 0, "no deletion may fail on a healthy disk");
    // With all readers gone and GC converged, the directory holds exactly the live
    // version's file set: nothing leaked, nothing deleted prematurely.
    common::assert_disk_matches_live_set(&db, &dir);
    db.close().unwrap();
}

#[test]
fn table_cache_never_resurrects_files_deleted_by_gc() {
    let (db, dir) = open_small("cache-resurrection", |options| {
        common::single_shard(options); // asserts on root-relative table file names
        options.l0_compaction_trigger = 2;
    });
    let db = Arc::new(db);
    for i in 0..300u64 {
        db.put(key_for(i), b"seed-value").unwrap();
    }
    let stop = Arc::new(AtomicBool::new(false));
    // Readers keep pinning versions (and opening their tables) while compactions
    // retire files underneath them — the exact interleaving that used to let a
    // stale reader re-insert a handle for a just-deleted file.
    let mut readers = Vec::new();
    for _ in 0..3 {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        readers.push(thread::spawn(move || {
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                db.get(key_for(i % 300)).unwrap();
                i += 1;
            }
        }));
    }
    for round in 0..6u64 {
        for i in 0..300u64 {
            db.put(key_for(i), format!("round-{round}-{}", "q".repeat(64)).into_bytes()).unwrap();
        }
        db.flush().unwrap();
    }
    db.wait_for_compactions().unwrap();
    stop.store(true, Ordering::Relaxed);
    for handle in readers {
        handle.join().unwrap();
    }
    common::assert_disk_matches_live_set(&db, &dir);
    // Every handle still cached belongs to a live file; a handle for a deleted
    // file would mean eviction raced a stale re-insert.
    let expected = db.expected_live_files();
    for id in db.cached_table_ids() {
        assert!(
            expected.contains(&format!("{id:06}.sst"))
                || expected.contains(&format!("{id:06}.clidx")),
            "cached handle {id} does not correspond to any live file"
        );
    }
    db.close().unwrap();
}
