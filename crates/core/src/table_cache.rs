//! Caching of open table handles.
//!
//! Opening a table (reading its footer, index block, bloom filter and properties) is
//! far more expensive than a point lookup, so the engine keeps every live table open
//! in a cache keyed by file id.
//!
//! Eviction is driven by garbage collection, which removes the entry immediately
//! before unlinking the file — and only once no live [`Version`](crate::Version)
//! references it. That ordering is what makes a once-feared race impossible: a
//! reader can only ask the cache for files listed in a version it has pinned, a
//! pinned version keeps its files out of GC's reach, so no `get_or_open` can ever
//! resurrect a handle for a deleted file after `evict` ran.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

use triad_common::lockrank::RankedMutex;
use triad_common::{Error, Result, Stats};
use triad_sstable::{cl_index_file_path, sst_file_path, ClTable, Table, TableKind, TableRef};
use triad_wal::log_file_path;

use crate::version::FileMetadata;

/// A cache of open [`TableRef`]s.
pub struct TableCache {
    dir: PathBuf,
    stats: Arc<Stats>,
    tables: RankedMutex<HashMap<u64, TableRef>>,
}

impl std::fmt::Debug for TableCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TableCache")
            .field("dir", &self.dir)
            .field("open_tables", &self.tables.lock().len())
            .finish()
    }
}

impl TableCache {
    /// Creates an empty cache for tables living in `dir`.
    pub fn new(dir: PathBuf, stats: Arc<Stats>) -> Self {
        TableCache {
            dir,
            stats,
            tables: RankedMutex::new(
                crate::db::lock_rank::TABLE_CACHE,
                "table_cache.tables",
                HashMap::new(),
            ),
        }
    }

    /// Returns an open handle for `file`, opening it if necessary.
    pub fn get_or_open(&self, file: &FileMetadata) -> Result<TableRef> {
        if let Some(table) = self.tables.lock().get(&file.id) {
            return Ok(Arc::clone(table));
        }
        let table: TableRef = match file.kind {
            TableKind::Block => {
                let path = sst_file_path(&self.dir, file.id);
                Arc::new(Table::open(path, Some(Arc::clone(&self.stats)))?)
            }
            TableKind::CommitLogIndex => {
                let log_id = file.backing_log_id.ok_or_else(|| {
                    Error::corruption(format!("CL-SSTable {} has no backing log id", file.id))
                })?;
                let index_path = cl_index_file_path(&self.dir, file.id);
                let log_path = log_file_path(&self.dir, log_id);
                Arc::new(ClTable::open(index_path, log_path, Some(Arc::clone(&self.stats)))?)
            }
        };
        let mut tables = self.tables.lock();
        let entry = tables.entry(file.id).or_insert_with(|| Arc::clone(&table));
        Ok(Arc::clone(entry))
    }

    /// Drops the cached handle for `file_id`.
    ///
    /// Called by the garbage collector immediately before it unlinks the file;
    /// because GC only deletes files no live version references, no reader can
    /// re-insert the handle afterwards.
    pub fn evict(&self, file_id: u64) {
        self.tables.lock().remove(&file_id);
    }

    /// Number of cached handles (exposed for tests).
    pub fn len(&self) -> usize {
        self.tables.lock().len()
    }

    /// Ids of every cached handle, sorted (exposed for tests and diagnostics).
    pub fn cached_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.tables.lock().keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Returns `true` when no handles are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triad_common::types::{InternalKey, ValueKind};
    use triad_hll::HyperLogLog;
    use triad_sstable::{TableBuilder, TableBuilderOptions};

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("triad-table-cache-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn build_sst(dir: &std::path::Path, id: u64) -> FileMetadata {
        let path = sst_file_path(dir, id);
        let mut builder = TableBuilder::create(&path, TableBuilderOptions::default()).unwrap();
        let key = InternalKey::new(b"key".to_vec(), 1, ValueKind::Put);
        builder.add(&key, b"value").unwrap();
        let (props, size) = builder.finish().unwrap();
        FileMetadata {
            id,
            level: 0,
            kind: TableKind::Block,
            size,
            num_entries: props.num_entries,
            smallest: props.smallest.clone().unwrap(),
            largest: props.largest.clone().unwrap(),
            hll: HyperLogLog::new(),
            backing_log_id: None,
        }
    }

    #[test]
    fn caches_open_handles() {
        let dir = temp_dir("cache");
        let stats = Arc::new(Stats::new());
        let cache = TableCache::new(dir.clone(), stats);
        let meta = build_sst(&dir, 1);
        assert!(cache.is_empty());
        let a = cache.get_or_open(&meta).unwrap();
        let b = cache.get_or_open(&meta).unwrap();
        assert_eq!(cache.len(), 1);
        assert!(Arc::ptr_eq(&a, &b), "second open must return the cached handle");
        assert_eq!(a.get(b"key", u64::MAX).unwrap().unwrap().value, b"value");
    }

    #[test]
    fn evict_drops_the_handle() {
        let dir = temp_dir("evict");
        let cache = TableCache::new(dir.clone(), Arc::new(Stats::new()));
        let meta = build_sst(&dir, 2);
        cache.get_or_open(&meta).unwrap();
        assert_eq!(cache.len(), 1);
        cache.evict(2);
        assert!(cache.is_empty());
    }

    #[test]
    fn missing_backing_log_is_an_error() {
        let dir = temp_dir("missing-log");
        let cache = TableCache::new(dir.clone(), Arc::new(Stats::new()));
        let mut meta = build_sst(&dir, 3);
        meta.kind = TableKind::CommitLogIndex;
        meta.backing_log_id = None;
        assert!(cache.get_or_open(&meta).is_err());
    }

    #[test]
    fn missing_file_is_an_error() {
        let dir = temp_dir("missing-file");
        let cache = TableCache::new(dir.clone(), Arc::new(Stats::new()));
        let mut meta = build_sst(&dir, 4);
        meta.id = 999;
        assert!(cache.get_or_open(&meta).is_err());
    }
}
