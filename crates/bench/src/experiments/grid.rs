//! The shared skew × mix × thread-count grid behind Figures 9B and 9C.

use triad_core::TriadConfig;
use triad_workload::OperationMix;

use crate::experiments::{bench_options, ops_per_thread, synthetic_workload, SkewProfile};
use crate::report::{print_table, Table};
use crate::runner::{run_experiment, ExperimentConfig, ExperimentResult, Scale};

/// One cell of the grid: a skew, a mix, a thread count, and the two systems' results.
#[derive(Debug, Clone)]
pub struct GridPoint {
    /// Skew profile of this point.
    pub skew: SkewProfile,
    /// Read/write mix of this point.
    pub mix: OperationMix,
    /// Number of client threads.
    pub threads: usize,
    /// Result for the baseline configuration.
    pub baseline: ExperimentResult,
    /// Result for the full TRIAD configuration.
    pub triad: ExperimentResult,
}

/// The thread counts swept at each scale (the paper uses 1–16).
pub fn thread_counts(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Quick => vec![1, 4, 8],
        Scale::Full => vec![1, 2, 4, 8, 12, 16],
    }
}

/// Runs the full grid of Figure 9B/9C.
pub fn run_grid(scale: Scale) -> triad_common::Result<Vec<GridPoint>> {
    let mixes = [OperationMix::write_intensive(), OperationMix::balanced()];
    let mut points = Vec::new();
    for skew in SkewProfile::all() {
        for mix in mixes {
            for &threads in &thread_counts(scale) {
                let workload = synthetic_workload(scale, skew, mix);
                // Keep total work roughly constant across thread counts so every cell
                // finishes in comparable time.
                let ops = (ops_per_thread(scale) * 8 / threads as u64).max(1_000);
                let run_one = |label: &str, triad: TriadConfig| -> triad_common::Result<_> {
                    let config = ExperimentConfig::new(
                        format!("grid-{label}-{}-{}-{threads}", skew.label(), mix.label()),
                        bench_options(scale, triad),
                        workload.clone(),
                    )
                    .with_threads(threads)
                    .with_ops_per_thread(ops);
                    run_experiment(&config)
                };
                let baseline = run_one("rocksdb", TriadConfig::baseline())?;
                let triad = run_one("triad", TriadConfig::all_enabled())?;
                points.push(GridPoint { skew, mix, threads, baseline, triad });
            }
        }
    }
    Ok(points)
}

/// Prints the throughput view of the grid (Figure 9B).
pub fn print_throughput(points: &[GridPoint]) -> Table {
    let mut table =
        Table::new(&["skew", "mix", "threads", "RocksDB KOPS", "TRIAD KOPS", "speedup"]);
    for point in points {
        table.add_row(vec![
            point.skew.label().to_string(),
            point.mix.label(),
            point.threads.to_string(),
            format!("{:.1}", point.baseline.kops),
            format!("{:.1}", point.triad.kops),
            format!("{:.2}x", point.triad.kops / point.baseline.kops.max(1e-9)),
        ]);
    }
    print_table(
        "Figure 9B: throughput vs thread count (higher is better)",
        &table,
        "TRIAD is up to 2.5x faster on skewed and up to 2.2x faster on uniform workloads; \
         gains of ~50% for WS1, ~25-51% for WS2 at 8+ threads",
    );
    table
}

/// Prints the write-amplification view of the grid (Figure 9C).
pub fn print_write_amplification(points: &[GridPoint]) -> Table {
    let mut table = Table::new(&["skew", "mix", "threads", "RocksDB WA", "TRIAD WA", "reduction"]);
    for point in points {
        table.add_row(vec![
            point.skew.label().to_string(),
            point.mix.label(),
            point.threads.to_string(),
            format!("{:.2}", point.baseline.write_amplification),
            format!("{:.2}", point.triad.write_amplification),
            format!(
                "{:.2}x",
                point.baseline.write_amplification / point.triad.write_amplification.max(1e-9)
            ),
        ]);
    }
    print_table(
        "Figure 9C: write amplification (lower is better)",
        &table,
        "WA decreases by up to 4x for moderately-skewed and uniform workloads; for the \
         highly-skewed workload WA is similar but absolute bytes written drop by ~10x",
    );
    table
}
